"""E4 — Listing 1 (§4.2): AS-path inflation.

Runs the Listing 1 analysis over the RIB dumps of the latest longitudinal
snapshot and reports the fraction of <VP, origin> pairs whose observed BGP
path is longer than the shortest path on the AS graph.  The paper (on year
2015 data) finds >30 % of pairs inflated by 1–11 hops; the synthetic
Internet is far shallower, so the measured fraction and hop counts are
smaller, but the qualitative result — policy routing inflates a meaningful
share of paths, by a small number of hops — holds.
"""

from __future__ import annotations

from repro.analysis.path_inflation import analyse_path_inflation

from benchmarks.conftest import make_stream


def test_listing1_path_inflation(benchmark, longitudinal_archive, month_timestamps):
    timestamp = month_timestamps[-1]

    def run():
        stream = make_stream(
            longitudinal_archive, timestamp, timestamp + 3600, record_type=["ribs"]
        )
        return analyse_path_inflation(stream)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    assert result.pairs_examined > 100
    assert 0.03 < result.inflated_fraction < 0.9
    assert result.max_extra_hops >= 1
    # The histogram is dominated by small inflations, exactly as in the paper
    # (most inflated paths gain only one or two hops).
    inflated = {k: v for k, v in result.inflation_histogram.items() if k > 0}
    assert inflated
    assert max(inflated, key=inflated.get) <= 3
    benchmark.extra_info["pairs"] = result.pairs_examined
    benchmark.extra_info["inflated_fraction"] = round(result.inflated_fraction, 4)
    benchmark.extra_info["max_extra_hops"] = result.max_extra_hops
    benchmark.extra_info["histogram"] = result.inflation_histogram
