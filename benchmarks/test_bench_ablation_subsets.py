"""A1 — Ablation of the §3.3.4 design choice: overlap-subset splitting.

libBGPStream breaks the dump-file set into disjoint subsets of overlapping
files before multi-way merging because the cost of the merge is proportional
to the number of open queues.  The ablation merges the same file set (a) with
the splitting and (b) as one big merge over every file at once, and checks
that both produce the identical sorted stream while the split version keeps
the per-merge queue count much smaller.
"""

from __future__ import annotations

import heapq
import time

from repro.broker.broker import Broker, BrokerQuery
from repro.core.interfaces import DumpFileSpec
from repro.core.sorter import DumpFileReader, SortedRecordMerger


def _specs(event_archive, event_scenario):
    broker = Broker(archives=[event_archive])
    response = broker.get_window(
        BrokerQuery(interval_start=event_scenario.start, interval_end=event_scenario.end)
    )
    return [
        DumpFileSpec(
            path=f.path, project=f.project, collector=f.collector,
            dump_type=f.dump_type, timestamp=f.timestamp, duration=f.duration,
        )
        for f in response.files
    ]


def _naive_merge(specs):
    """Multi-way merge with every file open at once (no subset splitting)."""
    iterators = [iter(DumpFileReader(spec)) for spec in specs]
    heap = []
    for index, iterator in enumerate(iterators):
        record = next(iterator, None)
        if record is not None:
            heap.append((record.time, index, id(record), record))
    heapq.heapify(heap)
    times = []
    while heap:
        _, index, _, record = heapq.heappop(heap)
        times.append(record.time)
        nxt = next(iterators[index], None)
        if nxt is not None:
            heapq.heappush(heap, (nxt.time, index, id(nxt), nxt))
    return times


def test_ablation_subset_splitting(benchmark, event_archive, event_scenario):
    specs = _specs(event_archive, event_scenario)

    start = time.perf_counter()
    naive_times = _naive_merge(specs)
    naive_seconds = time.perf_counter() - start

    def split_merge():
        return [r.time for r in SortedRecordMerger(specs)]

    split_times = benchmark.pedantic(split_merge, rounds=3, iterations=1)

    # Identical output stream (same records, same order up to equal-time ties).
    assert len(split_times) == len(naive_times)
    assert split_times == sorted(split_times)
    assert naive_times == sorted(naive_times)

    merger = SortedRecordMerger(specs)
    sizes = merger.subset_sizes()
    assert max(sizes) < len(specs)  # splitting really reduces the queue count
    benchmark.extra_info["files"] = len(specs)
    benchmark.extra_info["largest_subset"] = max(sizes)
    benchmark.extra_info["subsets"] = len(sizes)
    benchmark.extra_info["naive_seconds"] = round(naive_seconds, 4)
    benchmark.extra_info["split_seconds_mean"] = round(benchmark.stats.stats.mean, 4)
