"""Patricia trie vs linear prefix scans on a large watchlist (§3.1, §6.1).

Before the trie subsystem, every prefix-touching hot path scanned its
watchlist linearly: ``FilterSet.match_elem`` tested each filter prefix with
``Prefix.contains`` and ``PrefixMonitorPlugin`` tested each watched range
with ``Prefix.overlaps`` — O(watchlist) per elem.  The patricia trie
answers the same queries in O(prefix length).

This benchmark reconstructs the pre-change linear idioms verbatim and runs
both against the same ≥1k-prefix watchlist and the same query stream (a
mix of covered, covering and unrelated prefixes).  The trie path must (a)
produce identical match decisions and (b) beat the linear scan.
"""

from __future__ import annotations

import random
import time

from repro.bgp.prefix import Prefix
from repro.bgp.trie import PrefixTrie
from repro.core.filters import FilterSet

WATCHLIST_SIZE = 1500
QUERY_COUNT = 4000


def _watchlist():
    """≥1k watched /24 ranges spread over distinct /16 blocks."""
    rng = random.Random(2016)
    prefixes = set()
    while len(prefixes) < WATCHLIST_SIZE:
        block = rng.randrange(0, 220)
        mid = rng.randrange(0, 256)
        third = rng.randrange(0, 256)
        prefixes.add(Prefix.from_string(f"{block}.{mid}.{third}.0/24"))
    return sorted(prefixes)


def _queries(watchlist):
    """Covered, covering and unrelated query prefixes, shuffled."""
    rng = random.Random(1997)
    queries = []
    for watched in rng.sample(watchlist, QUERY_COUNT // 4):
        queries.append(Prefix.from_address(str(watched.address), 25))  # more specific
    for watched in rng.sample(watchlist, QUERY_COUNT // 4):
        queries.append(Prefix.from_address(str(watched.address), 16))  # less specific
    while len(queries) < QUERY_COUNT:  # mostly-miss traffic
        queries.append(
            Prefix.from_string(f"{rng.randrange(225, 255)}.{rng.randrange(256)}.0.0/20")
        )
    rng.shuffle(queries)
    return queries


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_trie_overlap_beats_linear_scan(benchmark):
    """The pfxmonitor idiom: any(range.overlaps(prefix)) vs trie.overlaps."""
    watchlist = _watchlist()
    queries = _queries(watchlist)
    trie: PrefixTrie = PrefixTrie((p, None) for p in watchlist)

    def linear_pass():
        # Verbatim pre-change hot path of PrefixMonitorPlugin._watched.
        return [any(r.overlaps(q) for r in watchlist) for q in queries]

    def trie_pass():
        return [trie.overlaps(q) for q in queries]

    assert trie_pass() == linear_pass()  # identical decisions first

    linear_seconds = min(_timed(linear_pass) for _ in range(3))
    decisions = benchmark.pedantic(trie_pass, rounds=3, iterations=1)
    trie_seconds = benchmark.stats.stats.min
    assert sum(decisions) > 0 and not all(decisions)

    speedup = linear_seconds / trie_seconds if trie_seconds > 0 else float("inf")
    benchmark.extra_info["watchlist"] = len(watchlist)
    benchmark.extra_info["queries"] = len(queries)
    benchmark.extra_info["linear_seconds"] = round(linear_seconds, 4)
    benchmark.extra_info["trie_seconds"] = round(trie_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert trie_seconds < linear_seconds


def test_trie_filter_matching_beats_linear_scan(benchmark):
    """The FilterSet idiom: any(p.contains(elem.prefix)) vs the trie walk."""
    watchlist = _watchlist()
    queries = _queries(watchlist)
    filters = FilterSet()
    for prefix in watchlist:
        filters.add("prefix", str(prefix))

    def linear_pass():
        # Verbatim pre-change hot path of FilterSet.match_elem.
        return [any(p.contains(q) for p in watchlist) for q in queries]

    def trie_pass():
        return [filters.match_prefix(q) for q in queries]

    assert trie_pass() == linear_pass()

    linear_seconds = min(_timed(linear_pass) for _ in range(3))
    benchmark.pedantic(trie_pass, rounds=3, iterations=1)
    trie_seconds = benchmark.stats.stats.min

    benchmark.extra_info["watchlist"] = len(watchlist)
    benchmark.extra_info["queries"] = len(queries)
    benchmark.extra_info["linear_seconds"] = round(linear_seconds, 4)
    benchmark.extra_info["trie_seconds"] = round(trie_seconds, 4)
    benchmark.extra_info["speedup"] = round(linear_seconds / trie_seconds, 2)
    assert trie_seconds < linear_seconds


def test_trie_longest_match_throughput(benchmark):
    """Routing-table-style address lookups against the full watchlist."""
    watchlist = _watchlist()
    trie: PrefixTrie = PrefixTrie((p, str(p)) for p in watchlist)
    rng = random.Random(7)
    addresses = [f"{rng.randrange(0, 255)}.{rng.randrange(256)}.{rng.randrange(256)}.9"
                 for _ in range(QUERY_COUNT)]

    def lookups():
        return sum(1 for a in addresses if trie.lookup(a) is not None)

    hits = benchmark(lookups)
    assert 0 < hits < len(addresses)
    benchmark.extra_info["hit_rate"] = round(hits / len(addresses), 3)
