"""E3 — §3.3.4: the cost of sorting is negligible vs reading the dumps.

The paper empirically verified that the multi-way merge adds negligible cost
on top of reading records from the dump files.  Here the same dump-file set
is processed twice — once file-after-file with no merging, once through the
grouped multi-way merge — and the benchmark reports both, asserting that the
sorted stream costs at most a modest factor more.
"""

from __future__ import annotations

import time

from repro.broker.broker import Broker, BrokerQuery
from repro.core.interfaces import DumpFileSpec
from repro.core.sorter import DumpFileReader, SortedRecordMerger
from repro.mrt import parser as mrt_parser


def _all_specs(event_archive, event_scenario):
    broker = Broker(archives=[event_archive])
    response = broker.get_window(
        BrokerQuery(interval_start=event_scenario.start, interval_end=event_scenario.end),
    )
    return [
        DumpFileSpec(
            path=f.path,
            project=f.project,
            collector=f.collector,
            dump_type=f.dump_type,
            timestamp=f.timestamp,
            duration=f.duration,
        )
        for f in response.files
    ]


def test_sorting_overhead_is_small(benchmark, event_archive, event_scenario):
    specs = _all_specs(event_archive, event_scenario)

    # Drop any decoded-record cache left by other benchmarks (e.g. the
    # parallel-engine one): this experiment measures merge overhead relative
    # to *decoding* the dumps, so both passes must actually decode — a
    # cache-served read turns the ratio into noise over two tiny numbers.
    mrt_parser.clear_index_cache()

    # Baseline: read every file sequentially, no sorting.
    start = time.perf_counter()
    unsorted_count = sum(1 for spec in specs for _ in DumpFileReader(spec))
    read_only_seconds = time.perf_counter() - start

    def merged_read():
        return sum(1 for _ in SortedRecordMerger(specs))

    sorted_count = benchmark.pedantic(merged_read, rounds=3, iterations=1)

    assert sorted_count == unsorted_count
    merged_seconds = benchmark.stats.stats.mean
    overhead = merged_seconds / read_only_seconds if read_only_seconds > 0 else 1.0
    # "Negligible" on the paper's testbed; at laptop scale with a Python heap
    # we allow up to 75% overhead but it is typically far lower.
    assert overhead < 1.75
    benchmark.extra_info["records"] = sorted_count
    benchmark.extra_info["read_only_seconds"] = round(read_only_seconds, 4)
    benchmark.extra_info["sorting_overhead_factor"] = round(overhead, 3)
