"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper (see DESIGN.md's
per-experiment index and EXPERIMENTS.md for the paper-vs-measured record).
Two datasets are shared across benchmarks:

* ``event_scenario`` / ``event_archive`` — a multi-collector, multi-hour
  scenario containing a prefix hijack, a country-wide outage, an RTBH
  episode and a session reset (drives Figures 3, 4, 6, 9, 10 and Table 1).
* ``longitudinal_scenario`` / ``longitudinal_archive`` — monthly RIB dumps
  over a growing synthetic Internet (drives Figures 5a–5d).

Benchmarks use ``benchmark.pedantic(..., rounds=1)`` for the heavy end-to-end
pipelines (they are measured once) and regular ``benchmark(...)`` for cheap,
hot-path operations.
"""

from __future__ import annotations

import pytest

from repro.bgp.community import Community
from repro.bgp.prefix import Prefix
from repro.broker.broker import Broker
from repro.collectors.archive import Archive
from repro.collectors.events import (
    OutageEvent,
    PrefixHijackEvent,
    RTBHEvent,
    SessionResetEvent,
)
from repro.collectors.longitudinal import LongitudinalConfig, LongitudinalScenario
from repro.collectors.scenario import Scenario, ScenarioConfig, build_scenario
from repro.collectors.topology import ASRole, TopologyConfig, generate_topology
from repro.core.interfaces import BrokerDataInterface
from repro.core.stream import BGPStream
from repro.utils.intervals import TimeInterval


@pytest.fixture(scope="session")
def event_scenario() -> Scenario:
    config = ScenarioConfig(
        duration=4 * 3600,
        topology=TopologyConfig(num_tier1=4, num_transit=14, num_stub=50, seed=101),
        vps_per_collector=5,
        full_feed_fraction=1.0,
        churn_updates_per_vp_per_hour=60,
        seed=102,
    )
    topology = generate_topology(config.topology)
    start = config.start
    victim = next(a for a in topology.asns() if topology.node(a).role == ASRole.STUB)
    hijacker = next(
        a
        for a in topology.asns()
        if topology.node(a).role == ASRole.TRANSIT and a not in topology.providers(victim)
    )
    rtbh_customer = next(
        a
        for a in topology.asns()
        if topology.node(a).role == ASRole.STUB
        and a != victim
        and any(
            topology.node(p).blackhole_community_value is not None
            for p in topology.providers(a)
        )
    )
    rtbh_provider = next(
        p
        for p in topology.providers(rtbh_customer)
        if topology.node(p).blackhole_community_value is not None
    )
    rtbh_prefix = Prefix.from_address(
        str(topology.node(rtbh_customer).prefixes[0].address), 32
    )
    country = topology.node(victim).country
    events = [
        PrefixHijackEvent(
            interval=TimeInterval(start + 3600, start + 3600 + 3600),
            hijacker_asn=hijacker,
            victim_asn=victim,
            prefixes=tuple(topology.node(victim).prefixes[:2]),
        ),
        OutageEvent(interval=TimeInterval(start + 9000, start + 12600), country=country),
        RTBHEvent(
            interval=TimeInterval(start + 1800, start + 4200),
            customer_asn=rtbh_customer,
            blackhole_prefix=rtbh_prefix,
            provider_asns=(rtbh_provider,),
            communities=(Community(rtbh_provider if rtbh_provider <= 0xFFFF else 65535, 666),),
            propagating_providers=(rtbh_provider,),
        ),
    ]
    scenario = build_scenario(config, events=events, topology=topology)
    rrc0 = scenario.collector("rrc0")
    scenario.timeline.add(
        SessionResetEvent(
            interval=TimeInterval(start + 6000, start + 6660),
            collector="rrc0",
            vp_asn=rrc0.vps[0].asn,
        )
    )
    return scenario


@pytest.fixture(scope="session")
def event_archive(tmp_path_factory, event_scenario) -> Archive:
    archive = Archive(str(tmp_path_factory.mktemp("bench-event-archive")))
    event_scenario.generate(archive)
    return archive


@pytest.fixture(scope="session")
def longitudinal_scenario() -> LongitudinalScenario:
    config = LongitudinalConfig(
        months=16,
        topology=TopologyConfig(num_tier1=5, num_transit=20, num_stub=90, seed=111),
        vps_per_collector=5,
        moas_fraction=0.08,
        seed=113,
    )
    return LongitudinalScenario(config)


@pytest.fixture(scope="session")
def longitudinal_archive(tmp_path_factory, longitudinal_scenario) -> Archive:
    archive = Archive(str(tmp_path_factory.mktemp("bench-longitudinal-archive")))
    longitudinal_scenario.generate(archive)
    return archive


@pytest.fixture(scope="session")
def month_timestamps(longitudinal_scenario):
    return [s.timestamp for s in longitudinal_scenario.snapshots]


def make_stream(archive: Archive, start: int, end, **filters) -> BGPStream:
    """A fresh historical stream over ``archive`` with optional filters."""
    stream = BGPStream(
        data_interface=BrokerDataInterface(Broker(archives=[archive]), max_empty_polls=1)
    )
    stream.add_interval_filter(start, end)
    for name, values in filters.items():
        for value in values:
            stream.add_filter(name.replace("_", "-"), value)
    return stream
