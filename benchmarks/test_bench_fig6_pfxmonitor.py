"""E10 — Figure 6: pfxmonitor over a hijacked origin's address space.

Runs the pfxmonitor plugin (5-minute bins, all collectors) over the event
archive, watching the victim's prefixes.  Figure 6's signature: the number
of unique announced prefixes stays roughly flat while the number of unique
origin ASNs jumps from 1 to 2 for the duration of each hijack episode.
"""

from __future__ import annotations

from repro.collectors.events import PrefixHijackEvent
from repro.corsaro.pipeline import BGPCorsaro
from repro.corsaro.plugins import PrefixMonitorPlugin

from benchmarks.conftest import make_stream


def test_fig6_pfxmonitor_hijack(benchmark, event_archive, event_scenario):
    hijack = next(
        e for e in event_scenario.timeline.events if isinstance(e, PrefixHijackEvent)
    )
    victim_ranges = list(event_scenario.topology.node(hijack.victim_asn).prefixes)

    def run():
        stream = make_stream(event_archive, event_scenario.start, event_scenario.end)
        plugin = PrefixMonitorPlugin(victim_ranges)
        corsaro = BGPCorsaro(stream, [plugin], bin_size=300)
        corsaro.run()
        return {
            output.interval_start: output.value
            for output in corsaro.outputs_for("pfxmonitor")
            if output.interval_start >= 0
        }

    series = benchmark.pedantic(run, rounds=1, iterations=1)

    assert series
    before = {
        ts: v for ts, v in series.items() if ts < hijack.interval.start - 300 and v.unique_prefixes
    }
    during = {
        ts: v
        for ts, v in series.items()
        if hijack.interval.start + 300 <= ts < hijack.interval.end
    }
    after = {ts: v for ts, v in series.items() if ts >= hijack.interval.end + 600}
    assert before and during and after
    assert max(v.unique_origin_asns for v in before.values()) == 1
    assert max(v.unique_origin_asns for v in during.values()) == 2
    assert max(v.unique_origin_asns for v in after.values()) == 1
    # Prefix counts stay in the same ballpark (announcements oscillate a
    # little, as the paper notes, but do not explode).
    assert max(v.unique_prefixes for v in during.values()) <= 2 * max(
        v.unique_prefixes for v in before.values()
    )
    benchmark.extra_info["bins"] = len(series)
    benchmark.extra_info["origin_count_series"] = [
        series[ts].unique_origin_asns for ts in sorted(series)
    ]
