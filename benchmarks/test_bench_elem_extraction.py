"""E1 — Table 1: elem extraction.

Benchmarks the decomposition of MRT records into BGPStream elems (the
hottest path of the whole framework) and re-checks that every elem carries
exactly the Table 1 fields for its type.
"""

from __future__ import annotations

from collections import Counter

from repro.core.elem import ElemType
from repro.core.record import RecordStatus

from benchmarks.conftest import make_stream


def test_elem_extraction_throughput(benchmark, event_archive, event_scenario):
    records = [
        record
        for record in make_stream(
            event_archive, event_scenario.start, event_scenario.end
        ).records()
        if record.status == RecordStatus.VALID
    ]

    def extract():
        counts = Counter()
        for record in records:
            for elem in record.elems():
                counts[elem.elem_type] += 1
        return counts

    counts = benchmark(extract)

    # Table 1 shape checks: all four elem types, conditional fields correct.
    assert set(counts) >= {ElemType.RIB, ElemType.ANNOUNCEMENT, ElemType.WITHDRAWAL}
    for record in records[:2000]:
        for elem in record.elems():
            if elem.elem_type in (ElemType.RIB, ElemType.ANNOUNCEMENT):
                assert elem.prefix is not None and elem.as_path is not None
                assert elem.next_hop
            elif elem.elem_type == ElemType.WITHDRAWAL:
                assert elem.prefix is not None and elem.as_path is None
            else:
                assert elem.old_state is not None and elem.new_state is not None
    benchmark.extra_info["records"] = len(records)
    benchmark.extra_info["elems"] = sum(counts.values())
    benchmark.extra_info["elems_per_type"] = {str(k): v for k, v in counts.items()}
