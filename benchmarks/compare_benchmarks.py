"""Compare a pytest-benchmark JSON run against a committed baseline.

The CI ``benchmark-regression`` job runs the trie and parallel-engine
benchmark files with ``--benchmark-json`` and feeds the result here next to
the committed ``BENCH_PR*.json`` baseline.  A benchmark regresses when its
median exceeds ``--max-ratio`` times the baseline median (2x by default —
generous, because the baseline and the CI runner are different machines;
the gate catches algorithmic regressions, not scheduler noise).

Usage::

    python benchmarks/compare_benchmarks.py BASELINE.json CURRENT.json \
        [--max-ratio 2.0] [--pattern trie --pattern parallel_engine]

Patterns are substrings of the benchmark ``fullname``; with no pattern,
every benchmark present in both files is compared.  Benchmarks present in
only one file are reported but never fail the gate (new benchmarks have no
baseline yet; retired ones have no current run).

Refreshing the baseline: rerun the same pytest command with
``--benchmark-json=BENCH_PR<N>.json`` on the reference machine and commit the
file (see docs/BENCHMARKS.md for the full recipe).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List


def load_medians(path: str) -> Dict[str, float]:
    with open(path) as handle:
        data = json.load(handle)
    medians: Dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        # Defensive: a malformed or truncated entry (no fullname, missing
        # stats) must degrade to "that benchmark has no data here", not
        # crash the whole gate with a KeyError.
        name = bench.get("fullname")
        median = bench.get("stats", {}).get("median")
        if name is None or median is None:
            continue
        medians[name] = median
    return medians


def compare(
    baseline: Dict[str, float],
    current: Dict[str, float],
    patterns: List[str],
    max_ratio: float,
) -> int:
    def selected(name: str) -> bool:
        return not patterns or any(p in name for p in patterns)

    names = sorted(n for n in (set(baseline) | set(current)) if selected(n))
    if not names:
        print("error: no benchmarks matched", file=sys.stderr)
        return 2

    failures = 0
    width = max(len(n) for n in names)
    print(f"{'benchmark':<{width}}  {'baseline':>10}  {'current':>10}  {'ratio':>7}")
    for name in names:
        base = baseline.get(name)
        cur = current.get(name)
        if base is None or cur is None:
            # One-sided benchmarks never fail the gate: an addition has no
            # baseline yet, a retired one no current run.
            missing = "new benchmark, no baseline" if base is None else "not run"
            print(f"{name:<{width}}  {'-':>10}  {'-':>10}  [{missing}]")
            continue
        ratio = cur / base if base > 0 else float("inf")
        verdict = "ok"
        if ratio > max_ratio:
            verdict = f"REGRESSION (>{max_ratio}x)"
            failures += 1
        print(f"{name:<{width}}  {base:>10.5f}  {cur:>10.5f}  {ratio:>6.2f}x  {verdict}")
    if failures:
        print(f"\n{failures} benchmark(s) regressed beyond {max_ratio}x", file=sys.stderr)
        return 1
    print("\nno benchmark regressions")
    return 0


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON (e.g. BENCH_PR8.json)")
    parser.add_argument("current", help="freshly produced --benchmark-json output")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="fail when current median exceeds baseline by this factor")
    parser.add_argument("--pattern", action="append", default=[],
                        help="only compare benchmarks whose fullname contains this "
                             "substring (repeatable)")
    args = parser.parse_args(argv)
    return compare(
        load_medians(args.baseline), load_medians(args.current), args.pattern, args.max_ratio
    )


if __name__ == "__main__":
    sys.exit(main())
