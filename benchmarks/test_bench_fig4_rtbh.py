"""E5 — Figure 4: data-plane reachability during vs after black-holing.

Control plane: a community-filtered stream over the event archive detects
the RTBH start and end.  Data plane: traceroutes from Atlas-style probes
towards the black-holed destination during and after the episode.  The
Figure 4 shape: reachability (of both the destination and its origin AS)
collapses while RTBH is active and recovers after it is withdrawn.
"""

from __future__ import annotations

from repro.atlas.rtbh import RTBHExperiment, detect_rtbh_requests
from repro.collectors.events import RTBHEvent

from benchmarks.conftest import make_stream


def test_fig4_rtbh_reachability(benchmark, event_archive, event_scenario):
    rtbh = next(e for e in event_scenario.timeline.events if isinstance(e, RTBHEvent))

    def run():
        stream = make_stream(
            event_archive,
            event_scenario.start,
            event_scenario.end,
            record_type=["updates"],
        )
        requests = detect_rtbh_requests(stream, rtbh.communities)
        experiment = RTBHExperiment(event_scenario.topology, seed=7)
        measurements = experiment.run(requests, {rtbh.blackhole_prefix: rtbh})
        return requests, measurements

    requests, measurements = benchmark.pedantic(run, rounds=1, iterations=1)

    # Control plane: the episode was detected, with start and end.
    matching = [r for r in requests if r.prefix == rtbh.blackhole_prefix]
    assert matching
    assert matching[0].end is not None
    assert matching[0].origin_asn == rtbh.customer_asn

    # Data plane: Figure 4a/4b shapes.
    assert measurements
    for m in measurements:
        assert m.during_destination_fraction < 0.3
        assert m.after_destination_fraction > 0.9
        assert m.during_origin_fraction <= m.after_origin_fraction
        assert m.after_origin_fraction > 0.9
        assert m.probes_used >= 25
    benchmark.extra_info["episodes_detected"] = len(requests)
    benchmark.extra_info["rows"] = [
        {
            "prefix": str(m.request.prefix),
            "dest_during": round(m.during_destination_fraction, 3),
            "dest_after": round(m.after_destination_fraction, 3),
            "origin_during": round(m.during_origin_fraction, 3),
            "origin_after": round(m.after_origin_fraction, 3),
        }
        for m in measurements
    ]
