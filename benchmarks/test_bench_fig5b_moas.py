"""E7 — Figure 5b: MOAS sets over time, overall vs per collector.

Shape checks from the paper: the number of observable MOAS sets grows slowly
over time, and the overall aggregation always identifies at least as many
MOAS sets as the best single collector (usually strictly more) — the reason
to analyse data from as many collectors as are available.
"""

from __future__ import annotations

from repro.analysis.moas import analyse_moas


def test_fig5b_moas_sets(benchmark, longitudinal_archive, month_timestamps):
    def run():
        return analyse_moas(longitudinal_archive, month_timestamps, workers=4)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    counts = dict(result.overall_counts())
    first, last = month_timestamps[0], month_timestamps[-1]
    assert counts[last] > 0
    assert counts[last] >= counts[first]  # slow growth

    # Overall >= any single collector, every month; strictly greater in at
    # least one month with multiple collectors contributing.
    strictly_greater = 0
    for month in month_timestamps:
        overall = len(result.overall[month])
        best_single = result.max_single_collector_count(month)
        assert overall >= best_single
        if overall > best_single:
            strictly_greater += 1
    assert strictly_greater >= 1

    benchmark.extra_info["overall_series"] = [counts[m] for m in month_timestamps]
    benchmark.extra_info["per_collector_final"] = {
        collector: len(sets)
        for collector, sets in result.per_collector[last].items()
    }
