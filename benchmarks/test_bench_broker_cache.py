"""Decoded-segment cache: warm broker replay vs cold decode (ISSUE 8).

The broker tier's segment cache persists each dump file's decoded records
as a columnar pickle segment keyed by the file's content signature.
Replaying a multi-collector window through ``BGPStream(broker=...)`` with a
warm cache skips MRT wire decode entirely — the claim benchmarked here is
that the warm replay beats a cold decode of the same window by at least
``SPEEDUP_FLOOR``x while yielding identical record *and* elem sequences.

The workload is the attribute-heavy update shape where wire decode
dominates (long prepended AS paths, large community sets — the same shape
as the lazy-decode benchmark), spread across three collectors so the
replay exercises the broker's multi-collector window merge.  Every elem's
prefix, path and communities are materialised: a replay that never reads
attributes is already served by the lazy tier, and the segment cache's
value is precisely the workloads that read everything.

Equivalence is asserted before any timing: the cold (cache-populating)
pass, the warm (cache-served) pass and an uncached reference replay must
flatten to the same sequence, elems included.
"""

from __future__ import annotations

import gc
import time

import pytest

from repro.bgp.aspath import ASPath
from repro.bgp.attributes import PathAttributes
from repro.bgp.community import CommunitySet
from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.broker.broker import Broker
from repro.broker.segments import SegmentCache
from repro.collectors.archive import Archive
from repro.core.stream import BGPStream
from repro.mrt import parser as mrt_parser
from repro.mrt.records import BGP4MPMessage
from repro.mrt.writer import write_updates_dump

SPEEDUP_FLOOR = 3.0

#: Three collectors across both projects: one broker window merges them all.
COLLECTORS = (("ris", "rrc0"), ("ris", "rrc1"), ("routeviews", "route-views0"))
UPDATES_PER_COLLECTOR = 1500
PATH_LENGTH = 64
COMMUNITIES_PER_SET = 160
DUMP_START = 1_000


def _heavy_updates(count):
    paths = [
        ASPath.from_asns([65001 + (i * 7 + j) % 3000 for j in range(PATH_LENGTH)])
        for i in range(150)
    ]
    community_sets = [
        CommunitySet.from_pairs(
            [(65000 + (i + j) % 200, j) for j in range(COMMUNITIES_PER_SET)]
        )
        for i in range(80)
    ]
    for i in range(count):
        prefix = Prefix.from_string(f"10.{(i >> 8) % 250}.{i % 250}.0/24")
        attributes = PathAttributes(
            origin=0,
            as_path=paths[i % len(paths)],
            next_hop=f"192.0.2.{i % 200 + 1}",
            communities=community_sets[i % len(community_sets)],
            med=5,
            local_pref=100,
            aggregator=(65010, "10.0.0.99"),
        )
        update = BGPUpdate(withdrawn=(), attributes=attributes, announced=(prefix,))
        yield (
            DUMP_START + i,
            BGP4MPMessage(65001, 64999, "192.0.2.1", "192.0.2.2", update),
        )


@pytest.fixture(scope="module")
def heavy_archive(tmp_path_factory):
    root = tmp_path_factory.mktemp("broker-cache-archive")
    archive = Archive(str(root / "archive"))
    for project, collector in COLLECTORS:
        dump = str(root / f"{collector}.updates.mrt.gz")
        write_updates_dump(dump, _heavy_updates(UPDATES_PER_COLLECTOR))
        archive.publish(
            project, collector, "updates", DUMP_START,
            UPDATES_PER_COLLECTOR, dump, available_at=1,
        )
    return archive


def _stream(archive, segment_cache):
    stream = BGPStream(
        broker=Broker(archives=[archive]),
        segment_cache=segment_cache,
        parallel=False,
    )
    stream.add_interval_filter(DUMP_START, DUMP_START + UPDATES_PER_COLLECTOR + 10)
    return stream


def _replay_flat(archive, segment_cache=None):
    """Full replay rendering every elem to comparable values — the
    equivalence probe (untimed; rendering costs the same on every path)."""
    flat = []
    for record in _stream(archive, segment_cache).records():
        elems = tuple(
            (e.elem_type, e.time, str(e.prefix) if e.prefix else None,
             str(e.as_path) if e.as_path else None,
             len(e.communities) if e.communities else 0, e.peer_asn)
            for e in record.elems()
        )
        flat.append(
            (record.time, record.project, record.collector, record.dump_type,
             record.status, record.dump_position, elems)
        )
    return flat


def _replay_timed(archive, segment_cache=None):
    """The timed workload: touch every elem's prefix, path and communities
    (forcing the lazy tier to materialise them on the decode path) without
    the string rendering both paths would pay identically."""
    count = 0
    for record in _stream(archive, segment_cache).records():
        for elem in record.elems():
            if (elem.prefix, elem.as_path, elem.communities, elem.peer_asn):
                count += 1
    return count


def test_warm_segment_cache_beats_cold_decode(benchmark, tmp_path_factory, heavy_archive):
    cache = SegmentCache(str(tmp_path_factory.mktemp("segment-cache")))

    # Equivalence first: uncached reference, the cache-populating pass, and
    # one warm pass must render to the same record/elem sequence.
    mrt_parser.clear_index_cache()
    reference = _replay_flat(heavy_archive)
    assert reference, "archive must produce records"

    mrt_parser.clear_index_cache()
    populating = _replay_flat(heavy_archive, segment_cache=cache)
    assert populating == reference, "cache-populating pass diverged from cold decode"
    stored = cache.stats()["stores"]
    assert stored == len(COLLECTORS), "every dump file must persist a segment"

    warm = _replay_flat(heavy_archive, segment_cache=cache)
    assert warm == reference, "cache-served pass diverged from cold decode"
    assert cache.stats()["hits"] >= stored
    total_elems = sum(len(elems) for *_rest, elems in reference)
    total_records = len(reference)
    # Drop the flattened sequences before timing: three windows' worth of
    # rendered tuples alive on the heap is pure GC drag for both passes.
    del reference, populating, warm
    gc.collect()

    # Cold decode, from cold parser caches, with no segment cache in play —
    # the decode path a first-ever replay of the window pays.
    mrt_parser.clear_index_cache()
    start = time.perf_counter()
    assert _replay_timed(heavy_archive) == total_elems
    cold_seconds = time.perf_counter() - start

    # Timed warm replays: every file served from its persisted segment.
    def warm_replay():
        return _replay_timed(heavy_archive, segment_cache=cache)

    assert benchmark.pedantic(warm_replay, rounds=3, iterations=1) == total_elems
    warm_seconds = benchmark.stats.stats.min
    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")

    stats = cache.stats()
    benchmark.extra_info["records"] = total_records
    benchmark.extra_info["segments"] = stats["segments"]
    benchmark.extra_info["cache_bytes"] = stats["bytes_used"]
    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 4)
    benchmark.extra_info["warm_seconds"] = round(warm_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm segment-cache replay only {speedup:.2f}x faster than cold decode "
        f"(cold {cold_seconds:.3f}s, warm {warm_seconds:.3f}s)"
    )
