"""E12 — Figure 10: country-level visible-prefix series with injected outages.

Runs the full global-monitoring pipeline (RT publishers → messaging
substrate → outage consumer) over the event archive and checks the Figure 10
signature for the country hit by the scripted outage: the visible-prefix
series drops sharply during the outage window and recovers afterwards, while
unaffected countries stay flat; the change-point detector turns the drop
into an outage alert.
"""

from __future__ import annotations

from repro.collectors.events import OutageEvent
from repro.kafka.broker import MessageBroker
from repro.monitoring.geo import GeoDatabase
from repro.monitoring.outages import OutageConsumer
from repro.monitoring.publisher import run_publishers


def test_fig10_country_outages(benchmark, event_archive, event_scenario):
    outage = next(e for e in event_scenario.timeline.events if isinstance(e, OutageEvent))
    collectors = [c.name for c in event_scenario.collectors]
    geo = GeoDatabase.from_topology(event_scenario.topology)

    def run():
        message_broker = MessageBroker()
        run_publishers(
            message_broker,
            event_archive,
            collectors,
            event_scenario.start,
            event_scenario.end,
            bin_size=300,
        )
        consumer = OutageConsumer(message_broker, collectors, geo)
        consumer.poll()
        return consumer

    consumer = benchmark.pedantic(run, rounds=1, iterations=1)

    series = dict(consumer.country_series(outage.country))
    before = [v for ts, v in series.items() if ts < outage.interval.start - 300]
    during = [
        v
        for ts, v in series.items()
        if outage.interval.start + 300 <= ts < outage.interval.end - 300
    ]
    after = [v for ts, v in series.items() if ts >= outage.interval.end + 300]
    assert before and during and after
    assert min(during) < 0.6 * max(before)  # a pronounced drop
    assert max(after) >= 0.9 * max(before)  # recovery after the outage ends

    alerts = [a for a in consumer.detect_outages("country") if a.key == outage.country]
    assert alerts
    assert abs(alerts[0].start - outage.interval.start) <= 600

    # Per-AS view (the stacked per-ISP lines of Figure 10).
    affected_asn = outage.asns[0]
    asn_series = dict(consumer.asn_series(affected_asn))
    if asn_series:
        asn_before = [v for ts, v in asn_series.items() if ts < outage.interval.start - 300]
        asn_during = [
            v
            for ts, v in asn_series.items()
            if outage.interval.start + 300 <= ts < outage.interval.end - 300
        ]
        if asn_before and asn_during:
            assert min(asn_during) <= min(asn_before)

    benchmark.extra_info["country"] = outage.country
    benchmark.extra_info["visible_before_max"] = max(before)
    benchmark.extra_info["visible_during_min"] = min(during)
    benchmark.extra_info["alerts"] = len(alerts)
