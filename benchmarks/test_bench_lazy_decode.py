"""Lazy zero-copy decode tier vs eager full decode (ISSUE 6).

Three claims about the lazy tier:

1. **filtered replay** — the paper's canonical use case (monitor one prefix
   of interest across a firehose of updates) only ever reads the cheap gate
   fields of rejected elems, so deferring path-attribute materialisation
   until first read speeds the whole replay by ≥3x over eager decode;
2. **unfiltered replay** — when every elem is fully read (``field_dict`` per
   elem), the lazy tier materialises everything anyway and must stay within
   a small constant factor of eager decode (the deferral bookkeeping must
   not cost a regression);
3. **BMP scan** — the live-path framing scan re-measured under the lazy
   tier: Route Monitoring bodies whose attributes are never read defer
   their decode entirely, so the wire-to-message scan beats the eager scan.

Equivalence (identical field dicts from both tiers) is asserted before any
timing; the exhaustive cross-product lives in
``tests/core/test_lazy_equivalence.py``.
"""

from __future__ import annotations

import time

import pytest

from repro.bgp.aspath import ASPath
from repro.bgp.attributes import PathAttributes
from repro.bgp.community import CommunitySet
from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.bmp.codec import scan_messages
from repro.bmp.messages import BMPMessage, BMPPeerHeader
from repro.core.interfaces import SingleFileDataInterface
from repro.core.intern import reset_default_pool
from repro.core.stream import BGPStream
from repro.mrt.parser import clear_index_cache
from repro.mrt.records import BGP4MPMessage
from repro.mrt.writer import write_updates_dump

#: Update shape: transit-grade attribute blocks (long prepended AS paths,
#: large community sets, aggregator) drawn from repeating populations, one
#: announcement per message — the shape where per-attribute decode cost
#: dominates an eager replay.
UPDATE_MESSAGES = 4000
PATH_LENGTH = 40
COMMUNITIES_PER_SET = 100
DISTINCT_PATHS = 150
DISTINCT_COMMUNITY_SETS = 80

#: The one prefix the filtered replay watches (announced by one message).
WATCHED_PREFIX = "10.7.33.0/24"

SPEEDUP_FLOOR = 3.0
REGRESSION_CEILING = 1.35


def _update_bodies():
    paths = [
        ASPath.from_asns([65001 + (i * 7 + j) % 3000 for j in range(PATH_LENGTH)])
        for i in range(DISTINCT_PATHS)
    ]
    community_sets = [
        CommunitySet.from_pairs(
            [(65000 + (i + j) % 200, j) for j in range(COMMUNITIES_PER_SET)]
        )
        for i in range(DISTINCT_COMMUNITY_SETS)
    ]
    for i in range(UPDATE_MESSAGES):
        prefix = Prefix.from_string(f"10.{(i >> 8) % 250}.{i % 250}.0/24")
        attributes = PathAttributes(
            origin=0,
            as_path=paths[i % len(paths)],
            next_hop=f"192.0.2.{i % 200 + 1}",
            communities=community_sets[i % len(community_sets)],
            med=5,
            local_pref=100,
            aggregator=(65010, "10.0.0.99"),
        )
        update = BGPUpdate(announced=[prefix], withdrawn=[], attributes=attributes)
        yield (
            1000 + i // 10,
            BGP4MPMessage(
                65001 + i % 4, 64600, f"192.0.2.{i % 4 + 10}", "192.0.2.1", update
            ),
        )


@pytest.fixture(scope="module")
def heavy_updates_dump(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("lazy-bench") / "updates.mrt")
    write_updates_dump(path, _update_bodies(), compress=False)
    return path


def _replay(dump_path, eager, prefix_filter=None, touch=False):
    """One full pass; returns (matched_elem_count, matched_field_dicts)."""
    clear_index_cache()
    reset_default_pool()
    stream = BGPStream(
        data_interface=SingleFileDataInterface(dump_path, dump_type="updates"),
        eager=eager,
    )
    if prefix_filter is not None:
        stream.add_filter("prefix-exact", prefix_filter)
    matched = 0
    fields = []
    for _record, elem in stream.elems():
        matched += 1
        if touch:
            fields.append(elem.field_dict())
    return matched, fields


def _min_seconds(fn, rounds=3):
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_lazy_filtered_replay_beats_eager(benchmark, heavy_updates_dump):
    """Prefix-of-interest replay: lazy tier ≥3x the eager elems/sec."""
    # Equivalence first: both tiers surface the identical matches.
    eager_matched, eager_fields = _replay(
        heavy_updates_dump, eager=True, prefix_filter=WATCHED_PREFIX, touch=True
    )
    lazy_matched, lazy_fields = _replay(
        heavy_updates_dump, eager=False, prefix_filter=WATCHED_PREFIX, touch=True
    )
    assert eager_matched == lazy_matched > 0
    assert eager_fields == lazy_fields

    def lazy_pass():
        return _replay(
            heavy_updates_dump, eager=False, prefix_filter=WATCHED_PREFIX, touch=True
        )

    benchmark.pedantic(lazy_pass, rounds=3, iterations=1, warmup_rounds=1)
    lazy_seconds = benchmark.stats.stats.min
    eager_seconds = _min_seconds(
        lambda: _replay(
            heavy_updates_dump, eager=True, prefix_filter=WATCHED_PREFIX, touch=True
        )
    )

    speedup = eager_seconds / lazy_seconds
    benchmark.extra_info["records"] = UPDATE_MESSAGES
    benchmark.extra_info["eager_records_per_sec"] = round(UPDATE_MESSAGES / eager_seconds)
    benchmark.extra_info["lazy_records_per_sec"] = round(UPDATE_MESSAGES / lazy_seconds)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert speedup >= SPEEDUP_FLOOR, (
        f"lazy filtered replay only {speedup:.2f}x faster than eager "
        f"(expected ≥{SPEEDUP_FLOOR}x)"
    )


def test_lazy_unfiltered_replay_no_regression(benchmark, heavy_updates_dump):
    """Touch-everything replay: deferral bookkeeping must not cost a regression."""
    eager_matched, _ = _replay(heavy_updates_dump, eager=True, touch=True)
    lazy_matched, _ = _replay(heavy_updates_dump, eager=False, touch=True)
    assert eager_matched == lazy_matched == UPDATE_MESSAGES

    def lazy_pass():
        return _replay(heavy_updates_dump, eager=False, touch=True)

    benchmark.pedantic(lazy_pass, rounds=3, iterations=1, warmup_rounds=1)
    lazy_seconds = benchmark.stats.stats.min
    eager_seconds = _min_seconds(lambda: _replay(heavy_updates_dump, eager=True, touch=True))

    ratio = lazy_seconds / eager_seconds
    benchmark.extra_info["eager_records_per_sec"] = round(UPDATE_MESSAGES / eager_seconds)
    benchmark.extra_info["lazy_records_per_sec"] = round(UPDATE_MESSAGES / lazy_seconds)
    benchmark.extra_info["lazy_vs_eager_ratio"] = round(ratio, 2)
    assert ratio <= REGRESSION_CEILING, (
        f"lazy full-read replay is {ratio:.2f}x eager (ceiling {REGRESSION_CEILING}x)"
    )


@pytest.fixture(scope="module")
def bmp_wire():
    """The same update population as one buffer of encoded BMP frames."""
    frames = []
    for timestamp, body in _update_bodies():
        peer = BMPPeerHeader(
            address=body.peer_address, asn=body.peer_asn, timestamp_sec=timestamp
        )
        frames.append(BMPMessage.route_monitoring(peer, body.update).encode())
    return b"".join(frames)


def test_lazy_bmp_scan_beats_eager(benchmark, bmp_wire):
    """Framing scan re-measured: deferred bodies make the lazy scan faster."""

    def lazy_scan():
        return scan_messages(bmp_wire, lazy=True)

    messages = benchmark.pedantic(lazy_scan, rounds=3, iterations=1, warmup_rounds=1)
    assert len(messages) == UPDATE_MESSAGES
    assert all(message.is_valid for message in messages)
    lazy_seconds = benchmark.stats.stats.min
    eager_seconds = _min_seconds(lambda: scan_messages(bmp_wire, lazy=False))

    benchmark.extra_info["mbytes"] = round(len(bmp_wire) / 1e6, 2)
    benchmark.extra_info["lazy_messages_per_sec"] = round(UPDATE_MESSAGES / lazy_seconds)
    benchmark.extra_info["eager_messages_per_sec"] = round(UPDATE_MESSAGES / eager_seconds)
    benchmark.extra_info["speedup"] = round(eager_seconds / lazy_seconds, 2)
    # The scan itself never reads the deferred attributes, so the lazy tier
    # must win outright here; a generous ceiling guards against noise.
    assert lazy_seconds <= eager_seconds * REGRESSION_CEILING
