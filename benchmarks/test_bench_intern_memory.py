"""Flyweight interning: elem-extraction throughput and peak memory.

A synthetic RIB replay in the shape §5–§6 of the paper dimensions the
framework for: a TABLE_DUMP_V2 dump whose entries repeat a small population
of distinct AS paths / community sets across many (VP × prefix) cells, plus
an Updates dump re-announcing a slice of the table.  The replay extracts
every elem and maintains a routing-table-matrix consumer (per-VP cells,
distinct-path tallies, ``same_route``-style comparisons) — the hot loop of
the RT plugin.

Two claims are benchmarked against the *uninterned* path (interning fully
off, as ``bgpreader --no-intern`` configures it):

1. **throughput** — interned elem extraction + consumption must be faster
   (canonical objects carry cached hashes and take identity fast paths in
   every dict/set/equality the consumer performs);
2. **peak memory** — a cold parse + replay retaining the RT matrix must
   allocate at least 30% less at peak (``tracemalloc``), because the
   duplicate path/community/prefix objects a RIB repeats millions of times
   become garbage at decode time instead of living in the matrix.

The interned and uninterned replays must also observe *identical* elem
sequences — including through the parallel engine — which is asserted
before any timing.
"""

from __future__ import annotations

import random
import time
import tracemalloc

import pytest

from repro.bgp.aspath import ASPath
from repro.bgp.attributes import PathAttributes
from repro.bgp.community import CommunitySet
from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.core.intern import (
    InternPool,
    default_pool,
    parse_interning,
    reset_default_pool,
)
from repro.core.interfaces import DumpFileSpec
from repro.core.parallel import ParallelConfig, ParallelStreamEngine
from repro.core.sorter import DumpFileReader
from repro.mrt.parser import clear_index_cache
from repro.mrt.records import BGP4MPMessage, PeerEntry
from repro.mrt.writer import write_rib_dump, write_updates_dump

#: Population shape: many cells, few distinct values (a real RIB sits around
#: 60-100k distinct paths for ~1M prefixes; the ratio here is comparable).
PEERS = 4
PREFIXES = 3000
DISTINCT_PATHS = 250
DISTINCT_COMMUNITY_SETS = 120
UPDATE_MESSAGES = 600


@pytest.fixture(scope="module")
def rib_replay_specs(tmp_path_factory):
    """Write the synthetic RIB + Updates dumps once per benchmark session."""
    rng = random.Random(20160201)
    base = tmp_path_factory.mktemp("intern-replay")

    paths = [
        ASPath.from_asns(
            [rng.randrange(1, 65000) for _ in range(rng.randrange(3, 8))]
        )
        for _ in range(DISTINCT_PATHS)
    ]
    community_sets = [
        CommunitySet.from_pairs(
            (rng.randrange(1, 65000), rng.randrange(0, 1000))
            for _ in range(rng.randrange(1, 5))
        )
        for _ in range(DISTINCT_COMMUNITY_SETS)
    ]
    prefixes = []
    seen = set()
    while len(prefixes) < PREFIXES:
        text = f"{rng.randrange(1, 224)}.{rng.randrange(256)}.{rng.randrange(256)}.0/24"
        if text not in seen:
            seen.add(text)
            prefixes.append(Prefix.from_string(text))

    peers = [PeerEntry(f"10.0.0.{i}", f"10.0.0.{i}", 64500 + i) for i in range(PEERS)]
    tables = {
        index: {
            prefix: PathAttributes(
                as_path=rng.choice(paths),
                next_hop=f"10.0.0.{rng.randrange(1, 5)}",
                communities=rng.choice(community_sets),
            )
            for prefix in prefixes
        }
        for index in range(PEERS)
    }
    rib_path = str(base / "rib.mrt")
    write_rib_dump(rib_path, 1000, "198.51.100.9", peers, tables)

    messages = []
    timestamp = 2000
    for _ in range(UPDATE_MESSAGES):
        timestamp += rng.randrange(0, 3)
        peer = rng.choice(peers)
        attrs = PathAttributes(
            as_path=rng.choice(paths),
            next_hop=f"10.0.0.{rng.randrange(1, 5)}",
            communities=rng.choice(community_sets),
        )
        update = BGPUpdate(announced=rng.sample(prefixes, rng.randrange(1, 6)), attributes=attrs)
        messages.append(
            (timestamp, BGP4MPMessage(peer.asn, 65535, peer.address, "198.51.100.9", update))
        )
    upd_path = str(base / "updates.mrt")
    write_updates_dump(upd_path, messages)

    return [
        DumpFileSpec(rib_path, "ris", "rrc0", "ribs", 1000, 60),
        DumpFileSpec(upd_path, "ris", "rrc0", "updates", 2000, 300),
    ]


def _parse(specs, interning: bool):
    """Cold-parse the dumps into record lists (cache/pool reset first)."""
    clear_index_cache()
    reset_default_pool()
    with parse_interning(interning):
        return [list(DumpFileReader(spec)) for spec in specs]


def _replay(record_lists, pool):
    """Extract every elem and run the RT-matrix-style consumer over it.

    The consumer does what the RT plugin and the §5 analyses do per elem:
    keyed cell updates, ``same_route``-style comparison, and per-path /
    per-community-set tallies (Figures 5b–5d) — each one a hash + equality
    over the path/communities values.
    """
    cells = {}
    path_tally = {}
    community_tally = {}
    observed_routes = set()
    route_changes = 0
    elems = 0
    for records in record_lists:
        for record in records:
            record.intern_pool = pool
            for elem in record.elems():
                elems += 1
                if elem.prefix is None:
                    continue
                key = (elem.peer_address, elem.prefix)
                route = (elem.as_path, elem.next_hop, elem.communities)
                existing = cells.get(key)
                if existing is None or existing != route:
                    route_changes += 1
                cells[key] = route
                observed_routes.add((elem.prefix, elem.as_path, elem.communities))
                path_tally[elem.as_path] = path_tally.get(elem.as_path, 0) + 1
                community_tally[elem.communities] = (
                    community_tally.get(elem.communities, 0) + 1
                )
    return cells, path_tally, route_changes, elems


def _elem_lines(record_lists, pool):
    lines = []
    for records in record_lists:
        for record in records:
            record.intern_pool = pool
            lines.extend(elem.to_ascii() for elem in record.elems())
    return lines


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_interned_replay_beats_uninterned_throughput(benchmark, rib_replay_specs):
    interned_records = _parse(rib_replay_specs, interning=True)
    # What BGPStream(interning=True) uses: the pool parse-time interning
    # filled, so elem-time canonicalisation takes the identity fast path.
    interned_pool = default_pool()
    uninterned_records = _parse(rib_replay_specs, interning=False)

    # Identical observable elem sequences first.
    assert _elem_lines(interned_records, interned_pool) == _elem_lines(uninterned_records, None)

    def interned_pass():
        return _replay(interned_records, interned_pool)

    def uninterned_pass():
        return _replay(uninterned_records, None)

    # Same consumer results either way.
    cells_a, tally_a, changes_a, elems_a = interned_pass()
    cells_b, tally_b, changes_b, elems_b = uninterned_pass()
    assert cells_a == cells_b and tally_a == tally_b
    assert (changes_a, elems_a) == (changes_b, elems_b)
    assert elems_a >= PEERS * PREFIXES

    # Min-of-5 on both sides: the min is the noise-robust statistic for a
    # CPU-bound loop on a shared CI runner.
    uninterned_seconds = min(_timed(uninterned_pass) for _ in range(5))
    benchmark.pedantic(interned_pass, rounds=5, iterations=1)
    interned_seconds = benchmark.stats.stats.min

    benchmark.extra_info["elems"] = elems_a
    benchmark.extra_info["distinct_paths"] = len(tally_a)
    benchmark.extra_info["uninterned_seconds"] = round(uninterned_seconds, 4)
    benchmark.extra_info["interned_seconds"] = round(interned_seconds, 4)
    benchmark.extra_info["speedup"] = round(uninterned_seconds / interned_seconds, 2)
    assert interned_seconds < uninterned_seconds


def test_interned_replay_cuts_peak_memory(benchmark, rib_replay_specs):
    """Cold parse + replay retaining the RT matrix: ≥30% lower peak RSS."""

    def peak_bytes(interning: bool) -> int:
        clear_index_cache()
        reset_default_pool()
        tracemalloc.start()
        try:
            with parse_interning(interning):
                record_lists = [list(DumpFileReader(spec)) for spec in rib_replay_specs]
            pool = InternPool() if interning else None
            retained = _replay(record_lists, pool)
            _, peak = tracemalloc.get_traced_memory()
            assert retained[3] > 0
        finally:
            tracemalloc.stop()
        return peak

    uninterned_peak = peak_bytes(False)
    interned_peak = benchmark.pedantic(lambda: peak_bytes(True), rounds=1, iterations=1)

    reduction = 1 - interned_peak / uninterned_peak
    benchmark.extra_info["uninterned_peak_mb"] = round(uninterned_peak / 1e6, 2)
    benchmark.extra_info["interned_peak_mb"] = round(interned_peak / 1e6, 2)
    benchmark.extra_info["peak_reduction"] = round(reduction, 3)
    assert reduction >= 0.30, (
        f"interned peak {interned_peak} vs uninterned {uninterned_peak} "
        f"({reduction:.1%} reduction; expected ≥30%)"
    )


def test_interned_sequences_identical_under_parallel(rib_replay_specs):
    """The acceptance cross-check: interning on/off × sequential/parallel all
    emit the same elem sequence (no timing, pure equivalence)."""
    reference = None
    for interning in (True, False):
        for mode in ("sequential", "parallel"):
            clear_index_cache()
            reset_default_pool()
            with parse_interning(interning):
                if mode == "parallel":
                    config = ParallelConfig(
                        executor="thread", max_workers=2, intern=interning
                    )
                    with ParallelStreamEngine(config) as engine:
                        records = list(engine.iter_records(rib_replay_specs))
                        record_lists = [records]
                else:
                    record_lists = [list(DumpFileReader(spec)) for spec in rib_replay_specs]
                pool = InternPool() if interning else None
                lines = _elem_lines(record_lists, pool)
            if reference is None:
                reference = lines
            assert lines == reference
    assert reference
