"""E8 — Figure 5c: number of ASNs and transit-AS fraction, IPv4 vs IPv6.

Shape checks from the paper: the IPv4 AS count grows roughly linearly while
its transit fraction stays in a narrow band; IPv6 appears later, grows fast,
and ends with a *larger* transit fraction than IPv4 (smaller adoption at the
edge).
"""

from __future__ import annotations

from repro.analysis.transit import analyse_transit


def test_fig5c_transit_fractions(benchmark, longitudinal_archive, month_timestamps):
    def run():
        return analyse_transit(longitudinal_archive, month_timestamps, workers=4)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    v4_counts = [result.total_asns[m][4] for m in month_timestamps]
    v6_counts = [result.total_asns[m][6] for m in month_timestamps]
    v4_fracs = [result.transit_fraction(m, 4) for m in month_timestamps]

    # IPv4: growth in AS count, near-constant transit fraction.
    assert v4_counts[-1] > 1.5 * v4_counts[0]
    assert all(0.1 < f < 0.6 for f in v4_fracs)
    assert max(v4_fracs) - min(v4_fracs) < 0.25

    # IPv6: appears later, grows fast, transit fraction ends above IPv4's.
    assert v6_counts[0] == 0
    assert v6_counts[-1] > 0
    first_v6_month = next(i for i, c in enumerate(v6_counts) if c > 0)
    assert first_v6_month > 0
    last = month_timestamps[-1]
    assert result.transit_fraction(last, 6) > result.transit_fraction(last, 4)

    benchmark.extra_info["v4_asn_series"] = v4_counts
    benchmark.extra_info["v6_asn_series"] = v6_counts
    benchmark.extra_info["v4_transit_fraction"] = [round(f, 3) for f in v4_fracs]
    benchmark.extra_info["v6_transit_fraction_final"] = round(
        result.transit_fraction(last, 6), 3
    )
