"""BMP codec throughput and live-path records/sec vs the MRT replay.

Two claims about the new live subsystem (ISSUE 5):

1. **codec throughput** — the RFC 7854 framing scan + body decode sustains
   a firehose-shaped stream of Route Monitoring frames (the message type
   that dominates a real feed by orders of magnitude);
2. **live-path rate** — delivering the same UPDATE sequence through the
   whole live stack (BMP encode → router-keyed Kafka topic → framing scan →
   record conversion → BGPStream filter/intern pipeline) stays within a
   small constant factor of the equivalent MRT-file replay, i.e. the live
   mode is the same order of magnitude as the historical path it mirrors —
   and both paths emit the *identical* elem sequence, which is asserted
   before any timing.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.bgp.aspath import ASPath
from repro.bgp.attributes import PathAttributes
from repro.bgp.community import CommunitySet
from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.bmp.codec import scan_messages
from repro.bmp.messages import BMPMessage, BMPPeerHeader
from repro.bmp.source import BMPFeedProducer
from repro.core.interfaces import LiveDataInterface, SingleFileDataInterface
from repro.core.stream import BGPStream
from repro.kafka.broker import MessageBroker
from repro.mrt.parser import clear_index_cache
from repro.mrt.records import BGP4MPMessage
from repro.mrt.writer import write_updates_dump

#: Feed shape: a few peers, many updates, a repeating attribute population
#: (live feeds repeat paths exactly as RIB dumps do).
PEERS = 4
UPDATE_MESSAGES = 4000
DISTINCT_PATHS = 120
DISTINCT_COMMUNITY_SETS = 60
ROUTER = "rtr1.bench"


@pytest.fixture(scope="module")
def update_feed():
    """One synthetic UPDATE sequence: (timestamp, peer_address, asn, update)."""
    rng = random.Random(20160202)
    paths = [
        ASPath.from_asns([rng.randrange(1, 65000) for _ in range(rng.randrange(3, 8))])
        for _ in range(DISTINCT_PATHS)
    ]
    community_sets = [
        CommunitySet.from_pairs(
            (rng.randrange(1, 65000), rng.randrange(0, 1000))
            for _ in range(rng.randrange(1, 4))
        )
        for _ in range(DISTINCT_COMMUNITY_SETS)
    ]
    prefixes = []
    seen = set()
    while len(prefixes) < 1500:
        text = f"{rng.randrange(1, 224)}.{rng.randrange(256)}.{rng.randrange(256)}.0/24"
        if text not in seen:
            seen.add(text)
            prefixes.append(Prefix.from_string(text))
    peers = [(f"10.0.0.{i + 1}", 64500 + i) for i in range(PEERS)]

    feed = []
    timestamp = 1_450_000_000
    for _ in range(UPDATE_MESSAGES):
        timestamp += rng.randrange(0, 2)
        address, asn = rng.choice(peers)
        update = BGPUpdate(
            announced=rng.sample(prefixes, rng.randrange(1, 4)),
            attributes=PathAttributes(
                as_path=rng.choice(paths),
                next_hop=address,
                communities=rng.choice(community_sets),
            ),
        )
        feed.append((timestamp, address, asn, update))
    return feed


@pytest.fixture(scope="module")
def bmp_wire(update_feed):
    """The feed as one back-to-back buffer of encoded BMP frames."""
    frames = []
    for timestamp, address, asn, update in update_feed:
        peer = BMPPeerHeader(address=address, asn=asn, timestamp_sec=timestamp)
        frames.append(BMPMessage.route_monitoring(peer, update).encode())
    return b"".join(frames)


@pytest.fixture(scope="module")
def mrt_dump(update_feed, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("bmp-bench") / "updates.mrt")
    bodies = [
        (ts, BGP4MPMessage(asn, 0, address, "0.0.0.0", update))
        for ts, address, asn, update in update_feed
    ]
    write_updates_dump(path, bodies, compress=False)
    return path


def test_bmp_codec_decode_throughput(benchmark, bmp_wire):
    """Framing scan + full body decode over the wire buffer."""

    def scan():
        return scan_messages(bmp_wire)

    messages = benchmark(scan)
    assert len(messages) == UPDATE_MESSAGES
    assert all(m.is_valid for m in messages)
    seconds = benchmark.stats.stats.min
    benchmark.extra_info["messages"] = len(messages)
    benchmark.extra_info["mbytes"] = round(len(bmp_wire) / 1e6, 2)
    benchmark.extra_info["messages_per_sec"] = round(len(messages) / seconds)
    benchmark.extra_info["mbytes_per_sec"] = round(len(bmp_wire) / 1e6 / seconds, 1)


def _live_elems(broker):
    stream = BGPStream(
        live={"broker": broker, "max_empty_polls": 1, "poll_interval": 0.0}
    )
    return [elem.to_ascii() for _, elem in stream.elems()]


def _replay_elems(mrt_dump):
    clear_index_cache()
    stream = BGPStream(
        data_interface=SingleFileDataInterface(
            mrt_dump, dump_type="updates", project="bmp", collector=ROUTER
        )
    )
    return [elem.to_ascii() for _, elem in stream.elems()]


def _publish(update_feed):
    broker = MessageBroker()
    producer = BMPFeedProducer(broker, router=ROUTER)
    for timestamp, address, asn, update in update_feed:
        peer = BMPPeerHeader(address=address, asn=asn, timestamp_sec=timestamp)
        producer.publish(BMPMessage.route_monitoring(peer, update))
    return broker


def test_live_path_matches_mrt_replay_rate(benchmark, update_feed, mrt_dump):
    """records/sec through the live stack vs the equivalent MRT replay."""
    # Equivalence first: identical elem sequences (the acceptance criterion).
    live_lines = _live_elems(_publish(update_feed))
    replay_lines = _replay_elems(mrt_dump)
    assert live_lines == replay_lines
    assert len(live_lines) >= UPDATE_MESSAGES

    # The Kafka publish is the collector's job, not the consumer's: prepare
    # one broker per timed round and measure the consuming side only
    # (poll → frame scan → convert → filter/intern pipeline).
    brokers = [_publish(update_feed) for _ in range(3)]

    def live_pass():
        live_pass.counter += 1
        source = LiveDataInterface(
            broker=brokers[live_pass.counter % len(brokers)],
            max_empty_polls=1,
            poll_interval=0.0,
        )
        source.source.seek_to_beginning()
        stream = BGPStream(data_interface=source)
        return sum(1 for _ in stream.records())

    live_pass.counter = -1

    records = benchmark.pedantic(live_pass, rounds=3, iterations=1)
    assert records == UPDATE_MESSAGES
    live_seconds = benchmark.stats.stats.min

    def replay_pass():
        clear_index_cache()
        stream = BGPStream(
            data_interface=SingleFileDataInterface(
                mrt_dump, dump_type="updates", project="bmp", collector=ROUTER
            )
        )
        return sum(1 for _ in stream.records())

    start = time.perf_counter()
    assert replay_pass() == UPDATE_MESSAGES
    replay_seconds = min(
        (time.perf_counter() - start, *(_timed(replay_pass) for _ in range(2)))
    )

    ratio = live_seconds / replay_seconds
    benchmark.extra_info["records"] = records
    benchmark.extra_info["live_records_per_sec"] = round(records / live_seconds)
    benchmark.extra_info["replay_records_per_sec"] = round(records / replay_seconds)
    benchmark.extra_info["live_vs_replay_ratio"] = round(ratio, 2)
    # Same order of magnitude: the live stack may pay for the Kafka hop and
    # the BMP scan, but must not be algorithmically worse than the replay.
    assert ratio < 5.0, f"live path {ratio:.1f}x slower than the MRT replay"


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
