"""E9 — Figure 5d: BGP community diversity as observed by VPs.

Shape checks from the paper: a majority (but not all) of VPs observe
communities — some BGP speakers strip them; per-collector aggregation is at
least as diverse as any of the collector's VPs; and collectors differ enough
that choosing the right collector matters (the paper picked route-views2 and
rrc12 this way).
"""

from __future__ import annotations

from repro.analysis.communities import analyse_communities


def test_fig5d_community_diversity(benchmark, longitudinal_archive, month_timestamps):
    timestamp = month_timestamps[-1]

    def run():
        return analyse_communities(longitudinal_archive, [timestamp], workers=4)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    assert result.total_communities > 0
    fraction = result.observing_fraction()
    assert 0.5 <= fraction <= 1.0

    counts = result.vp_identifier_counts()
    assert counts
    for (collector, _asn), count in counts.items():
        assert len(result.per_collector[collector]) >= count
    # Collectors are ranked by diversity; the ranking is what §5 uses to pick
    # collectors for the RTBH case study.
    ranking = result.top_collectors()
    assert ranking and ranking[0][1] >= ranking[-1][1]

    benchmark.extra_info["total_communities"] = result.total_communities
    benchmark.extra_info["vp_observing_fraction"] = round(fraction, 3)
    benchmark.extra_info["per_collector_identifiers"] = {
        collector: len(asns) for collector, asns in result.per_collector.items()
    }
