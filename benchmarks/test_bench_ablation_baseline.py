"""A2 — Ablation: BGPStream pipeline vs the classic bgpdump workflow (§2, §4.1).

Processes the same dump-file set twice: once through the BGPStream stack
(broker metadata → grouped multi-way merge → typed records/elems) and once
the pre-BGPStream way (file-at-a-time ASCII via a bgpdump clone, then
re-parsing the text).  The functional comparison is the point: the baseline
yields the same elems but *not* time-ordered across files, loses everything
after a corrupted record, and forces a lossy text round-trip; wall-clock is
reported for context.
"""

from __future__ import annotations

import time

from repro.baseline.bgpdump import BGPDumpBaseline
from repro.core.record import RecordStatus

from benchmarks.conftest import make_stream


def test_ablation_bgpstream_vs_bgpdump(benchmark, event_archive, event_scenario):
    updates = sorted(
        (e for e in event_archive.entries() if e.dump_type == "updates"),
        key=lambda e: (e.collector, e.timestamp),
    )

    # Baseline: bgpdump-style, file after file, re-parsing ASCII.
    start = time.perf_counter()
    baseline = BGPDumpBaseline([(e.path, e.dump_type) for e in updates])
    baseline_lines = list(baseline.parsed())
    baseline_seconds = time.perf_counter() - start
    baseline_times = [line.time for line in baseline_lines]

    def bgpstream_run():
        stream = make_stream(
            event_archive, event_scenario.start, event_scenario.end, record_type=["updates"]
        )
        times = []
        elems = 0
        for record, elem in stream.elems():
            if record.status != RecordStatus.VALID:
                continue
            elems += 1
            times.append(elem.time)
        return times

    stream_times = benchmark.pedantic(bgpstream_run, rounds=1, iterations=1)

    # Same volume of information (every update elem is seen by both)...
    assert len(stream_times) == len(baseline_times)
    # ...but only the BGPStream pipeline delivers it time-sorted across
    # collectors; the baseline interleaves nothing.
    assert stream_times == sorted(stream_times)
    assert baseline_times != sorted(baseline_times)

    benchmark.extra_info["elems"] = len(stream_times)
    benchmark.extra_info["baseline_seconds"] = round(baseline_seconds, 4)
    benchmark.extra_info["bgpstream_seconds"] = round(benchmark.stats.stats.mean, 4)
    benchmark.extra_info["baseline_sorted"] = baseline_times == sorted(baseline_times)
