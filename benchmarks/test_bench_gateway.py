"""Gateway fan-out at scale: 1k+ subscribers off one decode loop (ISSUE 7).

The claim under test is the gateway's whole reason to exist: with N
subscribers the per-frame cost is one wire decode plus N ``match_elem``
probes — never N decodes.  The benchmark drives :meth:`StreamHub.run`
synchronously (no sockets: the transport layer is exercised by the e2e
tests; here we measure the fan-out core) with 1024 filtered subscribers
plus one deliberately slow, never-draining subscriber, and asserts:

1. **decode-once** — the Kafka source decoded exactly one frame per
   published message and the profiling tier scanned each frame once,
   regardless of subscriber count;
2. **exact delivery** — every subscriber received precisely its /16 slice,
   in timestamp order;
3. **no stall** — the never-draining subscriber ends the run with a
   bounded queue and gap markers while the decode loop ran to completion.
"""

from __future__ import annotations

from repro.bgp.aspath import ASPath
from repro.bgp.attributes import PathAttributes
from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.bmp import BMPFeedProducer, BMPMessage, BMPPeerHeader
from repro.core import profiling
from repro.core.filters import FilterSet
from repro.core.interfaces import LiveDataInterface
from repro.core.stream import BGPStream
from repro.gateway.hub import StreamHub
from repro.kafka.broker import MessageBroker

SUBSCRIBERS = 1024
NETS = 64  # /16 nets; SUBSCRIBERS / NETS subscribers watch each
SECONDS = 64
PER_SECOND = 16  # updates per feed second → SECONDS * PER_SECOND frames
BASE_TS = 1_450_000_000

FRAMES = SECONDS * PER_SECOND
PER_NET = FRAMES // NETS
FANOUT = SUBSCRIBERS // NETS  # deliveries per elem

#: Conservative lower bound on delivered elems/s — an order of magnitude
#: below a warm local run, so only a real fan-out regression trips it.
DELIVERED_PER_SEC_FLOOR = 2_000


def build_hub():
    broker = MessageBroker()
    producer = BMPFeedProducer(broker, router="rtr1.bench")
    frame = 0
    for second in range(SECONDS):
        for _ in range(PER_SECOND):
            net = frame % NETS
            peer = BMPPeerHeader(
                address="10.0.0.1", asn=64500, timestamp_sec=BASE_TS + second
            )
            update = BGPUpdate(
                announced=[Prefix.from_string(f"10.{net}.{frame // NETS}.0/24")],
                attributes=PathAttributes(
                    as_path=ASPath.from_asns([64500, 3356, 15169]),
                    next_hop="10.0.0.1",
                ),
            )
            producer.publish(BMPMessage.route_monitoring(peer, update))
            frame += 1
    stream = BGPStream(
        live=LiveDataInterface(broker=broker, max_empty_polls=1, poll_interval=0.0)
    )
    hub = StreamHub(stream)
    fast = [
        hub.subscribe(
            FilterSet().add("prefix", f"10.{i % NETS}.0.0/16"),
            max_queued_windows=SECONDS + 1,
            name=f"sub-{i}",
        )
        for i in range(SUBSCRIBERS)
    ]
    # One stalled consumer that never pops: it must not slow the bridge.
    slow = hub.subscribe(
        FilterSet(), max_queued_windows=2, coalesce_budget=PER_SECOND, name="stalled"
    )
    return hub, fast, slow


def test_gateway_fanout_1k_subscribers(benchmark):
    state = {}

    def setup():
        profiling.enable()
        state["hub"], state["fast"], state["slow"] = build_hub()
        return (), {}

    def run_fanout():
        state["hub"].run()

    benchmark.pedantic(run_fanout, setup=setup, rounds=1)
    hub, fast, slow = state["hub"], state["fast"], state["slow"]
    decode = profiling.snapshot()
    profiling.disable()

    # 1. Decode-once, asserted from both ends: the Kafka source's frame
    # counter and the profiling tier's scan counter (what the CLI reports
    # under --decode-stats) each saw every frame exactly once — not
    # SUBSCRIBERS times.
    source = hub.stream._interface.source
    assert source.frames_decoded == FRAMES
    assert decode.bmp_frames_scanned == FRAMES
    assert hub.elems_seen == FRAMES
    assert hub.elems_delivered == FRAMES * FANOUT + slow.elems_matched

    # 2. Exact delivery: each subscriber got precisely its /16 slice, in
    # timestamp order, gapless.
    for i, subscriber in enumerate(fast):
        elems = [e for w in subscriber.drain() for e in w.elems]
        assert len(elems) == PER_NET
        assert all(str(e.prefix).startswith(f"10.{i % NETS}.") for e in elems)
        times = [e.time for e in elems]
        assert times == sorted(times)

    # 3. The stalled subscriber never blocked the bridge: the run finished,
    # its queue stayed bounded and its loss is marked, not silent.
    assert hub.finished
    snap = slow.snapshot()
    assert snap["elems_matched"] == FRAMES
    assert snap["ready"] <= 2
    remnants = slow.drain()
    assert sum(len(w.elems) for w in remnants) + snap["elems_dropped"] == FRAMES
    assert any(w.coalesced or w.has_gap for w in remnants)

    seconds = benchmark.stats.stats.min
    delivered_per_sec = hub.elems_delivered / seconds
    benchmark.extra_info["subscribers"] = SUBSCRIBERS + 1
    benchmark.extra_info["frames"] = FRAMES
    benchmark.extra_info["elems_delivered"] = hub.elems_delivered
    benchmark.extra_info["match_probes"] = FRAMES * (SUBSCRIBERS + 1)
    benchmark.extra_info["delivered_per_sec"] = round(delivered_per_sec)
    benchmark.extra_info["match_probes_per_sec"] = round(
        FRAMES * (SUBSCRIBERS + 1) / seconds
    )
    assert delivered_per_sec > DELIVERED_PER_SEC_FLOOR
