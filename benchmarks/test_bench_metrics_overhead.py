"""Telemetry overhead gates (ISSUE 10).

Two claims about the metrics tier:

1. **disabled** — every instrumented call site guards on one module-global
   boolean, so an instrumented replay with metrics disabled is the plain
   replay (the benchmark-regression gate compares this entry's median to
   the committed baseline, catching any creep);
2. **enabled** — the per-thread sharded hot paths (dict probe + integer
   add; two ``perf_counter`` calls per record for the decode span) must
   cost <5% on the lazy-decode touch-everything replay, measured
   min-of-rounds against the disabled replay in the same process.

The workload is the transit-grade update population from
``test_bench_lazy_decode`` (long prepended paths, large community sets):
attribute decode dominates, which is exactly the regime the <5% promise is
made for — per-record instrumentation amortised over real decode work.
"""

from __future__ import annotations

import gc
import statistics
import time

import pytest

from repro.bgp.aspath import ASPath
from repro.bgp.attributes import PathAttributes
from repro.bgp.community import CommunitySet
from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.core import metrics
from repro.core.interfaces import SingleFileDataInterface
from repro.core.intern import reset_default_pool
from repro.core.stream import BGPStream
from repro.mrt.parser import clear_index_cache
from repro.mrt.records import BGP4MPMessage
from repro.mrt.writer import write_updates_dump

UPDATE_MESSAGES = 2500
PATH_LENGTH = 40
COMMUNITIES_PER_SET = 100
DISTINCT_PATHS = 120
DISTINCT_COMMUNITY_SETS = 60

#: Enabled-metrics ceiling on the lazy replay (the ISSUE 10 promise).
ENABLED_CEILING = 1.05
ROUNDS = 7


def _update_bodies():
    paths = [
        ASPath.from_asns([65001 + (i * 7 + j) % 3000 for j in range(PATH_LENGTH)])
        for i in range(DISTINCT_PATHS)
    ]
    community_sets = [
        CommunitySet.from_pairs(
            [(65000 + (i + j) % 200, j) for j in range(COMMUNITIES_PER_SET)]
        )
        for i in range(DISTINCT_COMMUNITY_SETS)
    ]
    for i in range(UPDATE_MESSAGES):
        prefix = Prefix.from_string(f"10.{(i >> 8) % 250}.{i % 250}.0/24")
        attributes = PathAttributes(
            origin=0,
            as_path=paths[i % len(paths)],
            next_hop=f"192.0.2.{i % 200 + 1}",
            communities=community_sets[i % len(community_sets)],
            med=5,
            local_pref=100,
        )
        update = BGPUpdate(announced=[prefix], withdrawn=[], attributes=attributes)
        yield (
            1000 + i // 10,
            BGP4MPMessage(
                65001 + i % 4, 64600, f"192.0.2.{i % 4 + 10}", "192.0.2.1", update
            ),
        )


@pytest.fixture(scope="module")
def heavy_updates_dump(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("metrics-bench") / "updates.mrt")
    write_updates_dump(path, _update_bodies(), compress=False)
    return path


def _replay(dump_path):
    """One lazy touch-everything pass; returns the elem count."""
    clear_index_cache()
    reset_default_pool()
    stream = BGPStream(
        data_interface=SingleFileDataInterface(dump_path, dump_type="updates"),
        eager=False,
    )
    matched = 0
    for _record, elem in stream.elems():
        matched += 1
        elem.field_dict()
    return matched


def _min_seconds(fn, rounds=ROUNDS):
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_metrics_disabled_replay(benchmark, heavy_updates_dump):
    """The baseline entry: instrumented code with the registry disabled.

    The call sites are compiled in; only the ``if _metrics.enabled:`` guard
    runs.  The CI benchmark-regression gate compares this median to the
    committed baseline, so any disabled-path creep fails the gate.
    """
    metrics.disable()
    matched = benchmark.pedantic(
        lambda: _replay(heavy_updates_dump), rounds=ROUNDS, iterations=1, warmup_rounds=1
    )
    assert matched == UPDATE_MESSAGES
    benchmark.extra_info["records_per_sec"] = round(
        UPDATE_MESSAGES / benchmark.stats.stats.min
    )


def test_metrics_enabled_overhead(benchmark, heavy_updates_dump):
    """Enabled metrics cost <5% on the lazy replay (min-of-rounds).

    Enabled and disabled rounds are interleaved (with a GC sweep before
    each timing) so clock drift, heap state and scheduler noise hit both
    sides alike.  The gate takes the more robust of two estimators — the
    per-side minima ratio and the median of per-round paired ratios — so
    one disturbed round (a GC pause, a scheduler preemption) cannot fail
    a benchmark whose true overhead is ~1%.
    """
    enabled_times, disabled_times = [], []
    _replay(heavy_updates_dump)  # warm-up (page cache, pyc, interning)
    for _ in range(ROUNDS):
        gc.collect()
        metrics.enable()
        try:
            start = time.perf_counter()
            matched = _replay(heavy_updates_dump)
            enabled_times.append(time.perf_counter() - start)
        finally:
            metrics.disable()
        assert matched == UPDATE_MESSAGES
        gc.collect()
        start = time.perf_counter()
        matched = _replay(heavy_updates_dump)
        disabled_times.append(time.perf_counter() - start)
        assert matched == UPDATE_MESSAGES
    enabled_seconds = min(enabled_times)
    disabled_seconds = min(disabled_times)
    paired_median = statistics.median(
        e / d for e, d in zip(enabled_times, disabled_times)
    )

    # Record the enabled replay as this file's second baseline entry.
    metrics.enable()
    try:
        benchmark.pedantic(
            lambda: _replay(heavy_updates_dump), rounds=2, iterations=1
        )
    finally:
        metrics.disable()

    ratio = min(enabled_seconds / disabled_seconds, paired_median)
    benchmark.extra_info["disabled_records_per_sec"] = round(
        UPDATE_MESSAGES / disabled_seconds
    )
    benchmark.extra_info["enabled_records_per_sec"] = round(
        UPDATE_MESSAGES / enabled_seconds
    )
    benchmark.extra_info["enabled_vs_disabled_ratio"] = round(ratio, 3)
    assert ratio <= ENABLED_CEILING, (
        f"enabled metrics cost {ratio:.3f}x the disabled replay "
        f"(ceiling {ENABLED_CEILING}x)"
    )
