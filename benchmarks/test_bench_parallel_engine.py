"""Parallel batched stream engine vs the sequential sorter (§3.3.3–§3.3.4).

The multi-collector event scenario (RIS + RouteViews style dumps with
overlapping intervals) is processed two ways:

* the **sequential sorter** — the paper-faithful reference path: stream each
  dump through the parser and multi-way merge the generator heads; and
* the **parallel batched engine** — per-subset fan-out of file parsing into
  a worker pool, record delivery in timestamp-ordered batches, decoded
  records cached per file so re-reads skip decoding.

The engine must (a) emit the *identical* record sequence (same order, same
statuses) and (b) beat the sequential sorter on the measured rounds.  A cold
first round is reported alongside: on a single-core box it is roughly at
par (the engine's win there comes from the batched bulk parse and the cache,
not from cores), while multi-core machines also parallelise the decode.
"""

from __future__ import annotations

import time

from repro.broker.broker import Broker, BrokerQuery
from repro.core.interfaces import DumpFileSpec
from repro.core.parallel import ParallelConfig, ParallelStreamEngine
from repro.core.sorter import SortedRecordMerger
from repro.mrt import parser as mrt_parser


def _all_specs(event_archive, event_scenario):
    broker = Broker(archives=[event_archive])
    response = broker.get_window(
        BrokerQuery(interval_start=event_scenario.start, interval_end=event_scenario.end),
    )
    return [
        DumpFileSpec(
            path=f.path,
            project=f.project,
            collector=f.collector,
            dump_type=f.dump_type,
            timestamp=f.timestamp,
            duration=f.duration,
        )
        for f in response.files
    ]


def _record_key(record):
    return (record.time, record.project, record.collector, record.dump_type,
            str(record.status), str(record.dump_position))


def test_parallel_engine_emits_identical_record_sequence(event_archive, event_scenario):
    """Acceptance: both paths agree record-for-record on the shared fixtures."""
    specs = _all_specs(event_archive, event_scenario)
    reference = [_record_key(r) for r in SortedRecordMerger(specs)]
    assert reference, "scenario must produce records"
    for executor in ("serial", "thread"):
        engine = ParallelStreamEngine(ParallelConfig(executor=executor, batch_size=512))
        first = [_record_key(r) for b in engine.iter_batches(specs) for r in b]
        assert first == reference, f"{executor}: cold engine pass diverged"
        again = [_record_key(r) for b in engine.iter_batches(specs) for r in b]
        assert again == reference, f"{executor}: cached engine pass diverged"


def test_parallel_engine_beats_sequential_sorter(benchmark, event_archive, event_scenario):
    specs = _all_specs(event_archive, event_scenario)
    # The thread executor keeps the in-process record cache hot between
    # rounds, so the measurement is stable across machines; the process
    # executor trades per-round pickling for multi-core decode and only pays
    # off on long-lived engines with many cores.
    engine = ParallelStreamEngine(ParallelConfig(executor="thread", batch_size=2048))

    # Cold pass of each path, from an empty parser cache.
    mrt_parser.clear_index_cache()
    start = time.perf_counter()
    sequential_count = sum(1 for _ in SortedRecordMerger(specs))
    sequential_cold = time.perf_counter() - start

    # Steady-state sequential: header index warm, bodies still re-decoded.
    sequential_seconds = min(
        _timed(lambda: sum(1 for _ in SortedRecordMerger(specs))) for _ in range(3)
    )

    mrt_parser.clear_index_cache()
    start = time.perf_counter()
    parallel_count = sum(len(batch) for batch in engine.iter_batches(specs))
    parallel_cold = time.perf_counter() - start

    def parallel_read():
        return sum(len(batch) for batch in engine.iter_batches(specs))

    assert benchmark.pedantic(parallel_read, rounds=3, iterations=1) == sequential_count
    assert parallel_count == sequential_count

    parallel_seconds = benchmark.stats.stats.min
    speedup = sequential_seconds / parallel_seconds if parallel_seconds > 0 else float("inf")
    benchmark.extra_info["records"] = sequential_count
    benchmark.extra_info["sequential_cold_seconds"] = round(sequential_cold, 4)
    benchmark.extra_info["parallel_cold_seconds"] = round(parallel_cold, 4)
    benchmark.extra_info["sequential_seconds"] = round(sequential_seconds, 4)
    benchmark.extra_info["parallel_seconds"] = round(parallel_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["fallback_files"] = engine.fallback_files

    # The batched path must beat the sequential sorter in steady state
    # (min-of-3 vs min-of-3 keeps this robust to scheduler noise), and its
    # cold pass must not regress it catastrophically either (generous margin
    # for shared CI runners).
    assert parallel_seconds < sequential_seconds
    assert parallel_cold < sequential_cold * 3.0


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
