"""E13 — §2: publication latency of Updates dumps.

The paper measured that, on top of the file-rotation delay, the public
archives add a small variable publication delay, with 99 % of Updates dumps
available within 20 minutes of the dump start.  The archive's publication
delay model is calibrated to that; this benchmark samples the archive the
collectors actually produced and checks the CDF.
"""

from __future__ import annotations

from repro.collectors.archive import PublicationDelayModel


def test_updates_publication_latency_cdf(benchmark, event_archive, event_scenario):
    def collect():
        latencies = []
        for entry in event_archive.entries():
            if entry.dump_type != "updates":
                continue
            latencies.append(entry.available_at - entry.timestamp)
        return sorted(latencies)

    latencies = benchmark(collect)

    assert len(latencies) >= 50
    within_20min = sum(1 for latency in latencies if latency <= 20 * 60) / len(latencies)
    assert within_20min >= 0.97  # the paper's 99% at real scale
    assert all(latency > 0 for latency in latencies)
    # The delay is file-rotation dominated: the median sits near the dump
    # duration plus a small publication delay.
    median = latencies[len(latencies) // 2]
    assert median < 17 * 60

    # Also exercise the model directly at the paper's reference duration.
    model = PublicationDelayModel(seed=3)
    samples = sorted(15 * 60 + model.sample(duration=15 * 60) for _ in range(5000))
    p99 = samples[int(0.99 * len(samples)) - 1]
    assert p99 <= 21 * 60

    benchmark.extra_info["dumps"] = len(latencies)
    benchmark.extra_info["fraction_within_20min"] = round(within_20min, 4)
    benchmark.extra_info["median_latency_seconds"] = round(median, 1)
    benchmark.extra_info["model_p99_seconds"] = round(p99, 1)
