"""E14 — §6.2.1: accuracy of the RT plugin's routing-table reconstruction.

The paper evaluates the approach by periodically comparing the information
in the current and shadow cells, reporting error probabilities (mismatching
prefixes over all VPs' prefixes) of 1e-8 for RIS and 1e-5 for RouteViews.
Here the reconstruction is additionally compared against the simulator's
ground-truth Adj-RIB-out, which the original authors could not do.
"""

from __future__ import annotations

from repro.corsaro.pipeline import BGPCorsaro
from repro.corsaro.plugins.routing_tables import RoutingTablesPlugin

from benchmarks.conftest import make_stream


def test_rt_reconstruction_accuracy(benchmark, event_archive, event_scenario):
    def run():
        stream = make_stream(event_archive, event_scenario.start, event_scenario.end)
        plugin = RoutingTablesPlugin(snapshot_interval=3600, track_accuracy=True)
        BGPCorsaro(stream, [plugin], bin_size=300).run()
        return plugin

    plugin = benchmark.pedantic(run, rounds=1, iterations=1)

    # Shadow-vs-main comparison (the paper's metric): near-zero error.
    assert plugin.compared_prefixes > 0
    assert plugin.error_probability <= 0.01

    # Ground-truth comparison: reconstructed tables equal the simulated
    # Adj-RIB-out at the end of the scenario for every consistent VP.
    scenario = event_scenario
    mismatches = 0
    compared = 0
    checked_vps = 0
    for collector in scenario.collectors:
        for vp in collector.vps:
            key = (collector.name, vp.asn, vp.address)
            if not plugin.vp_state(key).table_consistent:
                continue
            reconstructed = plugin.vp_table(key)
            expected = scenario.table_at(collector, vp, scenario.end)
            compared += len(expected)
            mismatches += len(set(expected) ^ set(reconstructed))
            for prefix in set(expected) & set(reconstructed):
                if reconstructed[prefix].as_path != expected[prefix].as_path:
                    mismatches += 1
            checked_vps += 1
    assert checked_vps > 0
    assert compared > 0
    ground_truth_error = mismatches / compared
    assert ground_truth_error <= 0.001

    benchmark.extra_info["shadow_error_probability"] = plugin.error_probability
    benchmark.extra_info["ground_truth_error"] = ground_truth_error
    benchmark.extra_info["vps_checked"] = checked_vps
    benchmark.extra_info["prefixes_compared"] = compared
