"""E11 — Figure 9: RT diff cells vs BGP elems, as a function of bin size.

Runs the routing-tables plugin over one collector's stream for several bin
sizes and compares, per bin, the number of BGP elems extracted from update
messages with the number of diff cells between consecutive routing tables.
Figure 9's shape: diffs are several times fewer than elems even at 1-minute
bins (redundancy in update messages), the reduction factor grows with the
bin size, and the per-bin *maxima* shrink relative to elems, making
consumers resilient to update bursts.
"""

from __future__ import annotations

from repro.corsaro.pipeline import BGPCorsaro
from repro.corsaro.plugins.routing_tables import RoutingTablesPlugin

from benchmarks.conftest import make_stream

BIN_SIZES = [60, 300, 900, 1800]


def _run_rt(event_archive, event_scenario, bin_size, collector):
    stream = make_stream(
        event_archive, event_scenario.start, event_scenario.end, collector=[collector]
    )
    plugin = RoutingTablesPlugin(snapshot_interval=None)
    corsaro = BGPCorsaro(stream, [plugin], bin_size=bin_size)
    corsaro.run()
    outputs = [
        o.value
        for o in corsaro.outputs_for("routing-tables")
        if o.interval_start >= event_scenario.start + 1800  # skip table bootstrap
    ]
    elems = [o.elems_processed for o in outputs]
    diffs = [o.diff_count for o in outputs]
    return elems, diffs


def test_fig9_diffs_vs_elems(benchmark, event_archive, event_scenario):
    collector = "route-views0"

    def run_all():
        rows = {}
        for bin_size in BIN_SIZES:
            elems, diffs = _run_rt(event_archive, event_scenario, bin_size, collector)
            rows[bin_size] = {
                "avg_elems": sum(elems) / max(1, len(elems)),
                "avg_diffs": sum(diffs) / max(1, len(diffs)),
                "max_elems": max(elems, default=0),
                "max_diffs": max(diffs, default=0),
                "total_elems": sum(elems),
                "total_diffs": sum(diffs),
            }
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    reduction = {}
    for bin_size, row in rows.items():
        assert row["total_elems"] > 0
        # Diffs never exceed elems once the tables are bootstrapped.
        assert row["total_diffs"] < row["total_elems"]
        reduction[bin_size] = row["total_elems"] / max(1, row["total_diffs"])
        # Bursts (maxima) are also absorbed.
        assert row["max_diffs"] <= row["max_elems"]
    # The reduction factor grows (or at least does not shrink) with bin size.
    ordered = [reduction[b] for b in BIN_SIZES]
    assert ordered[-1] >= ordered[0]
    assert ordered[0] > 1.2  # redundancy visible even at the smallest bin

    benchmark.extra_info["rows"] = {
        str(b): {k: round(v, 2) for k, v in row.items()} for b, row in rows.items()
    }
    benchmark.extra_info["reduction_factors"] = {
        str(b): round(r, 2) for b, r in reduction.items()
    }
