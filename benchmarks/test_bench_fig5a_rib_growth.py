"""E6 — Figure 5a: growth of the IPv4 routing table in VPs over time.

Monthly RIB dumps across the longitudinal archive, one partition per
(month, collector), reduced into per-VP unique-prefix counts.  Shape checks:
the upper envelope grows over time, partial-feed VPs sit well below it, and
the paper's full-feed definition (within 20 percentage points of the
maximum) separates the two populations.
"""

from __future__ import annotations

from repro.analysis.rib_growth import analyse_rib_growth


def test_fig5a_routing_table_growth(benchmark, longitudinal_archive, month_timestamps):
    def run():
        return analyse_rib_growth(longitudinal_archive, month_timestamps, workers=4)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    sizes = [result.max_table_size(month) for month in month_timestamps]
    assert sizes[0] > 0
    assert sizes[-1] > 1.5 * sizes[0]  # clear growth over the timeline
    assert all(b >= a * 0.95 for a, b in zip(sizes, sizes[1:]))  # near-monotone

    last = month_timestamps[-1]
    full = result.full_feed_vps(last)
    partial = result.partial_feed_vps(last)
    assert full
    if partial:
        table = result.per_vp[last]
        assert max(table[vp] for vp in partial) < 0.8 * result.max_table_size(last)

    benchmark.extra_info["series"] = [
        {"month_index": i, "max_table": size, "overall": result.overall[m]}
        for i, (m, size) in enumerate(zip(month_timestamps, sizes))
    ]
    benchmark.extra_info["full_feed_vps_final"] = len(full)
    benchmark.extra_info["partial_feed_vps_final"] = len(partial)
