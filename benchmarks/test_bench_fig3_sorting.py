"""E2 — Figure 3: intra- and inter-collector sorting.

Reproduces the Figure 3 scenario: thirty minutes of data from a RIPE RIS
collector (5-minute Updates dumps + a RIB dump) and a RouteViews collector
(15-minute Updates dumps), split into disjoint overlap subsets and merged
into a single time-sorted stream.
"""

from __future__ import annotations

from repro.broker.broker import Broker, BrokerQuery
from repro.core.interfaces import DumpFileSpec
from repro.core.record import RecordStatus
from repro.core.sorter import SortedRecordMerger


def _window_specs(event_archive, event_scenario, duration=1800):
    start = event_scenario.start
    broker = Broker(archives=[event_archive])
    response = broker.get_window(
        BrokerQuery(interval_start=start, interval_end=start + duration)
    )
    return [
        DumpFileSpec(
            path=f.path,
            project=f.project,
            collector=f.collector,
            dump_type=f.dump_type,
            timestamp=f.timestamp,
            duration=f.duration,
        )
        for f in response.files
        if f.timestamp < start + duration
    ]


def test_fig3_interleaved_sorted_stream(benchmark, event_archive, event_scenario):
    specs = _window_specs(event_archive, event_scenario)
    assert {s.project for s in specs} == {"ris", "routeviews"}
    assert {s.dump_type for s in specs} == {"ribs", "updates"}

    def merge():
        merger = SortedRecordMerger(specs)
        return [record.time for record in merger if record.status == RecordStatus.VALID]

    times = benchmark(merge)

    # The output stream is globally sorted even though it interleaves RIB and
    # Updates dumps from two projects with different periodicities.
    assert times == sorted(times)
    assert len(times) > 100

    merger = SortedRecordMerger(specs)
    sizes = merger.subset_sizes()
    # RIS 5-minute files + RV 15-minute files + the RIB dumps at the window
    # start all overlap, so the bulk of the files lands in one subset.
    assert max(sizes) >= 4
    assert sum(sizes) == len(specs)
    benchmark.extra_info["files"] = len(specs)
    benchmark.extra_info["subset_sizes"] = sizes
    benchmark.extra_info["records"] = len(times)
