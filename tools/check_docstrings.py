"""Docstring-coverage gate, mirroring ruff's D100/D101/D104 selection.

CI enforces the gate with ruff (``pyproject.toml`` selects D100, D101 and
D104 for ``src/``); this script applies the same three rules with only the
stdlib so the gate can run anywhere ruff is not installed:

* D100 — missing docstring in public module
* D101 — missing docstring in public class
* D104 — missing docstring in public package (``__init__.py``)

Usage::

    python tools/check_docstrings.py [ROOT ...]

Defaults to ``src`` next to the repository root.  Exits non-zero listing
every violation.
"""

from __future__ import annotations

import ast
import os
import sys
from typing import Iterator, List, Tuple


def iter_python_files(root: str) -> Iterator[str]:
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if not d.startswith((".", "__pycache__")))
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def check_file(path: str) -> List[Tuple[str, int, str]]:
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    tree = ast.parse(source, filename=path)
    violations: List[Tuple[str, int, str]] = []
    is_package = os.path.basename(path) == "__init__.py"
    if ast.get_docstring(tree) is None:
        code = "D104" if is_package else "D100"
        kind = "package" if is_package else "module"
        violations.append((code, 1, f"missing docstring in public {kind}"))
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if node.name.startswith("_"):
            continue
        if ast.get_docstring(node) is None:
            violations.append(
                ("D101", node.lineno, f"missing docstring in public class `{node.name}`")
            )
    return violations


def main(argv: List[str]) -> int:
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    roots = argv or [os.path.join(repo_root, "src")]
    failed = 0
    for root in roots:
        for path in iter_python_files(root):
            for code, lineno, message in check_file(path):
                rel = os.path.relpath(path, repo_root)
                print(f"{rel}:{lineno}: {code} {message}")
                failed += 1
    if failed:
        print(f"\n{failed} docstring violation(s)", file=sys.stderr)
        return 1
    print("docstring coverage OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
