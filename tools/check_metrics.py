"""CI gate for the telemetry registry (stdlib-only, no pytest needed).

Imports every instrumented tier so all metric families register, then
walks the default registry and fails on:

* duplicate metric names (also enforced at registration time — this is
  the belt-and-braces re-check across the fully imported tree);
* names or label names outside the Prometheus grammar
  (``[a-zA-Z_:][a-zA-Z0-9_:]*`` / ``[a-zA-Z_][a-zA-Z0-9_]*``);
* counters whose name lacks the conventional ``_total`` suffix;
* histograms whose bucket bounds are not strictly increasing;
* a registry that renders an invalid text exposition (smoke-parse of
  HELP/TYPE/sample lines).

Run from the repo root::

    PYTHONPATH=src python tools/check_metrics.py
"""

from __future__ import annotations

import re
import sys

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_LINE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (?:[0-9.eE+-]+|\+Inf|-Inf|NaN)$"
)

#: Importing these pulls in every instrumented tier, so the registry holds
#: the full metric catalog by the time we walk it.
INSTRUMENTED_MODULES = (
    "repro.core.metrics",
    "repro.core.resilience",
    "repro.core.interfaces",
    "repro.core.sorter",
    "repro.core.stream",
    "repro.broker.client",
    "repro.broker.segments",
    "repro.bmp.source",
    "repro.gateway.hub",
    "repro.gateway.server",
)


def check_registry() -> list:
    """Every violation found while walking the default registry."""
    import importlib

    for module in INSTRUMENTED_MODULES:
        importlib.import_module(module)
    from repro import _metrics

    problems = []
    families = _metrics.default_registry().metrics()
    if not families:
        problems.append("registry is empty — instrumented tiers did not register")
    seen = set()
    for metric in families:
        name = metric.name
        if name in seen:
            problems.append(f"duplicate metric name {name!r}")
        seen.add(name)
        if not METRIC_NAME_RE.match(name):
            problems.append(f"invalid Prometheus metric name {name!r}")
        if metric.kind == "counter" and not name.endswith("_total"):
            problems.append(f"counter {name!r} lacks the _total suffix")
        if not metric.help:
            problems.append(f"metric {name!r} has no help text")
        for label in metric.labelnames:
            if not LABEL_NAME_RE.match(label) or label.startswith("__"):
                problems.append(f"metric {name!r} has invalid label name {label!r}")
        if metric.kind == "histogram":
            uppers = list(metric.buckets)
            if sorted(uppers) != uppers or len(set(uppers)) != len(uppers):
                problems.append(f"histogram {name!r} buckets are not strictly increasing")
    problems.extend(check_exposition(_metrics.exposition()))
    return problems


def check_exposition(text: str) -> list:
    """Smoke-parse a text exposition; returns line-level violations."""
    problems = []
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            problems.append(f"exposition line {lineno}: blank line")
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        if line.startswith("#"):
            problems.append(f"exposition line {lineno}: unknown comment {line!r}")
            continue
        if not SAMPLE_LINE_RE.match(line):
            problems.append(f"exposition line {lineno}: malformed sample {line!r}")
    if text and not text.endswith("\n"):
        problems.append("exposition does not end with a newline")
    return problems


def main() -> int:
    problems = check_registry()
    if problems:
        for problem in problems:
            print(f"check_metrics: {problem}", file=sys.stderr)
        print(f"check_metrics: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    from repro import _metrics

    count = len(_metrics.default_registry().metrics())
    print(f"check_metrics: {count} metric families ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
