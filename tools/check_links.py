"""Markdown link checker for the repository docs.

Validates every markdown link and image reference in the given files
(default: ``README.md`` and ``docs/*.md``):

* **Relative links** must point at an existing file or directory
  (resolved against the linking file's location).
* **Anchor links** (``file.md#section`` or bare ``#section``) must match a
  heading in the target document, using GitHub's slug rules (lowercase,
  punctuation stripped, spaces to dashes).
* **External links** (``http(s)://``) are syntax-checked only — CI must
  not depend on third-party uptime.

Usage::

    python tools/check_links.py [FILE ...]

Exits non-zero listing every broken link.
"""

from __future__ import annotations

import glob
import os
import re
import sys
from typing import List, Set, Tuple

#: Inline links/images: [text](target) / ![alt](target).  Reference-style
#: definitions: [label]: target.
_INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_REFERENCE_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
_HEADING = re.compile(r"^#{1,6}\s+(.+?)\s*#*\s*$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def _slugify(heading: str) -> str:
    """GitHub's anchor slug: strip markup, lowercase, drop punctuation,
    spaces become dashes."""
    text = re.sub(r"[`*_]|\[|\]|\(.*?\)", "", heading)
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: str) -> Set[str]:
    with open(path, encoding="utf-8") as handle:
        source = _CODE_FENCE.sub("", handle.read())
    return {_slugify(m.group(1)) for m in _HEADING.finditer(source)}


def _targets(path: str) -> List[str]:
    with open(path, encoding="utf-8") as handle:
        source = _CODE_FENCE.sub("", handle.read())
    found = [m.group(1) for m in _INLINE_LINK.finditer(source)]
    found += [m.group(1) for m in _REFERENCE_DEF.finditer(source)]
    return found


def check_file(path: str, repo_root: str) -> List[Tuple[str, str]]:
    """All broken links of one markdown file as (target, reason) pairs."""
    broken: List[Tuple[str, str]] = []
    base = os.path.dirname(os.path.abspath(path))
    for target in _targets(path):
        if target.startswith(("http://", "https://")):
            if " " in target or target in ("http://", "https://"):
                broken.append((target, "malformed external URL"))
            continue
        if target.startswith("mailto:"):
            continue
        file_part, _, anchor = target.partition("#")
        resolved = os.path.abspath(path) if not file_part else os.path.normpath(
            os.path.join(base, file_part)
        )
        if not os.path.exists(resolved):
            broken.append((target, f"missing file {os.path.relpath(resolved, repo_root)}"))
            continue
        if anchor:
            if not resolved.endswith(".md"):
                continue
            if anchor not in _anchors(resolved):
                broken.append((target, f"no heading for #{anchor}"))
    return broken


def main(argv: List[str]) -> int:
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    files = argv or [
        os.path.join(repo_root, "README.md"),
        *sorted(glob.glob(os.path.join(repo_root, "docs", "*.md"))),
    ]
    failed = 0
    for path in files:
        if not os.path.exists(path):
            print(f"{path}: file not found", file=sys.stderr)
            failed += 1
            continue
        for target, reason in check_file(path, repo_root):
            print(f"{os.path.relpath(path, repo_root)}: broken link {target!r} ({reason})")
            failed += 1
    if failed:
        print(f"\n{failed} broken link(s)", file=sys.stderr)
        return 1
    print(f"links OK across {len(files)} file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
