"""The log-structured message broker.

Topics are append-only logs split into partitions; each message gets a
monotonically increasing offset within its partition.  Messages are kept in
memory (the original architecture relies on a Kafka cluster for durability
and horizontal scale; neither matters for a single-process reproduction, and
the client-visible semantics — keyed partitioning, offset reads, replay —
are identical).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Message:
    """One message of a partition log."""

    topic: str
    partition: int
    offset: int
    key: Optional[str]
    value: Any
    timestamp: float = 0.0


def round_robin_take(queues: List[List[Message]], budget: int) -> List[Message]:
    """Merge queues one message per queue per round, up to ``budget``.

    Each queue contributes a contiguous prefix, so committing the result
    advances every partition's offset without gaps.
    """
    result: List[Message] = []
    cursor = 0
    while len(result) < budget:
        progressed = False
        for queue in queues:
            if cursor < len(queue):
                result.append(queue[cursor])
                progressed = True
                if len(result) >= budget:
                    break
        if not progressed:
            break
        cursor += 1
    return result


class Topic:
    """A named topic: a fixed number of append-only partition logs."""

    def __init__(self, name: str, num_partitions: int = 1) -> None:
        if num_partitions < 1:
            raise ValueError("a topic needs at least one partition")
        self.name = name
        self.num_partitions = num_partitions
        self._partitions: List[List[Message]] = [[] for _ in range(num_partitions)]
        self._lock = threading.Lock()

    def partition_for(self, key: Optional[str]) -> int:
        if key is None:
            # Round-robin-ish: append to the shortest partition.
            sizes = [len(p) for p in self._partitions]
            return sizes.index(min(sizes))
        return hash(key) % self.num_partitions

    def append(self, key: Optional[str], value: Any, timestamp: float = 0.0) -> Message:
        with self._lock:
            partition = self.partition_for(key)
            log = self._partitions[partition]
            message = Message(
                topic=self.name,
                partition=partition,
                offset=len(log),
                key=key,
                value=value,
                timestamp=timestamp,
            )
            log.append(message)
            return message

    def read(
        self, partition: int, offset: int, max_messages: Optional[int] = None
    ) -> List[Message]:
        with self._lock:
            log = self._partitions[partition]
            end = len(log) if max_messages is None else min(len(log), offset + max_messages)
            return list(log[offset:end])

    def end_offset(self, partition: int) -> int:
        with self._lock:
            return len(self._partitions[partition])

    def size(self) -> int:
        with self._lock:
            return sum(len(p) for p in self._partitions)


class MessageBroker:
    """A collection of topics plus consumer-group offset bookkeeping."""

    def __init__(self) -> None:
        self._topics: Dict[str, Topic] = {}
        #: (group, topic, partition) -> committed offset.
        self._committed: Dict[Tuple[str, str, int], int] = {}
        self._lock = threading.Lock()

    # -- topic management -------------------------------------------------------

    def create_topic(self, name: str, num_partitions: Optional[int] = None) -> Topic:
        """Create a topic, or return the existing one.

        ``num_partitions=None`` means "whatever exists" (1 when creating);
        an explicit count that contradicts an existing topic raises rather
        than silently dropping the partitioning the caller asked for.
        """
        with self._lock:
            existing = self._topics.get(name)
            if existing is not None:
                if num_partitions is not None and existing.num_partitions != num_partitions:
                    raise ValueError(
                        f"topic {name!r} already exists with "
                        f"{existing.num_partitions} partitions, not {num_partitions}"
                    )
                return existing
            topic = Topic(name, num_partitions or 1)
            self._topics[name] = topic
            return topic

    def topic(self, name: str) -> Topic:
        with self._lock:
            if name not in self._topics:
                self._topics[name] = Topic(name)
            return self._topics[name]

    def topics(self) -> List[str]:
        with self._lock:
            return sorted(self._topics)

    # -- produce / consume ----------------------------------------------------------

    def produce(
        self, topic: str, value: Any, key: Optional[str] = None, timestamp: float = 0.0
    ) -> Message:
        return self.topic(topic).append(key, value, timestamp)

    def consume(
        self,
        topic: str,
        group: str,
        max_messages: Optional[int] = None,
    ) -> List[Message]:
        """Read new messages for a consumer group (across all partitions).

        With a bounded budget the partitions are interleaved round-robin —
        draining them in index order would let a busy partition 0 starve
        the rest (the router-keyed BMP feed spreads routers across
        partitions precisely to avoid that).
        """
        topic_obj = self.topic(topic)
        if max_messages is None:
            return [
                message
                for partition in range(topic_obj.num_partitions)
                for message in topic_obj.read(
                    partition, self.committed_offset(group, topic, partition)
                )
            ]
        fetched = [
            topic_obj.read(
                partition, self.committed_offset(group, topic, partition), max_messages
            )
            for partition in range(topic_obj.num_partitions)
        ]
        return round_robin_take(fetched, max_messages)

    def commit(self, group: str, messages: List[Message]) -> None:
        """Mark ``messages`` as processed for the group."""
        with self._lock:
            for message in messages:
                key = (group, message.topic, message.partition)
                current = self._committed.get(key, 0)
                self._committed[key] = max(current, message.offset + 1)

    def committed_offset(self, group: str, topic: str, partition: int) -> int:
        with self._lock:
            return self._committed.get((group, topic, partition), 0)

    def lag(self, group: str, topic: str) -> int:
        """Messages not yet consumed by ``group`` across all partitions."""
        topic_obj = self.topic(topic)
        total = 0
        for partition in range(topic_obj.num_partitions):
            total += topic_obj.end_offset(partition) - self.committed_offset(
                group, topic, partition
            )
        return total
