"""Producer / Consumer client API over the message broker."""

from __future__ import annotations

from typing import Any, List, Optional

from repro.kafka.broker import Message, MessageBroker, round_robin_take


class Producer:
    """Publishes messages to topics of a broker."""

    def __init__(self, broker: MessageBroker, default_topic: Optional[str] = None) -> None:
        self.broker = broker
        self.default_topic = default_topic
        self.messages_sent = 0

    def send(
        self,
        value: Any,
        topic: Optional[str] = None,
        key: Optional[str] = None,
        timestamp: float = 0.0,
    ) -> Message:
        target = topic or self.default_topic
        if target is None:
            raise ValueError("no topic given and no default topic configured")
        message = self.broker.produce(target, value, key=key, timestamp=timestamp)
        self.messages_sent += 1
        return message


class Consumer:
    """Reads messages from topics on behalf of a consumer group.

    ``poll()`` returns any messages past the group's committed offsets and
    (by default) commits them, so repeated polls walk forward through the
    log; ``seek_to_beginning()`` resets the group to replay a topic, which is
    how a consumer re-synchronises from the latest full routing-table
    snapshot before applying diffs (§6.2.2).
    """

    def __init__(self, broker: MessageBroker, group: str, topics: List[str]) -> None:
        self.broker = broker
        self.group = group
        self.topics = list(topics)
        self.messages_consumed = 0

    def poll(self, max_messages: Optional[int] = None, commit: bool = True) -> List[Message]:
        if max_messages is None:
            result = [
                message
                for topic in self.topics
                for message in self.broker.consume(topic, self.group)
            ]
        else:
            # With a bounded budget, draining topics in list order would let
            # a busy first topic starve the rest; fetch each topic's backlog
            # (capped at the budget) once, then take messages round-robin —
            # one per topic per round — until the budget is spent.  Only the
            # returned messages are committed, so the leftover fetches are
            # re-read by the next poll.
            fetched = [
                list(self.broker.consume(topic, self.group, max_messages))
                for topic in self.topics
            ]
            result = round_robin_take(fetched, max_messages)
        if commit and result:
            self.broker.commit(self.group, result)
        self.messages_consumed += len(result)
        return result

    def commit(self, messages: List[Message]) -> None:
        self.broker.commit(self.group, messages)

    def lag(self) -> int:
        return sum(self.broker.lag(self.group, topic) for topic in self.topics)

    def seek_to_beginning(self) -> None:
        """Reset the group's offsets so the next poll replays every topic."""
        for topic in self.topics:
            topic_obj = self.broker.topic(topic)
            for partition in range(topic_obj.num_partitions):
                key = (self.group, topic, partition)
                with self.broker._lock:
                    self.broker._committed[key] = 0
