"""Sync servers (§6.2.3).

Different collectors publish their per-bin routing-table data with variable
delay; consumers must decide when a time bin is ready to be processed.  The
trade-off between latency, completeness and memory depends on the
application, so the architecture runs one *sync server* per application:
each watches the meta-data published alongside the data (one meta-data entry
per collector per bin) and, when its criterion is met, injects a "bin ready"
marker into its own topic that consumers block on.

Two criteria from the paper are implemented:

* :class:`CompletenessSyncServer` — a bin is ready when a required fraction
  of the expected collectors have published it (IODA-style: completeness
  over latency; the paper uses a 30-minute timeout that yields data from all
  VPs for 99 % of bins).
* :class:`TimeoutSyncServer` — a bin is ready as soon as a deadline after
  the first publication passes, regardless of how many collectors have
  reported (hijack-detection-style: latency over completeness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.kafka.broker import MessageBroker
from repro.kafka.client import Consumer, Producer

#: Topic name conventions.
METADATA_TOPIC = "rt-metadata"


@dataclass(frozen=True)
class BinMetadata:
    """Meta-data published by a BGPCorsaro/RT instance for one bin."""

    collector: str
    interval_start: int
    diff_count: int
    published_at: float


@dataclass(frozen=True)
class BinReady:
    """The marker a sync server publishes when a bin may be consumed."""

    interval_start: int
    collectors: tuple
    complete: bool
    decided_at: float


class SyncServer:
    """Base class: watch the meta-data topic, publish readiness markers."""

    def __init__(
        self,
        broker: MessageBroker,
        application: str,
        expected_collectors: Sequence[str],
    ) -> None:
        self.broker = broker
        self.application = application
        self.expected = list(expected_collectors)
        self.ready_topic = f"sync-{application}"
        self._consumer = Consumer(broker, group=f"sync-{application}", topics=[METADATA_TOPIC])
        self._producer = Producer(broker, default_topic=self.ready_topic)
        #: interval_start -> set of collectors seen (for undecided bins).
        self._pending: Dict[int, Set[str]] = {}
        self._first_seen: Dict[int, float] = {}
        self._decided: Set[int] = set()

    # -- the driver ------------------------------------------------------------

    def step(self, now: float) -> List[BinReady]:
        """Consume new meta-data and emit any newly-ready bins."""
        for message in self._consumer.poll():
            metadata: BinMetadata = message.value
            if metadata.interval_start in self._decided:
                continue
            self._pending.setdefault(metadata.interval_start, set()).add(metadata.collector)
            self._first_seen.setdefault(metadata.interval_start, metadata.published_at)
        ready: List[BinReady] = []
        for interval_start in sorted(self._pending):
            seen = self._pending[interval_start]
            decision = self._decide(interval_start, seen, now)
            if decision is None:
                continue
            self._decided.add(interval_start)
            del self._pending[interval_start]
            self._producer.send(decision, key=str(interval_start), timestamp=now)
            ready.append(decision)
        return ready

    def _decide(self, interval_start: int, seen: Set[str], now: float) -> Optional[BinReady]:
        raise NotImplementedError


class CompletenessSyncServer(SyncServer):
    """Ready when ``required_fraction`` of the expected collectors reported,
    or (optionally) when a hard timeout since first publication expires."""

    def __init__(
        self,
        broker: MessageBroker,
        application: str,
        expected_collectors: Sequence[str],
        required_fraction: float = 1.0,
        timeout: Optional[float] = 30 * 60,
    ) -> None:
        super().__init__(broker, application, expected_collectors)
        self.required_fraction = required_fraction
        self.timeout = timeout

    def _decide(self, interval_start: int, seen: Set[str], now: float) -> Optional[BinReady]:
        expected = set(self.expected)
        fraction = len(seen & expected) / len(expected) if expected else 1.0
        complete = fraction >= self.required_fraction
        timed_out = (
            self.timeout is not None
            and now - self._first_seen.get(interval_start, now) >= self.timeout
        )
        if not complete and not timed_out:
            return None
        return BinReady(
            interval_start=interval_start,
            collectors=tuple(sorted(seen)),
            complete=complete,
            decided_at=now,
        )


class TimeoutSyncServer(SyncServer):
    """Ready ``timeout`` seconds after the first collector published the bin."""

    def __init__(
        self,
        broker: MessageBroker,
        application: str,
        expected_collectors: Sequence[str],
        timeout: float = 120.0,
    ) -> None:
        super().__init__(broker, application, expected_collectors)
        self.timeout = timeout

    def _decide(self, interval_start: int, seen: Set[str], now: float) -> Optional[BinReady]:
        first = self._first_seen.get(interval_start, now)
        expected = set(self.expected)
        if seen >= expected or now - first >= self.timeout:
            return BinReady(
                interval_start=interval_start,
                collectors=tuple(sorted(seen)),
                complete=seen >= expected,
                decided_at=now,
            )
        return None


def publish_bin_metadata(
    producer: Producer,
    collector: str,
    interval_start: int,
    diff_count: int,
    published_at: float,
) -> None:
    """Helper used by the RT publisher to announce a bin on the meta-data topic."""
    producer.send(
        BinMetadata(
            collector=collector,
            interval_start=interval_start,
            diff_count=diff_count,
            published_at=published_at,
        ),
        topic=METADATA_TOPIC,
        key=collector,
        timestamp=published_at,
    )
