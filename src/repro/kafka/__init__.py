"""An in-process messaging substrate standing in for Apache Kafka (§6.2).

The paper's global-monitoring architecture stores the RT plugin's per-bin
routing-table diffs in a Kafka cluster, uses per-application *sync servers*
to decide when a time bin is ready for consumption, and lets consumers
replay data from offsets.  This package provides the same roles with an
in-process, log-structured broker:

* :class:`~repro.kafka.broker.MessageBroker` — named topics with
  partitions, append-only logs and offset-based reads.
* :class:`~repro.kafka.client.Producer` / :class:`~repro.kafka.client.Consumer`
  — the thin client API (consumer groups track committed offsets).
* :class:`~repro.kafka.sync.SyncServer` — completeness- or timeout-based
  synchronisation over the meta-data topic (§6.2.3).
"""

from repro.kafka.broker import Message, MessageBroker, Topic
from repro.kafka.client import Consumer, Producer
from repro.kafka.sync import CompletenessSyncServer, SyncServer, TimeoutSyncServer

__all__ = [
    "Message",
    "MessageBroker",
    "Topic",
    "Producer",
    "Consumer",
    "SyncServer",
    "CompletenessSyncServer",
    "TimeoutSyncServer",
]
