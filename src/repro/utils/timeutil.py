"""Time utilities.

All simulation timestamps are Unix epoch seconds expressed as plain ``int``
(or ``float`` where sub-second precision matters, e.g. publication delay).
Historical processing never consults the wall clock; live mode goes through
the :class:`Clock` abstraction so tests and simulations can drive time
synthetically.
"""

from __future__ import annotations

import time as _time
from typing import Iterator


class Clock:
    """Abstract source of "now" used by live-mode components."""

    def now(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError


class SystemClock(Clock):
    """Wall-clock backed clock (used only when running against real time)."""

    def now(self) -> float:
        return _time.time()

    def sleep(self, seconds: float) -> None:
        _time.sleep(seconds)


class SimulatedClock(Clock):
    """A clock that only moves when told to (or when something sleeps on it).

    ``sleep`` advances simulated time instantly, which lets live-mode code be
    exercised deterministically and at full speed in tests and benchmarks.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self._now += seconds

    def advance(self, seconds: float) -> None:
        """Move simulated time forward by ``seconds``."""
        self.sleep(seconds)

    def set(self, timestamp: float) -> None:
        """Jump simulated time to ``timestamp`` (must not move backwards)."""
        if timestamp < self._now:
            raise ValueError("simulated clock cannot move backwards")
        self._now = float(timestamp)


def bin_start(timestamp: int, bin_size: int) -> int:
    """Return the start of the time bin containing ``timestamp``.

    Bins are aligned to the epoch, as BGPCorsaro aligns its output bins.
    """
    if bin_size <= 0:
        raise ValueError("bin_size must be positive")
    return (int(timestamp) // bin_size) * bin_size


def iter_bins(start: int, end: int, bin_size: int) -> Iterator[int]:
    """Yield aligned bin start times covering ``[start, end)``."""
    if end < start:
        raise ValueError("end must be >= start")
    current = bin_start(start, bin_size)
    while current < end:
        yield current
        current += bin_size
