"""Time-interval arithmetic.

libBGPStream groups dump files into disjoint subsets of files with mutually
overlapping time intervals before multi-way merging (paper §3.3.4).  The
interval type and the grouping algorithm live here so both the stream sorter
and its tests/benchmarks can use them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


@dataclass(frozen=True, order=True)
class TimeInterval:
    """A closed time interval ``[start, end]`` in epoch seconds."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"interval end {self.end} precedes start {self.start}")

    @property
    def duration(self) -> int:
        return self.end - self.start

    def overlaps(self, other: "TimeInterval") -> bool:
        """True if the two closed intervals share at least one instant."""
        return self.start <= other.end and other.start <= self.end

    def contains(self, timestamp: int) -> bool:
        return self.start <= timestamp <= self.end

    def union(self, other: "TimeInterval") -> "TimeInterval":
        return TimeInterval(min(self.start, other.start), max(self.end, other.end))

    def intersect(self, other: "TimeInterval") -> "TimeInterval | None":
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if end < start:
            return None
        return TimeInterval(start, end)


def group_overlapping(
    items: Sequence[T],
    intervals: Sequence[TimeInterval],
) -> List[List[T]]:
    """Partition ``items`` into subsets of transitively-overlapping intervals.

    Implements the iterative algorithm of §3.3.4: (1) seed a new subset with
    the oldest remaining item; (2) recursively add items whose interval
    overlaps at least one item already in the subset; (3) remove the subset
    from the pool; repeat.  The result preserves, within each subset, the
    order of increasing interval start.

    The transitive closure is computed with a sweep over items sorted by
    start time, tracking the subset's max end time: an item belongs to the
    current subset iff its start is <= the running max end (closed
    intervals), which is exactly transitive overlap for interval graphs.
    """
    if len(items) != len(intervals):
        raise ValueError("items and intervals must have the same length")
    if not items:
        return []

    order = sorted(range(len(items)), key=lambda i: (intervals[i].start, intervals[i].end))
    groups: List[List[T]] = []
    current: List[T] = []
    current_end: int | None = None
    for idx in order:
        interval = intervals[idx]
        if current_end is None or interval.start > current_end:
            if current:
                groups.append(current)
            current = [items[idx]]
            current_end = interval.end
        else:
            current.append(items[idx])
            current_end = max(current_end, interval.end)
    if current:
        groups.append(current)
    return groups


def merge_intervals(intervals: Iterable[TimeInterval]) -> List[TimeInterval]:
    """Merge overlapping intervals into a minimal sorted list."""
    ordered = sorted(intervals)
    merged: List[TimeInterval] = []
    for interval in ordered:
        if merged and merged[-1].overlaps(interval):
            merged[-1] = merged[-1].union(interval)
        else:
            merged.append(interval)
    return merged


def split_interval(interval: TimeInterval, chunk: int) -> List[Tuple[int, int]]:
    """Split ``interval`` into half-open chunks ``[t, t+chunk)`` aligned to chunk."""
    if chunk <= 0:
        raise ValueError("chunk must be positive")
    chunks: List[Tuple[int, int]] = []
    start = (interval.start // chunk) * chunk
    while start <= interval.end:
        chunks.append((start, start + chunk))
        start += chunk
    return chunks
