"""Shared utilities: time handling, interval arithmetic, deterministic RNG."""

from repro.utils.intervals import TimeInterval, group_overlapping
from repro.utils.timeutil import (
    Clock,
    SimulatedClock,
    SystemClock,
    bin_start,
    iter_bins,
)

__all__ = [
    "TimeInterval",
    "group_overlapping",
    "Clock",
    "SimulatedClock",
    "SystemClock",
    "bin_start",
    "iter_bins",
]
