"""Public facade for the unified telemetry tier (PR 10).

The implementation lives in :mod:`repro._metrics` (a top-level state
module, like :mod:`repro._profiling`, so decode-layer modules can import
it without the ``repro.core`` package cycle); this facade is the name
applications and tests import::

    from repro.core import metrics

    metrics.enable()
    requests = metrics.counter("myapp_requests_total", "Requests served.")
    requests.inc()
    with metrics.trace_span("decode"):
        ...
    print(metrics.exposition())          # Prometheus 0.0.4 text format
    server = metrics.start_metrics_server(port=9102)   # GET /metrics

``enabled`` is re-resolved live via module ``__getattr__`` (it is a
mutable module global on the state module); everything else is a direct
re-export.  See ``docs/OBSERVABILITY.md`` for the metric catalog.
"""

from repro import _metrics as _state
from repro._metrics import (  # noqa: F401 - re-exports
    PIPELINE_STAGES,
    Counter,
    Gauge,
    Histogram,
    MetricsLogEmitter,
    MetricsRegistry,
    counter,
    default_registry,
    disable,
    enable,
    exposition,
    gauge,
    histogram,
    metrics_snapshot,
    start_metrics_server,
    trace_span,
)

__all__ = [
    "enabled",
    "enable",
    "disable",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsLogEmitter",
    "default_registry",
    "counter",
    "gauge",
    "histogram",
    "trace_span",
    "PIPELINE_STAGES",
    "exposition",
    "metrics_snapshot",
    "start_metrics_server",
]


def __getattr__(name: str):
    """Resolve ``enabled`` against the live state module."""
    if name == "enabled":
        return _state.enabled
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
