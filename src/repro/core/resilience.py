"""The shared resilience toolkit: retries, breakers, supervision, faults.

A continuous live monitor cannot afford the failure modes of a batch job:
one transient Kafka hiccup must not kill a bridge thread, a flapping broker
must not be hammered in a tight loop, and a crash must surface as an
explicit, bounded event — never as a silent clean-looking end-of-stream.
This module is the one place those disciplines live; every tier (broker
client, Kafka poll path, gateway hub) builds on the same four primitives
instead of hand-rolling its own:

* :class:`RetryPolicy` — capped exponential backoff with optional seeded
  jitter.  Pure configuration plus a ``run()`` driver that sleeps on an
  injected :class:`~repro.utils.timeutil.Clock`, so tests replay the exact
  schedule on a :class:`~repro.utils.timeutil.SimulatedClock` at full speed.
* :class:`CircuitBreaker` — classic closed → open → half-open breaker.
  After ``failure_threshold`` consecutive failures the circuit opens and
  calls fail fast with :class:`CircuitOpenError` (no load on a struggling
  dependency); after ``reset_timeout`` a limited number of half-open probes
  decide whether to close it again.
* :class:`Deadline` — an absolute time budget.  ``RetryPolicy.run`` accepts
  one so a retried operation gives up when the budget is spent rather than
  after a fixed attempt count.
* :class:`Supervisor` — a restart loop for crash-prone long-running
  callables (the gateway bridge thread): restart budget, backoff between
  restarts, crash counters, and an ``on_crash`` hook where the owner
  rebuilds whatever state the crash invalidated.

The second half is the **fault-injection harness** the resilience tests and
the chaos equivalence suite drive: a :class:`FaultPlan` scripts failures by
call index (deterministically — no randomness, no wall clock) and
:func:`inject_faults` wraps any object so the scripted faults fire before
its named methods run.  The same plan object injects transient Kafka poll
errors, broker transport failures, and permanent outages.

Everything here is deterministic and fake-clock-friendly: no module-level
wall-clock reads, no hidden threads, jitter only from a seeded PRNG.
"""

from __future__ import annotations

import random
import threading
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Type, Union

from repro import _metrics
from repro.utils.timeutil import Clock, SystemClock

#: Telemetry (see docs/OBSERVABILITY.md).  The resilience tier is exactly
#: the machinery an operator most needs to see working — retries, breaker
#: trips, supervised restarts — so every primitive reports here when
#: ``repro._metrics.enabled`` (one global load per event otherwise).
_retry_attempts = _metrics.counter(
    "repro_resilience_retry_attempts_total",
    "Retries performed by RetryPolicy.run across every call site.",
)
_breaker_transitions = _metrics.counter(
    "repro_resilience_breaker_transitions_total",
    "Circuit-breaker state transitions, labeled by the state entered.",
    labelnames=("state",),
)
_breaker_state = _metrics.gauge(
    "repro_resilience_breaker_state",
    "Current circuit-breaker state per breaker "
    "(0 = closed, 1 = half-open, 2 = open).",
    labelnames=("breaker",),
)
_breaker_rejections = _metrics.counter(
    "repro_resilience_breaker_rejections_total",
    "Calls failed fast because a circuit breaker was open.",
)
_supervisor_events = _metrics.counter(
    "repro_resilience_supervisor_events_total",
    "Supervisor lifecycle events (crash, restart, give_up, finish).",
    labelnames=("event",),
)

#: Numeric encoding for the breaker-state gauge.
_BREAKER_STATE_CODE = {"closed": 0, "half-open": 1, "open": 2}

__all__ = [
    "TransientError",
    "InjectedFault",
    "RetryPolicy",
    "CircuitOpenError",
    "CircuitBreaker",
    "DeadlineExceeded",
    "Deadline",
    "Supervisor",
    "FaultPlan",
    "FaultInjector",
    "inject_faults",
]


class TransientError(Exception):
    """A failure worth retrying: timeouts, connection resets, 5xx-alikes.

    Retry sites default their ``retry_on`` to this class (plus
    :class:`ConnectionError`), so a fault injector raising
    :class:`InjectedFault` exercises exactly the production retry path.
    """


class InjectedFault(TransientError):
    """The scripted failure a :class:`FaultPlan` raises by default."""


class DeadlineExceeded(Exception):
    """An operation ran out of its :class:`Deadline` budget."""


class Deadline:
    """An absolute time budget measured on an injected clock.

    ``Deadline(5.0, clock=clock)`` expires five clock-seconds after
    construction; :meth:`check` raises :class:`DeadlineExceeded` once it
    has.  Pass one to :meth:`RetryPolicy.run` to bound a whole retried
    operation rather than each attempt.
    """

    __slots__ = ("clock", "expires_at")

    def __init__(self, seconds: float, clock: Optional[Clock] = None) -> None:
        if seconds < 0:
            raise ValueError("a deadline cannot lie in the past")
        self.clock = clock or SystemClock()
        self.expires_at = self.clock.now() + seconds

    def remaining(self) -> float:
        """Seconds left before expiry (never negative)."""
        return max(0.0, self.expires_at - self.clock.now())

    @property
    def expired(self) -> bool:
        return self.clock.now() >= self.expires_at

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired:
            raise DeadlineExceeded(f"{what} exceeded its deadline")

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining():.3f}s)"


class RetryPolicy:
    """Capped exponential backoff with optional seeded jitter.

    The schedule is ``min(base * 2**attempt, cap)`` seconds before retry
    ``attempt + 1`` (attempt counting from 0), optionally scaled by a
    jitter factor drawn from a **seeded** PRNG — two policies built with
    the same seed produce the same schedule, so tests assert exact timing
    on a simulated clock.

    The policy itself never sleeps; :meth:`run` drives the loop and sleeps
    on the clock the call site injects.  This is the one backoff
    implementation in the tree: :class:`~repro.broker.client.BrokerClient`,
    the live Kafka poll path and the gateway supervisor all delegate here.
    """

    __slots__ = ("max_retries", "base", "cap", "jitter", "_rng")

    def __init__(
        self,
        max_retries: int = 4,
        base: float = 0.5,
        cap: float = 30.0,
        jitter: float = 0.0,
        seed: int = 0,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if base < 0 or cap < 0:
            raise ValueError("base and cap must be >= 0")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must lie in [0, 1)")
        self.max_retries = max_retries
        self.base = base
        self.cap = cap
        self.jitter = jitter
        self._rng = random.Random(seed) if jitter else None

    def delay(self, attempt: int) -> float:
        """The wait before retry ``attempt + 1`` (attempt counts from 0)."""
        delay = min(self.base * (2**attempt), self.cap)
        if self._rng is not None:
            delay *= 1.0 + self._rng.uniform(-self.jitter, self.jitter)
        return delay

    def delays(self) -> List[float]:
        """The full backoff schedule (one entry per permitted retry)."""
        return [self.delay(attempt) for attempt in range(self.max_retries)]

    def run(
        self,
        fn: Callable,
        *,
        clock: Optional[Clock] = None,
        retry_on: Tuple[Type[BaseException], ...] = (TransientError, ConnectionError),
        on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
        deadline: Optional[Deadline] = None,
    ):
        """Call ``fn`` until it succeeds, the budget or deadline runs out.

        Only ``retry_on`` exceptions are retried; anything else propagates
        immediately.  ``on_retry(attempt, exc, delay)`` fires before each
        backoff sleep (call sites hang their counters on it).  With a
        ``deadline``, the last error propagates as soon as the budget is
        spent, even if attempts remain.
        """
        clock = clock or SystemClock()
        attempt = 0
        while True:
            try:
                return fn()
            except retry_on as exc:
                if attempt >= self.max_retries:
                    raise
                if deadline is not None and deadline.expired:
                    raise
                delay = self.delay(attempt)
                attempt += 1
                if _metrics.enabled:
                    _retry_attempts.inc()
                if on_retry is not None:
                    on_retry(attempt, exc, delay)
                if delay > 0:
                    clock.sleep(delay)

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(max_retries={self.max_retries}, base={self.base}, "
            f"cap={self.cap}, jitter={self.jitter})"
        )


class CircuitOpenError(Exception):
    """Raised instead of calling through while the circuit is open."""


class CircuitBreaker:
    """A closed → open → half-open circuit breaker.

    ``failure_threshold`` *consecutive* failures open the circuit: calls
    then fail fast with :class:`CircuitOpenError` for ``reset_timeout``
    clock-seconds, after which up to ``half_open_probes`` trial calls are
    let through — one success closes the circuit, one failure re-opens it
    for another timeout.  Thread-safe; time comes from the injected clock.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        half_open_probes: int = 1,
        clock: Optional[Clock] = None,
        name: Optional[str] = None,
    ) -> None:
        if failure_threshold <= 0:
            raise ValueError("failure_threshold must be positive")
        if reset_timeout < 0:
            raise ValueError("reset_timeout must be >= 0")
        if half_open_probes <= 0:
            raise ValueError("half_open_probes must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self.clock = clock or SystemClock()
        self.name = name
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        #: Lifetime counters (tests and /stats read these).
        self.successes = 0
        self.failures = 0
        self.rejections = 0
        self.opens = 0

    @property
    def state(self) -> str:
        """The current state, with the open → half-open transition applied."""
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._state == self.OPEN and (
            self.clock.now() - self._opened_at >= self.reset_timeout
        ):
            self._state = self.HALF_OPEN
            self._probes_in_flight = 0
            self._note_transition_locked()
        return self._state

    def _note_transition_locked(self) -> None:
        """Record the state just entered in the telemetry registry."""
        if not _metrics.enabled:
            return
        state = self._state
        _breaker_transitions.inc(state=state)
        _breaker_state.set(
            _BREAKER_STATE_CODE.get(state, -1), breaker=self.name or "unnamed"
        )

    def allow(self) -> bool:
        """Whether a call may proceed right now (claims a half-open probe)."""
        with self._lock:
            state = self._state_locked()
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN and self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self.successes += 1
            self._consecutive_failures = 0
            if self._state != self.CLOSED:
                self._state = self.CLOSED
                self._probes_in_flight = 0
                self._note_transition_locked()

    def record_failure(self) -> None:
        with self._lock:
            self.failures += 1
            self._consecutive_failures += 1
            state = self._state_locked()
            if state == self.HALF_OPEN or (
                state == self.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._open_locked()

    def _open_locked(self) -> None:
        self._state = self.OPEN
        self._opened_at = self.clock.now()
        self._probes_in_flight = 0
        self.opens += 1
        self._note_transition_locked()

    def call(self, fn: Callable):
        """Run ``fn`` through the breaker: fail fast while open, record the
        outcome otherwise.  The wrapped call's exceptions propagate."""
        if not self.allow():
            with self._lock:
                self.rejections += 1
            if _metrics.enabled:
                _breaker_rejections.inc()
            label = f" {self.name!r}" if self.name else ""
            raise CircuitOpenError(f"circuit{label} is open")
        try:
            result = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    def stats(self) -> Dict[str, Union[str, int]]:
        """State plus the lifetime counters, for /stats-style surfaces."""
        return {
            "state": self.state,
            "successes": self.successes,
            "failures": self.failures,
            "rejections": self.rejections,
            "opens": self.opens,
        }

    def __repr__(self) -> str:
        return f"CircuitBreaker(state={self.state!r}, opens={self.opens})"


class Supervisor:
    """Restart a crash-prone callable with a bounded budget and backoff.

    ``run`` is invoked until it returns cleanly.  When it raises, the crash
    is recorded and — budget permitting — ``on_crash(exc, crash_count)``
    runs first (the owner rebuilds whatever the crash invalidated; return
    ``False`` to veto the restart), then the supervisor sleeps the
    backoff's next delay on the injected clock and re-invokes ``run``.
    Once the budget is spent (or the veto fired) the supervisor *gives up
    cleanly*: ``gave_up`` is set, ``last_error`` holds the exception,
    ``on_give_up`` fires, and :meth:`supervise` re-raises so inline callers
    see the failure (the threaded form records it instead).

    The supervisor is single-use: one :meth:`supervise` / :meth:`start`
    per instance.
    """

    def __init__(
        self,
        run: Callable[[], None],
        *,
        max_restarts: int = 3,
        backoff: Optional[RetryPolicy] = None,
        clock: Optional[Clock] = None,
        on_crash: Optional[Callable[[BaseException, int], Optional[bool]]] = None,
        on_give_up: Optional[Callable[[BaseException], None]] = None,
        name: Optional[str] = None,
    ) -> None:
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        self.run = run
        self.max_restarts = max_restarts
        self.backoff = backoff or RetryPolicy(max_retries=max_restarts, base=0.05, cap=2.0)
        self.clock = clock or SystemClock()
        self.on_crash = on_crash
        self.on_give_up = on_give_up
        self.name = name
        self._thread: Optional[threading.Thread] = None
        #: Crash bookkeeping (read by tests and the gateway's /stats).
        self.crashes = 0
        self.restarts = 0
        self.gave_up = False
        self.finished = False
        self.last_error: Optional[BaseException] = None

    def supervise(self) -> None:
        """Run the supervision loop in the calling thread.

        Returns when ``run`` finished cleanly; raises the final exception
        when the restart budget is exhausted (or a restart was vetoed).
        """
        while True:
            try:
                self.run()
            except Exception as exc:  # noqa: BLE001 - the whole point
                self.crashes += 1
                self.last_error = exc
                if _metrics.enabled:
                    _supervisor_events.inc(event="crash")
                proceed = self.crashes <= self.max_restarts
                if proceed and self.on_crash is not None:
                    proceed = self.on_crash(exc, self.crashes) is not False
                if not proceed:
                    self.gave_up = True
                    if _metrics.enabled:
                        _supervisor_events.inc(event="give_up")
                    if self.on_give_up is not None:
                        self.on_give_up(exc)
                    raise
                delay = self.backoff.delay(self.crashes - 1)
                self.restarts += 1
                if _metrics.enabled:
                    _supervisor_events.inc(event="restart")
                if delay > 0:
                    self.clock.sleep(delay)
            else:
                self.finished = True
                if _metrics.enabled:
                    _supervisor_events.inc(event="finish")
                return

    def start(self) -> threading.Thread:
        """Run the supervision loop in a daemon thread.

        The threaded form never lets the final exception escape — it is
        recorded in ``last_error``/``gave_up`` for the owner to surface.
        """
        if self._thread is not None:
            raise RuntimeError("supervisor already started")

        def guarded() -> None:
            try:
                self.supervise()
            except Exception:  # noqa: BLE001 - recorded in last_error
                pass

        self._thread = threading.Thread(
            target=guarded, daemon=True, name=self.name or "supervisor"
        )
        self._thread.start()
        return self._thread

    def join(self, timeout: Optional[float] = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def snapshot(self) -> Dict[str, Union[int, bool, Optional[str]]]:
        """Crash counters plus the last error's class name."""
        error = self.last_error
        return {
            "crashes": self.crashes,
            "restarts": self.restarts,
            "gave_up": self.gave_up,
            "finished": self.finished,
            "error": type(error).__name__ if error is not None else None,
        }


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------

#: An exception instance, an exception class, or a factory of either.
FaultSpec = Union[BaseException, Type[BaseException], Callable[[int], BaseException]]


class FaultPlan:
    """A deterministic script of failures, keyed by call index.

    ``FaultPlan(fail_at=(2, 5))`` makes the 3rd and 6th guarded calls
    raise; ``fail_from=10`` turns every call from index 10 on into a
    failure (a permanent outage).  The raised error defaults to
    :class:`InjectedFault` (a :class:`TransientError`, so production retry
    paths engage); pass ``error=`` an exception class or instance to
    script non-transient crashes instead.

    One plan may guard several wrapped objects at once — the call counter
    is shared, which is exactly what a cross-layer chaos scenario wants
    ("the 7th broker interaction of this run fails, whoever makes it").
    Counters: ``calls`` (guarded calls seen), ``injected`` (faults fired).
    """

    def __init__(
        self,
        fail_at: Iterable[int] = (),
        *,
        fail_from: Optional[int] = None,
        error: FaultSpec = InjectedFault,
    ) -> None:
        self.fail_at = frozenset(fail_at)
        if fail_from is not None and fail_from < 0:
            raise ValueError("fail_from must be >= 0")
        self.fail_from = fail_from
        self.error = error
        self._lock = threading.Lock()
        self.calls = 0
        self.injected = 0

    def should_fail(self, index: int) -> bool:
        if index in self.fail_at:
            return True
        return self.fail_from is not None and index >= self.fail_from

    def tick(self, operation: str = "call") -> None:
        """Count one guarded call; raise if the script says this one fails."""
        with self._lock:
            index = self.calls
            self.calls += 1
            if not self.should_fail(index):
                return
            self.injected += 1
        raise self._build_error(index, operation)

    def _build_error(self, index: int, operation: str) -> BaseException:
        error = self.error
        if isinstance(error, BaseException):
            return error
        if isinstance(error, type) and issubclass(error, BaseException):
            return error(f"injected fault in {operation} (call {index})")
        return error(index)

    def __repr__(self) -> str:
        return (
            f"FaultPlan(fail_at={sorted(self.fail_at)}, fail_from={self.fail_from}, "
            f"calls={self.calls}, injected={self.injected})"
        )


class FaultInjector:
    """A transparent proxy that runs a :class:`FaultPlan` before methods.

    Reads delegate to the wrapped object untouched; calling one of the
    guarded method names first ticks the plan (which may raise the
    scripted fault) and only then delegates.  ``functools.wraps``
    preserves the wrapped method's signature, so introspection-based
    feature detection (e.g. the live interface probing for ``until_ts``)
    sees through the wrapper.
    """

    def __init__(self, inner, plan: FaultPlan, methods: Iterable[str]) -> None:
        object.__setattr__(self, "_inner", inner)
        object.__setattr__(self, "plan", plan)
        object.__setattr__(self, "_methods", frozenset(methods))

    def __getattr__(self, name: str):
        attr = getattr(self._inner, name)
        if name in self._methods and callable(attr):
            import functools

            @functools.wraps(attr)
            def guarded(*args, **kwargs):
                self.plan.tick(name)
                return attr(*args, **kwargs)

            return guarded
        return attr

    def __setattr__(self, name: str, value) -> None:
        setattr(self._inner, name, value)

    def __repr__(self) -> str:
        return f"FaultInjector({self._inner!r}, plan={self.plan!r})"


def inject_faults(inner, plan: FaultPlan, methods: Iterable[str]) -> FaultInjector:
    """Wrap ``inner`` so ``plan``'s scripted faults fire before ``methods``.

    The three chaos-suite layers are all spelled with this one helper::

        inject_faults(consumer, plan, ["poll"])                 # Kafka consumer
        inject_faults(source, plan, ["poll"])                   # BMP feed source
        inject_faults(transport, plan,
                      ["get_window", "get_new_files_page"])     # broker transport
    """
    return FaultInjector(inner, plan, methods)
