"""BGPReader: the ASCII command-line tool (§4.1).

Outputs, in ASCII, the BGPStream records and elems matching a set of filters
given via command-line options.  It is meant as a drop-in replacement for the
classic ``bgpdump`` tool (``--bgpdump-format`` switches the output to that
format) with the additional abilities to read many files / collectors /
projects in one process, to work in live mode, and to filter.

Because this reproduction has no network access, the data source is either a
local archive directory produced by the collector simulation (``--archive``),
a broker SQLite database (``--sqlite``), a CSV index (``--csv``), a single
MRT file (``--single-file``), or — for live mode — a recorded raw BMP frame
stream (``--live``, à la OpenBMP) which is replayed through an in-memory
Kafka broker and consumed by the live data interface.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import IO, List, Optional

from repro.broker.broker import Broker
from repro.collectors.archive import Archive
from repro.core.interfaces import (
    BrokerDataInterface,
    CSVFileDataInterface,
    DataInterface,
    LiveDataInterface,
    SingleFileDataInterface,
    SQLiteDataInterface,
)
from repro.core import profiling
from repro.core.parallel import ParallelConfig
from repro.core.record import RecordStatus
from repro.core.stream import BGPStream


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bgpreader",
        description="Output BGP records/elems matching a set of filters in ASCII form.",
    )
    source = parser.add_argument_group("data source")
    source.add_argument("--archive", help="path to a simulated archive directory")
    source.add_argument("--sqlite", help="path to a Broker SQLite database")
    source.add_argument("--csv", help="path to a CSV dump-file index")
    source.add_argument("--single-file", help="path to a single MRT dump file")
    source.add_argument(
        "--single-file-type",
        default="updates",
        choices=["ribs", "updates"],
        help="dump type of --single-file (default: updates)",
    )
    source.add_argument(
        "--live",
        help="live mode: path to a recorded raw BMP frame stream, replayed "
             "through an in-memory Kafka broker (OpenBMP-style feed)",
    )
    source.add_argument(
        "--bmp-topic",
        default=None,
        help="Kafka topic the BMP frames travel on (with --live; "
             "default: openbmp.bmp_raw)",
    )
    source.add_argument(
        "--bmp-router",
        default=None,
        help="router name keying the BMP feed (with --live; "
             "default: the --live file name)",
    )
    source.add_argument(
        "--page-size",
        type=int,
        default=None,
        help="files per Broker meta-data page (with --archive; enables "
             "cursor pagination of the meta-data pull)",
    )
    source.add_argument(
        "--cursor",
        default=None,
        help="opaque resume token from a previous paginated run (with "
             "--archive; the final '# next-cursor:' line of an interrupted "
             "run)",
    )

    filters = parser.add_argument_group("filters")
    filters.add_argument("-p", "--project", action="append", default=[], help="project name")
    filters.add_argument("-c", "--collector", action="append", default=[], help="collector name")
    filters.add_argument(
        "-t", "--type", action="append", default=[], choices=["ribs", "updates"],
        help="record type",
    )
    filters.add_argument(
        "-w", "--window", help="time interval START[,END]; omit END (or use -1) for live mode"
    )
    filters.add_argument("-k", "--prefix", action="append", default=[],
                         help="prefix filter (matches the prefix and any more-specific)")
    filters.add_argument("--prefix-exact", action="append", default=[],
                         help="prefix filter matching the exact prefix only")
    filters.add_argument("--prefix-more", action="append", default=[],
                         help="prefix filter matching the prefix and any more-specific")
    filters.add_argument("--prefix-less", action="append", default=[],
                         help="prefix filter matching the prefix and any less-specific")
    filters.add_argument("--prefix-any", action="append", default=[],
                         help="prefix filter matching any overlapping prefix")
    filters.add_argument("-j", "--peer-asn", action="append", default=[], help="peer ASN filter")
    filters.add_argument("-y", "--community", action="append", default=[],
                         help="community filter asn:value")
    filters.add_argument("-A", "--aspath", action="append", default=[],
                         help="regular expression matched against the AS path")

    engine = parser.add_argument_group("engine")
    engine.add_argument(
        "--parallel", action="store_true",
        help="parse dump files concurrently with the parallel batched engine",
    )
    engine.add_argument(
        "--workers", type=int, default=None,
        help="worker count for --parallel (default: CPU count)",
    )
    engine.add_argument(
        "--batch-size", type=int, default=None,
        help="records per batch for --parallel (default: 1024)",
    )
    engine.add_argument(
        "--no-intern", action="store_true",
        help="disable flyweight interning of parsed BGP values "
             "(AS paths, community sets, prefixes, peer strings)",
    )
    engine.add_argument(
        "--broker-cache", metavar="DIR", default=None,
        help="persistent decoded-segment cache directory: unchanged dump "
             "files replay their decoded records from here instead of "
             "re-decoding MRT, and newly decoded files are stored for the "
             "next run",
    )
    engine.add_argument(
        "--broker-cache-size", type=int, default=None, metavar="BYTES",
        help="on-disk budget of --broker-cache in bytes (least-recently-"
             "used segments are evicted beyond it; default: 512 MiB)",
    )
    engine.add_argument(
        "--eager-decode", action="store_true",
        help="decode every path attribute at parse time instead of the "
             "default lazy zero-copy tier (which defers attribute "
             "construction until a value is actually read)",
    )

    output = parser.add_argument_group("output")
    output.add_argument("-r", "--show-records", action="store_true",
                        help="print record header lines in addition to elems")
    output.add_argument("-e", "--elems-only", action="store_true",
                        help="print elem lines only (default)")
    output.add_argument("--bgpdump-format", action="store_true",
                        help="emit bgpdump -m compatible lines")
    output.add_argument("--limit", type=int, default=None,
                        help="stop after printing this many elem lines")
    output.add_argument("--decode-stats", action="store_true",
                        help="print decode-tier counters (records scanned, bytes "
                             "viewed vs copied, attributes deferred vs decoded) as "
                             "#-prefixed lines after the stream ends")
    output.add_argument("--metrics-port", type=int, default=None, metavar="PORT",
                        help="enable the telemetry registry and serve it in "
                             "Prometheus text format on GET /metrics at this "
                             "port (127.0.0.1) for the duration of the run")
    output.add_argument("--metrics-log", type=float, default=None, metavar="SECONDS",
                        help="enable the telemetry registry and print a JSON "
                             "metrics snapshot line to stderr every SECONDS "
                             "(plus one final line when the stream ends)")
    return parser


def build_stream(args: argparse.Namespace) -> BGPStream:
    """Construct a configured BGPStream from parsed CLI arguments."""
    interface = _build_interface(args)
    # BGPStream(interning=False) opts this stream's readers and workers out
    # of both interning layers; the process-wide switch is left alone (an
    # embedding application may have configured it deliberately).
    interning = not getattr(args, "no_intern", False)
    parallel: Optional[ParallelConfig] = None
    if not getattr(args, "parallel", False) and (
        getattr(args, "workers", None) is not None
        or getattr(args, "batch_size", None) is not None
    ):
        raise SystemExit("bgpreader: error: --workers/--batch-size require --parallel")
    if getattr(args, "parallel", False) and getattr(args, "live", None):
        raise SystemExit(
            "bgpreader: error: --parallel parses dump files and does not apply to --live"
        )
    if getattr(args, "parallel", False):
        options = {}
        if args.workers is not None:
            options["max_workers"] = args.workers
        if args.batch_size is not None:
            options["batch_size"] = args.batch_size
        try:
            parallel = ParallelConfig(**options)
        except ValueError as exc:
            raise SystemExit(f"bgpreader: error: {exc}")
    eager = True if getattr(args, "eager_decode", False) else None
    segment_cache = _build_segment_cache(args)
    stream = BGPStream(
        data_interface=interface,
        parallel=parallel,
        interning=interning,
        eager=eager,
        segment_cache=segment_cache,
    )
    for project in args.project:
        stream.add_filter("project", project)
    for collector in args.collector:
        stream.add_filter("collector", collector)
    for dump_type in args.type:
        stream.add_filter("record-type", dump_type)
    for prefix in args.prefix:
        stream.add_filter("prefix", prefix)
    for name in ("prefix-exact", "prefix-more", "prefix-less", "prefix-any"):
        for prefix in getattr(args, name.replace("-", "_"), []):
            stream.add_filter(name, prefix)
    for asn in args.peer_asn:
        stream.add_filter("peer-asn", asn)
    for community in args.community:
        stream.add_filter("community", community)
    for pattern in args.aspath:
        stream.add_filter("aspath", pattern)
    if args.window:
        start_text, _, end_text = args.window.partition(",")
        start = int(start_text)
        end: Optional[int] = int(end_text) if end_text else None
        stream.add_interval_filter(start, end)
    return stream


def _build_segment_cache(args: argparse.Namespace):
    """The optional persistent decoded-segment cache (``--broker-cache``)."""
    cache_dir = getattr(args, "broker_cache", None)
    cache_size = getattr(args, "broker_cache_size", None)
    if cache_dir is None:
        if cache_size is not None:
            raise SystemExit("bgpreader: error: --broker-cache-size requires --broker-cache")
        return None
    if getattr(args, "live", None):
        raise SystemExit(
            "bgpreader: error: --broker-cache caches decoded dump files and "
            "does not apply to --live"
        )
    from repro.broker.segments import DEFAULT_MAX_BYTES, SegmentCache

    try:
        return SegmentCache(
            cache_dir, max_bytes=cache_size if cache_size is not None else DEFAULT_MAX_BYTES
        )
    except (OSError, ValueError) as exc:
        raise SystemExit(f"bgpreader: error: cannot open --broker-cache: {exc}")


def _build_interface(args: argparse.Namespace) -> DataInterface:
    sources = [
        bool(args.archive),
        bool(args.sqlite),
        bool(args.csv),
        bool(args.single_file),
        bool(getattr(args, "live", None)),
    ]
    if sum(sources) != 1:
        raise SystemExit(
            "exactly one of --archive / --sqlite / --csv / --single-file / --live is required"
        )
    if not getattr(args, "live", None) and (
        getattr(args, "bmp_topic", None) or getattr(args, "bmp_router", None)
    ):
        raise SystemExit("bgpreader: error: --bmp-topic/--bmp-router require --live")
    if not args.archive and (
        getattr(args, "page_size", None) is not None
        or getattr(args, "cursor", None) is not None
    ):
        raise SystemExit("bgpreader: error: --page-size/--cursor require --archive")
    if getattr(args, "live", None):
        return _build_live_interface(args)
    if args.archive:
        broker = Broker(archives=[Archive(args.archive)])
        return BrokerDataInterface(
            broker,
            max_empty_polls=1,
            page_size=getattr(args, "page_size", None),
            cursor=getattr(args, "cursor", None),
        )
    if args.sqlite:
        return SQLiteDataInterface(args.sqlite)
    if args.csv:
        return CSVFileDataInterface(args.csv)
    return SingleFileDataInterface(args.single_file, dump_type=args.single_file_type)


def _build_live_interface(args: argparse.Namespace) -> LiveDataInterface:
    """Replay a recorded raw BMP frame stream as an OpenBMP-style live feed.

    The file's back-to-back BMP frames are published as one Kafka message
    onto the feed topic, keyed by the router name; the live interface then
    consumes them exactly as it would a real near-realtime feed (a truncated
    or corrupt tail is signalled as a not-valid record, like a corrupted
    dump file).
    """
    from repro.bmp.source import DEFAULT_BMP_TOPIC, BMPFeedProducer
    from repro.kafka.broker import MessageBroker

    topic = args.bmp_topic or DEFAULT_BMP_TOPIC
    router = args.bmp_router or os.path.basename(args.live)
    broker = MessageBroker()
    producer = BMPFeedProducer(broker, topic=topic, router=router)
    try:
        with open(args.live, "rb") as handle:
            producer.publish(handle.read())
    except OSError as exc:
        raise SystemExit(f"bgpreader: error: cannot read --live file: {exc}")
    # The whole feed is already on the topic: one empty poll means done.
    return LiveDataInterface(
        broker=broker, topics=[topic], max_empty_polls=1, poll_interval=0.0
    )


def run(args: argparse.Namespace, out: IO[str]) -> int:
    """Run BGPReader, writing lines to ``out``; returns the exit status."""
    from repro import _metrics

    stats = getattr(args, "decode_stats", False)
    metrics_port = getattr(args, "metrics_port", None)
    metrics_log = getattr(args, "metrics_log", None)
    metrics_server = None
    metrics_emitter = None
    if metrics_port is not None or metrics_log is not None:
        # The telemetry tier rides the decode profiling counters for its
        # decode view, so a metrics run enables both.
        _metrics.enable()
        profiling.enable()
        if metrics_port is not None:
            metrics_server = _metrics.start_metrics_server(metrics_port)
        if metrics_log is not None:
            metrics_emitter = _metrics.MetricsLogEmitter(
                sys.stderr, interval=metrics_log
            ).start()
    if stats:
        profiling.enable()
    try:
        return _run_stream(args, out)
    finally:
        if metrics_emitter is not None:
            metrics_emitter.stop()
        if metrics_server is not None:
            metrics_server.close()
        if metrics_port is not None or metrics_log is not None:
            _metrics.disable()
            if not stats:
                profiling.disable()
        if stats:
            for line in profiling.snapshot().summary_lines():
                print(f"# {line}", file=out)
            profiling.disable()


def _run_stream(args: argparse.Namespace, out: IO[str]) -> int:
    stream = build_stream(args)
    try:
        status = _print_stream(args, stream, out)
    finally:
        if profiling.counters is not None:
            profiling.record_intern_stats(stream.intern_pool)
    # A paginated pull that stopped early (e.g. --limit) leaves a resume
    # token; print it so the next invocation can pass it back as --cursor.
    cursor = getattr(stream._interface, "last_cursor", None)
    if cursor:
        print(f"# next-cursor: {cursor}", file=out)
    return status


def _print_stream(args: argparse.Namespace, stream: BGPStream, out: IO[str]) -> int:
    printed = 0
    for record in stream.records():
        if record.status != RecordStatus.VALID:
            print(f"# {record.to_ascii()}", file=out)
            continue
        if args.show_records:
            print(record.to_ascii(), file=out)
        for elem in record.elems():
            if not stream.filters.match_elem(elem):
                continue
            line = elem.to_bgpdump_ascii() if args.bgpdump_format else elem.to_ascii()
            print(line, file=out)
            printed += 1
            if args.limit is not None and printed >= args.limit:
                return 0
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return run(args, sys.stdout)
    except BrokenPipeError:
        return 0


if __name__ == "__main__":
    sys.exit(main())
