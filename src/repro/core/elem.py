"""BGPStream elems: the per-VP, per-prefix unit of information (Table 1).

An MRT record may group elements of the same type related to different VPs
or prefixes (routes to one prefix from many VPs in a RIB record, or an
announcement of many prefixes sharing one path in an Updates record).
libBGPStream decomposes each record into *elems*, each carrying exactly the
fields of Table 1 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.bgp.aspath import ASPath
from repro.bgp.community import CommunitySet
from repro.bgp.fsm import SessionState
from repro.bgp.prefix import Prefix


class ElemType(Enum):
    """The four elem types of Table 1."""

    RIB = "R"
    ANNOUNCEMENT = "A"
    WITHDRAWAL = "W"
    STATE = "S"

    def __str__(self) -> str:
        return self.value


@dataclass(slots=True)
class BGPElem:
    """One elem.  Fields marked conditional in Table 1 may be ``None``.

    ``fields`` in the paper's PyBGPStream exposes a dict view; here
    :meth:`field_dict` provides the same convenience.

    Slotted: elems are the highest-volume objects of the whole framework
    (one RIB record fans out into thousands), and dropping the per-instance
    ``__dict__`` makes both construction and attribute access measurably
    cheaper.  The prefix/path/communities fields hold *interned* flyweight
    values when the producing stream has an intern pool configured (the
    default — see :mod:`repro.core.intern`).
    """

    elem_type: ElemType
    time: int
    peer_address: str
    peer_asn: int
    #: conditionally populated (R/A/W)
    prefix: Optional[Prefix] = None
    #: conditionally populated (R/A)
    next_hop: Optional[str] = None
    as_path: Optional[ASPath] = None
    communities: Optional[CommunitySet] = None
    #: conditionally populated (S)
    old_state: Optional[SessionState] = None
    new_state: Optional[SessionState] = None
    #: annotations copied from the originating record
    project: str = ""
    collector: str = ""

    # Defined explicitly (the dataclass machinery skips methods it finds in
    # the class body): the generated __eq__ requires both operands to be of
    # the same class, which would make the lazy elems of the zero-copy tier
    # compare unequal to eager ones despite identical field values.
    def __eq__(self, other: object):
        if other is self:
            return True
        if not isinstance(other, BGPElem):
            return NotImplemented
        return (
            self.elem_type == other.elem_type
            and self.time == other.time
            and self.peer_address == other.peer_address
            and self.peer_asn == other.peer_asn
            and self.prefix == other.prefix
            and self.next_hop == other.next_hop
            and self.as_path == other.as_path
            and self.communities == other.communities
            and self.old_state == other.old_state
            and self.new_state == other.new_state
            and self.project == other.project
            and self.collector == other.collector
        )

    # -- convenience views ---------------------------------------------------

    @property
    def origin_asn(self) -> Optional[int]:
        if self.as_path is None:
            return None
        return self.as_path.origin_asn

    def field_dict(self) -> dict:
        """A dict view mirroring PyBGPStream's ``elem.fields``."""
        fields = {}
        if self.prefix is not None:
            fields["prefix"] = str(self.prefix)
        if self.next_hop is not None:
            fields["next-hop"] = self.next_hop
        if self.as_path is not None:
            fields["as-path"] = str(self.as_path)
        if self.communities is not None:
            fields["communities"] = {str(c) for c in self.communities}
        if self.old_state is not None:
            fields["old-state"] = str(self.old_state)
        if self.new_state is not None:
            fields["new-state"] = str(self.new_state)
        return fields

    def to_ascii(self) -> str:
        """Render one pipe-separated elem line (BGPReader's output format).

        Format: ``type|time|project|collector|peer-asn|peer-address|prefix|
        next-hop|as-path|communities|old-state|new-state``.
        """
        parts = [
            str(self.elem_type),
            str(self.time),
            self.project,
            self.collector,
            str(self.peer_asn),
            self.peer_address,
            str(self.prefix) if self.prefix is not None else "",
            self.next_hop or "",
            str(self.as_path) if self.as_path is not None else "",
            str(self.communities) if self.communities else "",
            str(self.old_state) if self.old_state is not None else "",
            str(self.new_state) if self.new_state is not None else "",
        ]
        return "|".join(parts)

    def to_bgpdump_ascii(self) -> str:
        """Render in a ``bgpdump -m``-compatible flavour.

        BGPReader can be used as a drop-in replacement for ``bgpdump``; this
        produces the familiar ``BGP4MP|time|A|peer|asn|prefix|path|...`` or
        ``TABLE_DUMP2|time|B|...`` lines.
        """
        if self.elem_type == ElemType.RIB:
            return "|".join(
                [
                    "TABLE_DUMP2",
                    str(self.time),
                    "B",
                    self.peer_address,
                    str(self.peer_asn),
                    str(self.prefix) if self.prefix else "",
                    str(self.as_path) if self.as_path else "",
                    "IGP",
                    self.next_hop or "",
                    "0",
                    "0",
                    str(self.communities) if self.communities else "",
                    "NAG",
                    "",
                ]
            )
        if self.elem_type == ElemType.ANNOUNCEMENT:
            return "|".join(
                [
                    "BGP4MP",
                    str(self.time),
                    "A",
                    self.peer_address,
                    str(self.peer_asn),
                    str(self.prefix) if self.prefix else "",
                    str(self.as_path) if self.as_path else "",
                    "IGP",
                    self.next_hop or "",
                    "0",
                    "0",
                    str(self.communities) if self.communities else "",
                    "NAG",
                    "",
                ]
            )
        if self.elem_type == ElemType.WITHDRAWAL:
            return "|".join(
                [
                    "BGP4MP",
                    str(self.time),
                    "W",
                    self.peer_address,
                    str(self.peer_asn),
                    str(self.prefix) if self.prefix else "",
                ]
            )
        return "|".join(
            [
                "BGP4MP",
                str(self.time),
                "STATE",
                self.peer_address,
                str(self.peer_asn),
                str(int(self.old_state)) if self.old_state is not None else "",
                str(int(self.new_state)) if self.new_state is not None else "",
            ]
        )
