"""Stream filters.

A stream is defined by meta-data filters (projects, collectors, dump types,
time interval) that restrict *which dump files* are read, plus data filters
(elem type, prefix, peer ASN, AS-path membership, communities) applied to
the content (§3.3.1, §4.1).  The same :class:`FilterSet` backs the
``BGPStream.add_filter`` API, the BGPReader command-line options and
BGPCorsaro's configuration.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.bgp.community import Community
from repro.bgp.prefix import Prefix
from repro.core.elem import BGPElem, ElemType
from repro.core.record import BGPStreamRecord


#: Filter names accepted by ``add_filter`` (mirroring PyBGPStream).
_FILTER_NAMES = {
    "project",
    "collector",
    "record-type",
    "elem-type",
    "prefix",
    "prefix-exact",
    "peer-asn",
    "origin-asn",
    "aspath",
    "community",
}


@dataclass
class FilterSet:
    """The set of filters defining a stream."""

    projects: Set[str] = field(default_factory=set)
    collectors: Set[str] = field(default_factory=set)
    record_types: Set[str] = field(default_factory=set)  # "ribs" / "updates"
    elem_types: Set[ElemType] = field(default_factory=set)
    #: Prefix filters match the exact prefix or any more-specific prefix
    #: (the ``-k 192.0.0.0/8`` semantics of BGPReader).
    prefixes: List[Prefix] = field(default_factory=list)
    exact_prefixes: Set[Prefix] = field(default_factory=set)
    peer_asns: Set[int] = field(default_factory=set)
    origin_asns: Set[int] = field(default_factory=set)
    #: Regular expressions matched against the space-separated AS path string.
    aspath_patterns: List[re.Pattern] = field(default_factory=list)
    communities: Set[Community] = field(default_factory=set)
    interval_start: Optional[int] = None
    interval_end: Optional[int] = None  # None = live

    # -- construction -----------------------------------------------------------

    def add(self, name: str, value: str) -> "FilterSet":
        """Add one filter by name (the PyBGPStream ``add_filter`` idiom)."""
        if name not in _FILTER_NAMES:
            raise ValueError(f"unknown filter {name!r}; expected one of {sorted(_FILTER_NAMES)}")
        if name == "project":
            self.projects.add(value)
        elif name == "collector":
            self.collectors.add(value)
        elif name == "record-type":
            normalised = {"rib": "ribs", "update": "updates"}.get(value, value)
            if normalised not in ("ribs", "updates"):
                raise ValueError(f"unknown record type {value!r}")
            self.record_types.add(normalised)
        elif name == "elem-type":
            mapping = {
                "rib": ElemType.RIB,
                "announcement": ElemType.ANNOUNCEMENT,
                "announcements": ElemType.ANNOUNCEMENT,
                "withdrawal": ElemType.WITHDRAWAL,
                "withdrawals": ElemType.WITHDRAWAL,
                "state": ElemType.STATE,
            }
            if value not in mapping:
                raise ValueError(f"unknown elem type {value!r}")
            self.elem_types.add(mapping[value])
        elif name == "prefix":
            self.prefixes.append(Prefix.from_string(value))
        elif name == "prefix-exact":
            self.exact_prefixes.add(Prefix.from_string(value))
        elif name == "peer-asn":
            self.peer_asns.add(int(value))
        elif name == "origin-asn":
            self.origin_asns.add(int(value))
        elif name == "aspath":
            self.aspath_patterns.append(re.compile(value))
        elif name == "community":
            self.communities.add(Community.from_string(value))
        return self

    def add_interval(self, start: int, end: Optional[int]) -> "FilterSet":
        """Set the time interval; ``end=None`` (or -1) selects live mode."""
        if end is not None and end < 0:
            end = None
        if end is not None and end < start:
            raise ValueError("interval end precedes start")
        self.interval_start = start
        self.interval_end = end
        return self

    @property
    def live(self) -> bool:
        return self.interval_start is not None and self.interval_end is None

    # -- matching -------------------------------------------------------------------

    def match_record(self, record: BGPStreamRecord) -> bool:
        """Record-level (meta-data) matching."""
        if self.projects and record.project not in self.projects:
            return False
        if self.collectors and record.collector not in self.collectors:
            return False
        if self.record_types and record.dump_type not in self.record_types:
            return False
        if self.interval_start is not None and record.is_valid:
            if record.time < self.interval_start:
                return False
            if self.interval_end is not None and record.time > self.interval_end:
                return False
        return True

    def match_elem(self, elem: BGPElem) -> bool:
        """Elem-level (content) matching."""
        if self.elem_types and elem.elem_type not in self.elem_types:
            return False
        if self.peer_asns and elem.peer_asn not in self.peer_asns:
            return False
        if self.origin_asns:
            if elem.origin_asn is None or elem.origin_asn not in self.origin_asns:
                return False
        if self.prefixes or self.exact_prefixes:
            if elem.prefix is None:
                return False
            in_exact = elem.prefix in self.exact_prefixes
            in_covering = any(p.contains(elem.prefix) for p in self.prefixes)
            if not (in_exact or in_covering):
                return False
        if self.aspath_patterns:
            if elem.as_path is None:
                return False
            path_text = str(elem.as_path)
            if not any(p.search(path_text) for p in self.aspath_patterns):
                return False
        if self.communities:
            if elem.communities is None or not elem.communities.matches_any(self.communities):
                return False
        return True

    def match(self, record: BGPStreamRecord, elem: BGPElem) -> bool:
        return self.match_record(record) and self.match_elem(elem)
