"""Stream filters.

A stream is defined by meta-data filters (projects, collectors, dump types,
time interval) that restrict *which dump files* are read, plus data filters
(elem type, prefix, peer ASN, AS-path membership, communities) applied to
the content (§3.3.1, §4.1).  The same :class:`FilterSet` backs the
``BGPStream.add_filter`` API, the BGPReader command-line options and
BGPCorsaro's configuration.

Prefix filters implement the BGPStream filter language's four match modes
and are backed by a shared patricia trie (:mod:`repro.bgp.trie`), so an
elem is matched against *n* watched prefixes in O(prefix length), not O(n):

* ``prefix-exact`` — the elem prefix equals the filter prefix;
* ``prefix-more`` — the elem prefix equals the filter prefix or is more
  specific (contained in it); ``prefix`` is a back-compatible alias with
  the same semantics (the ``-k 192.0.0.0/8`` behaviour of BGPReader);
* ``prefix-less`` — the elem prefix equals the filter prefix or is less
  specific (contains it);
* ``prefix-any`` — the two prefixes overlap in either direction.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.bgp.community import Community
from repro.bgp.prefix import Prefix
from repro.bgp.trie import PrefixTrie
from repro.core.elem import BGPElem, ElemType
from repro.core.record import BGPStreamRecord

#: Filter names accepted by ``add_filter`` (mirroring PyBGPStream).
_FILTER_NAMES = {
    "project",
    "collector",
    "record-type",
    "elem-type",
    "prefix",
    "prefix-exact",
    "prefix-more",
    "prefix-less",
    "prefix-any",
    "peer-asn",
    "origin-asn",
    "aspath",
    "community",
}

#: Prefix match modes, stored per watched prefix as a bitmask in the trie.
MATCH_EXACT = 1
MATCH_MORE = 2
MATCH_LESS = 4
MATCH_ANY = 8

_PREFIX_MODES = {
    "prefix": MATCH_MORE,  # historical alias: exact or more specific
    "prefix-exact": MATCH_EXACT,
    "prefix-more": MATCH_MORE,
    "prefix-less": MATCH_LESS,
    "prefix-any": MATCH_ANY,
}


@dataclass
class FilterSet:
    """The set of filters defining a stream."""

    projects: Set[str] = field(default_factory=set)
    collectors: Set[str] = field(default_factory=set)
    record_types: Set[str] = field(default_factory=set)  # "ribs" / "updates"
    elem_types: Set[ElemType] = field(default_factory=set)
    #: Watched prefixes: a patricia trie mapping each filter prefix to the
    #: bitmask of match modes requested for it.
    prefix_filters: PrefixTrie = field(default_factory=PrefixTrie)
    peer_asns: Set[int] = field(default_factory=set)
    origin_asns: Set[int] = field(default_factory=set)
    #: Regular expressions matched against the space-separated AS path string.
    aspath_patterns: List[re.Pattern] = field(default_factory=list)
    communities: Set[Community] = field(default_factory=set)
    interval_start: Optional[int] = None
    interval_end: Optional[int] = None  # None = live
    #: Union of the mode bits present in ``prefix_filters`` (skips the
    #: subtree walk when no less/any filters are configured).
    prefix_mode_mask: int = 0

    # -- construction -----------------------------------------------------------

    def add(self, name: str, value: str) -> "FilterSet":
        """Add one filter by name (the PyBGPStream ``add_filter`` idiom)."""
        if name not in _FILTER_NAMES:
            raise ValueError(f"unknown filter {name!r}; expected one of {sorted(_FILTER_NAMES)}")
        if name == "project":
            self.projects.add(value)
        elif name == "collector":
            self.collectors.add(value)
        elif name == "record-type":
            normalised = {"rib": "ribs", "update": "updates"}.get(value, value)
            if normalised not in ("ribs", "updates"):
                raise ValueError(f"unknown record type {value!r}")
            self.record_types.add(normalised)
        elif name == "elem-type":
            mapping = {
                "rib": ElemType.RIB,
                "announcement": ElemType.ANNOUNCEMENT,
                "announcements": ElemType.ANNOUNCEMENT,
                "withdrawal": ElemType.WITHDRAWAL,
                "withdrawals": ElemType.WITHDRAWAL,
                "state": ElemType.STATE,
            }
            if value not in mapping:
                raise ValueError(f"unknown elem type {value!r}")
            self.elem_types.add(mapping[value])
        elif name in _PREFIX_MODES:
            self._add_prefix(Prefix.from_string(value), _PREFIX_MODES[name])
        elif name == "peer-asn":
            self.peer_asns.add(int(value))
        elif name == "origin-asn":
            self.origin_asns.add(int(value))
        elif name == "aspath":
            self.aspath_patterns.append(re.compile(value))
        elif name == "community":
            self.communities.add(Community.from_string(value))
        return self

    def _add_prefix(self, prefix: Prefix, mode: int) -> None:
        existing = self.prefix_filters.get(prefix, 0)
        self.prefix_filters.insert(prefix, existing | mode)
        self.prefix_mode_mask |= mode

    def remove(self, name: str, value: str) -> "FilterSet":
        """Remove one filter by name — the inverse of :meth:`add`.

        Removing a value that is not present is a no-op, so a gateway
        subscriber can retract a filter without tracking whether the add
        ever happened.
        """
        if name not in _FILTER_NAMES:
            raise ValueError(f"unknown filter {name!r}; expected one of {sorted(_FILTER_NAMES)}")
        if name == "project":
            self.projects.discard(value)
        elif name == "collector":
            self.collectors.discard(value)
        elif name == "record-type":
            normalised = {"rib": "ribs", "update": "updates"}.get(value, value)
            self.record_types.discard(normalised)
        elif name == "elem-type":
            mapping = {
                "rib": ElemType.RIB,
                "announcement": ElemType.ANNOUNCEMENT,
                "announcements": ElemType.ANNOUNCEMENT,
                "withdrawal": ElemType.WITHDRAWAL,
                "withdrawals": ElemType.WITHDRAWAL,
                "state": ElemType.STATE,
            }
            if value in mapping:
                self.elem_types.discard(mapping[value])
        elif name in _PREFIX_MODES:
            self._remove_prefix(Prefix.from_string(value), _PREFIX_MODES[name])
        elif name == "peer-asn":
            self.peer_asns.discard(int(value))
        elif name == "origin-asn":
            self.origin_asns.discard(int(value))
        elif name == "aspath":
            self.aspath_patterns = [p for p in self.aspath_patterns if p.pattern != value]
        elif name == "community":
            self.communities.discard(Community.from_string(value))
        return self

    def _remove_prefix(self, prefix: Prefix, mode: int) -> None:
        existing = self.prefix_filters.get(prefix)
        if existing is None or not existing & mode:
            return
        remaining = existing & ~mode
        if remaining:
            self.prefix_filters.insert(prefix, remaining)
        else:
            self.prefix_filters.remove(prefix)
        # The dropped bit may survive on other watched prefixes: recompute.
        mask = 0
        for _prefix, bits in self.prefix_filters.items():
            mask |= bits
        self.prefix_mode_mask = mask

    def copy(self) -> "FilterSet":
        """An independent copy (mutating either set leaves the other alone).

        Compiled AS-path patterns and the stored prefix mode masks are
        immutable, so they are shared; the containers are fresh.
        """
        clone = FilterSet(
            projects=set(self.projects),
            collectors=set(self.collectors),
            record_types=set(self.record_types),
            elem_types=set(self.elem_types),
            peer_asns=set(self.peer_asns),
            origin_asns=set(self.origin_asns),
            aspath_patterns=list(self.aspath_patterns),
            communities=set(self.communities),
            interval_start=self.interval_start,
            interval_end=self.interval_end,
            prefix_mode_mask=self.prefix_mode_mask,
        )
        for prefix, mode in self.prefix_filters.items():
            clone.prefix_filters.insert(prefix, mode)
        return clone

    def add_interval(self, start: int, end: Optional[int]) -> "FilterSet":
        """Set the time interval; ``end=None`` (or -1) selects live mode."""
        if end is not None and end < 0:
            end = None
        if end is not None and end < start:
            raise ValueError("interval end precedes start")
        self.interval_start = start
        self.interval_end = end
        return self

    @property
    def live(self) -> bool:
        return self.interval_start is not None and self.interval_end is None

    # -- matching -------------------------------------------------------------------

    def match_record(self, record: BGPStreamRecord) -> bool:
        """Record-level (meta-data) matching."""
        if self.projects and record.project not in self.projects:
            return False
        if self.collectors and record.collector not in self.collectors:
            return False
        if self.record_types and record.dump_type not in self.record_types:
            return False
        if self.interval_start is not None and record.is_valid:
            if record.time < self.interval_start:
                return False
            if self.interval_end is not None and record.time > self.interval_end:
                return False
        return True

    def match_prefix(self, prefix: Prefix) -> bool:
        """True if ``prefix`` satisfies any configured prefix filter."""
        # One walk towards the root answers exact / more-specific / any:
        # every filter prefix containing ``prefix`` is on that path.
        for filter_prefix, mode in self.prefix_filters.covering(prefix):
            if mode & (MATCH_MORE | MATCH_ANY):
                return True
            if filter_prefix.length == prefix.length and mode & (MATCH_EXACT | MATCH_LESS):
                return True
        # Less-specific / any filters contained in ``prefix`` need the
        # subtree walk; skip it when no such filter exists.
        if self.prefix_mode_mask & (MATCH_LESS | MATCH_ANY):
            for _filter_prefix, mode in self.prefix_filters.covered(prefix):
                if mode & (MATCH_LESS | MATCH_ANY):
                    return True
        return False

    def match_elem(self, elem: BGPElem) -> bool:
        """Elem-level (content) matching.

        Terms are ordered so the *gate fields* a lazy elem carries eagerly
        (type, peer ASN, prefix) are checked before any term that reads a
        path attribute: ``origin_asn`` / ``aspath`` / ``community`` filters
        force a :class:`~repro.core.record.LazyBGPElem` to materialise its
        deferred attributes, and doing that for an elem the prefix trie is
        about to reject would defeat the lazy decode tier.
        """
        if self.elem_types and elem.elem_type not in self.elem_types:
            return False
        if self.peer_asns and elem.peer_asn not in self.peer_asns:
            return False
        # The prefix gate applies only when prefix filters are configured:
        # an elem without a prefix (e.g. a state message) must still match
        # a filter set made of non-prefix terms.
        if self.prefix_filters:
            if elem.prefix is None:
                return False
            if not self.match_prefix(elem.prefix):
                return False
        # Attribute-reading terms below this line only.
        if self.origin_asns:
            if elem.origin_asn is None or elem.origin_asn not in self.origin_asns:
                return False
        if self.aspath_patterns:
            if elem.as_path is None:
                return False
            path_text = str(elem.as_path)
            if not any(p.search(path_text) for p in self.aspath_patterns):
                return False
        if self.communities:
            if elem.communities is None or not elem.communities.matches_any(self.communities):
                return False
        return True

    def match(self, record: BGPStreamRecord, elem: BGPElem) -> bool:
        return self.match_record(record) and self.match_elem(elem)
