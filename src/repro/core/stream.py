"""The BGPStream API (§3.3.1).

A program using the stream consists of a configuration phase (meta-data
filters plus a time interval) and a reading phase (iteratively requesting
records).  Setting the interval end to ``None`` (or ``-1``) turns the same
code into a live monitoring process.

Three idioms are supported:

* the C-API style of the paper's listings::

      stream = BGPStream(data_interface=interface)
      stream.add_filter("record-type", "ribs")
      stream.add_interval_filter(t0, t1)
      stream.start()
      while (rec := stream.get_next_record()) is not None:
          elem = rec.get_next_elem()
          while elem:
              ...
              elem = rec.get_next_elem()

* plain Python iteration::

      for rec in stream.records():
          for elem in rec.elems():
              ...

  (or ``stream.elems()`` to iterate matching elems directly).

* batched iteration, which delivers timestamp-ordered *lists* of records and
  amortises per-record overhead — the natural consumer of the parallel
  engine (:mod:`repro.core.parallel`)::

      from repro.core.parallel import ParallelConfig

      stream = BGPStream(data_interface=interface, parallel=ParallelConfig())
      stream.add_interval_filter(t0, t1)
      for batch in stream.records_batched(batch_size=1024):
          for rec in batch:
              ...

  ``records_batched()`` works on any stream (without ``parallel`` it batches
  the sequential sorted merge); with a :class:`ParallelConfig` the dump
  files of each overlapping subset are parsed concurrently in a worker
  pool.  Both modes emit exactly the same record sequence as the
  sequential ``records()`` path, which remains the byte-identical
  reference.

All three idioms also run in **live mode**: with a live data interface
(``BGPStream(live={"broker": message_broker})``, or
``data_interface="kafka"``) the records come off a BMP-over-Kafka feed
(:mod:`repro.bmp`) instead of dump files, flow through the same filter and
intern pipeline, and an ``add_interval_filter(t0, until_ts)`` bounds the
live window so bin-oriented consumers terminate deterministically.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple, Union

from repro import _metrics
from repro.broker.broker import Broker
from repro.core.elem import BGPElem
from repro.core.filters import FilterSet
from repro.core.intern import InternPool, default_pool
from repro.core.interfaces import (
    BrokerDataInterface,
    DataInterface,
    LiveDataInterface,
    make_data_interface,
)
from repro.core.record import BGPStreamRecord, RecordStatus
from repro.core.sorter import DEFAULT_BATCH_SIZE, SortedRecordMerger, batch_records

if TYPE_CHECKING:
    from repro.core.parallel import ParallelConfig


class BGPStream:
    """A configurable, sorted stream of BGP measurement data.

    ``interning`` selects the flyweight pool elems are canonicalised
    through (:mod:`repro.core.intern`):

    * ``True`` (default) — share the process-wide pool (the one parse-time
      interning fills, so elem extraction mostly takes identity fast paths);
    * an :class:`~repro.core.intern.InternPool` — a private, isolated pool
      for this stream: elem-visible values are canonicalised through it and
      decode-time interning into the shared default pool is switched off
      for this stream's reads (isolation would otherwise leak);
    * ``False`` / ``None`` — no interning for this stream: neither the elem
      pipeline nor the parse-time dedup of the dump files it reads (the
      ``intern=False`` knob is threaded through the sequential readers and,
      unless the :class:`~repro.core.parallel.ParallelConfig` pins its own
      ``intern``, the parallel workers).  This is what ``bgpreader
      --no-intern`` configures.  Other streams and direct
      :func:`repro.mrt.parser.read_dump` calls follow the process-wide
      switch (:func:`repro.core.intern.set_parse_interning`), which this
      knob never touches.

    ``eager`` selects the attribute-decode tier for this stream's readers
    (:mod:`repro.bgp.attributes`):

    * ``None`` (default) — follow the process-wide lazy-decode switch
      (lazy unless :func:`repro.bgp.attributes.set_lazy_decode` turned it
      off): attribute blocks are recorded as zero-copy slices and decoded
      on first read, so filtered-out elems never pay for values nobody
      looks at;
    * ``True`` — force full decode at parse time (``bgpreader
      --eager-decode``); every elem field is materialised before delivery;
    * ``False`` — force lazy decode regardless of the global switch.

    Both tiers produce identical elem values, raise identical errors on
    corrupt attributes, and honour the same intern pools.
    """

    def __init__(
        self,
        data_interface: Union[DataInterface, str, None] = None,
        filters: Optional[FilterSet] = None,
        parallel: Union["ParallelConfig", bool, None] = None,
        interning: Union[bool, InternPool, None] = True,
        live: Union[LiveDataInterface, Dict, None] = None,
        interface_options: Optional[Dict] = None,
        eager: Optional[bool] = None,
        broker: Optional[Broker] = None,
        segment_cache=None,
    ) -> None:
        """``data_interface`` accepts an instance or a registry name
        (``"broker"``, ``"csvfile"``, ``"sqlite"``, ``"singlefile"``,
        ``"kafka"``); a name is resolved through
        :func:`repro.core.interfaces.make_data_interface` with
        ``interface_options``.  ``live`` is a shortcut for the BMP live
        mode: pass a ready :class:`LiveDataInterface` or a dict of its
        options (broker, topics, poll bounds, ...) and the stream reads the
        near-realtime feed instead of dump files.

        ``broker`` is the Broker shortcut: ``BGPStream(broker=broker)``
        wraps it in a :class:`~repro.core.interfaces.BrokerDataInterface`
        (``interface_options`` become its options — ``page_size``,
        ``cursor``, poll bounds) **and defaults the stream to the parallel
        batched engine**, so a multi-collector window replays at
        parallel-engine speed out of the box.  Pass ``parallel=False`` to
        force the sequential path, or a ready
        :class:`~repro.core.parallel.ParallelConfig` to tune it.

        ``segment_cache`` (a :class:`repro.broker.segments.SegmentCache`)
        makes every reader this stream opens — sequential or parallel —
        replay decoded segments of unchanged dump files from disk instead
        of re-decoding MRT, and persist newly decoded files for the next
        run."""
        self.filters = filters or FilterSet()
        if broker is not None:
            if data_interface is not None or live is not None:
                raise ValueError("pass either broker= or data_interface/live, not both")
            data_interface = BrokerDataInterface(broker, **(interface_options or {}))
            interface_options = None
            if parallel is None:
                from repro.core.parallel import ParallelConfig

                parallel = ParallelConfig()
        if parallel is False:
            parallel = None
        elif parallel is True:
            from repro.core.parallel import ParallelConfig

            parallel = ParallelConfig()
        if data_interface is not None and live is not None:
            raise ValueError("pass either data_interface or live, not both")
        if live is not None:
            if interface_options:
                raise ValueError(
                    "interface_options do not apply to live= (pass the "
                    "options inside the live dict instead)"
                )
            if isinstance(live, LiveDataInterface):
                data_interface = live
            else:
                live_options = dict(live)
                if eager is not None:
                    live_options.setdefault("eager", eager)
                data_interface = make_data_interface("kafka", **live_options)
        elif data_interface is not None:
            data_interface = make_data_interface(
                data_interface, **(interface_options or {})
            )
        elif interface_options:
            raise ValueError("interface_options require a data_interface name")
        self._interface = data_interface
        self._parallel = parallel
        self._segment_cache = segment_cache
        self._eager = eager
        self._started = False
        self._record_iter: Optional[Iterator[BGPStreamRecord]] = None
        self._batched_consumer = False
        self.intern_pool = self._resolve_interning(interning)
        #: Counters useful for benchmarks and sanity checks.
        self.records_read = 0
        self.records_filtered = 0

    @staticmethod
    def _resolve_interning(
        interning: Union[bool, InternPool, None],
    ) -> Optional[InternPool]:
        if isinstance(interning, InternPool):
            return interning
        return default_pool() if interning else None

    # -- configuration ------------------------------------------------------------

    def set_data_interface(
        self, interface: Union[DataInterface, str], **options
    ) -> "BGPStream":
        """Set the data interface: an instance, or a registry name plus its
        options (``set_data_interface("sqlite", path="broker.db")``)."""
        if self._started:
            raise RuntimeError("cannot change the data interface after start()")
        self._interface = make_data_interface(interface, **options)
        return self

    @property
    def is_live(self) -> bool:
        """True when the stream reads a live feed rather than dump files."""
        return getattr(self._interface, "yields_records", False)

    def set_parallel(self, config: Optional["ParallelConfig"]) -> "BGPStream":
        """Enable (or disable, with ``None``) the parallel batched engine."""
        if self._started:
            raise RuntimeError("cannot change the parallel config after start()")
        self._parallel = config
        return self

    def set_interning(self, interning: Union[bool, InternPool, None]) -> "BGPStream":
        """Change the elem-pipeline intern pool (before :meth:`start`)."""
        if self._started:
            raise RuntimeError("cannot change interning after start()")
        self.intern_pool = self._resolve_interning(interning)
        return self

    def intern_stats(self) -> Optional[Dict[str, Dict[str, int]]]:
        """Per-kind ``{size, hits, misses, overflow}`` stats of the stream's
        intern pool, or ``None`` when interning is disabled."""
        return self.intern_pool.stats() if self.intern_pool is not None else None

    def add_filter(self, name: str, value: str) -> "BGPStream":
        """Add one named filter (see :mod:`repro.core.filters`).

        Prefix filters accept the four match modes of the BGPStream filter
        language — ``prefix-exact``, ``prefix-more``, ``prefix-less`` and
        ``prefix-any`` — plus ``prefix`` as the historical alias for
        ``prefix-more``; all are answered by one shared patricia trie.
        """
        if self._started:
            raise RuntimeError("cannot add filters after start()")
        self.filters.add(name, value)
        return self

    def add_interval_filter(self, start: int, end: Optional[int]) -> "BGPStream":
        if self._started:
            raise RuntimeError("cannot add filters after start()")
        self.filters.add_interval(start, end)
        return self

    # -- reading ---------------------------------------------------------------------

    def start(self) -> "BGPStream":
        """Freeze the configuration and begin producing the stream."""
        if self._interface is None:
            raise RuntimeError(
                "no data interface configured; pass one to BGPStream() or "
                "call set_data_interface()"
            )
        if self.is_live and self._parallel is not None:
            raise RuntimeError(
                "the parallel engine parses dump files and does not apply to "
                "a live stream; drop parallel= or the live interface"
            )
        if self._started:
            return self
        self._started = True
        return self

    @property
    def _parse_intern(self) -> Optional[bool]:
        """The parse-time knob for this stream's readers.

        Follow the global switch only when the stream shares the process
        pool (decode-time canonicals then are the ones elems reference).  A
        private pool means *isolation*: decode-time interning into the
        shared default pool is forced off too, and the stream's own pool
        dedups the elem-visible values instead.  ``interning=False`` forces
        both layers off.
        """
        if self.intern_pool is None or self.intern_pool is not default_pool():
            return False
        return None

    @property
    def _parse_lazy(self) -> Optional[bool]:
        """The lazy-decode knob for this stream's readers.

        ``None`` (no ``eager=`` given) follows the process-wide switch;
        an explicit ``eager=`` pins the tier for every reader this stream
        opens, including parallel workers that do not pin their own.
        """
        if self._eager is None:
            return None
        return not self._eager

    def _generate_records(self) -> Iterator[BGPStreamRecord]:
        assert self._interface is not None
        if self.is_live:
            yield from self._generate_live_records()
            return
        if self._parallel is not None:
            for batch in self._generate_batches(self._parallel.batch_size):
                yield from batch
            return
        for file_batch in self._interface.batches(self.filters):
            yield from self._filtered(
                iter(
                    SortedRecordMerger(
                        file_batch,
                        intern=self._parse_intern,
                        lazy=self._parse_lazy,
                        segment_cache=self._segment_cache,
                    )
                )
            )

    def _generate_live_records(self) -> Iterator[BGPStreamRecord]:
        """Live mode: the interface already yields ready-made records."""
        assert isinstance(self._interface, LiveDataInterface) or getattr(
            self._interface, "yields_records", False
        )
        for record_batch in self._interface.record_batches(self.filters):
            yield from self._filtered(iter(record_batch))

    def _generate_batches(self, batch_size: int) -> Iterator[List[BGPStreamRecord]]:
        """Filtered, timestamp-ordered record batches (shared by both modes)."""
        assert self._interface is not None
        if self.is_live:
            # Re-batch per poll so a live consumer never waits on a
            # half-full batch while the feed is quiet.
            for record_batch in self._interface.record_batches(self.filters):
                yield from batch_records(self._filtered(iter(record_batch)), batch_size)
            return
        engine = None
        if self._parallel is not None:
            from repro.core.parallel import ParallelStreamEngine

            config = self._parallel
            if config.intern is None and self._parse_intern is not None:
                # The stream opted out of interning and the config does not
                # pin its own choice: the workers inherit the opt-out.
                config = replace(config, intern=self._parse_intern)
            if config.lazy is None and self._parse_lazy is not None:
                # Same inheritance for the stream's decode-tier choice.
                config = replace(config, lazy=self._parse_lazy)
            if config.segment_cache is None and self._segment_cache is not None:
                # The workers inherit the stream's persistent segment cache.
                config = replace(config, segment_cache=self._segment_cache)
            # One engine (and one worker pool) for the whole stream; per
            # meta-data-window pools would pay startup cost on every window.
            engine = ParallelStreamEngine(config)
        try:
            for file_batch in self._interface.batches(self.filters):
                if engine is not None:
                    source = engine.iter_records(file_batch)
                else:
                    source = iter(
                        SortedRecordMerger(
                            file_batch,
                            intern=self._parse_intern,
                            lazy=self._parse_lazy,
                            segment_cache=self._segment_cache,
                        )
                    )
                # Re-batching happens after filtering, and per meta-data
                # window, so live consumers never wait on a half-full batch.
                yield from batch_records(self._filtered(source), batch_size)
        finally:
            if engine is not None:
                engine.close()

    def _filtered(self, records: Iterator[BGPStreamRecord]) -> Iterator[BGPStreamRecord]:
        pool = self.intern_pool
        for record in records:
            self.records_read += 1
            if not self._record_passes(record):
                self.records_filtered += 1
                continue
            record.intern_pool = pool
            yield record

    def _record_passes(self, record: BGPStreamRecord) -> bool:
        # Invalid records are always delivered (the user must be able to see
        # the not-valid status); valid ones go through the meta-data filters.
        if record.status != RecordStatus.VALID:
            return True
        return self.filters.match_record(record)

    def get_next_record(self) -> Optional[BGPStreamRecord]:
        """Return the next record, or ``None`` when the stream has ended."""
        if self._batched_consumer:
            raise RuntimeError(
                "get_next_record()/records() cannot be mixed with records_batched() "
                "on the same stream"
            )
        if not self._started:
            self.start()
        if self._record_iter is None:
            self._record_iter = self._generate_records()
        return next(self._record_iter, None)

    def records(self) -> Iterator[BGPStreamRecord]:
        """Iterate all (filter-matching) records of the stream."""
        while True:
            record = self.get_next_record()
            if record is None:
                return
            yield record

    def records_batched(
        self, batch_size: Optional[int] = None
    ) -> Iterator[List[BGPStreamRecord]]:
        """Iterate the stream as timestamp-ordered record batches.

        Flattening the batches reproduces :meth:`records` record for record
        (same order, same statuses); batch boundaries carry no meaning.  With
        a :class:`~repro.core.parallel.ParallelConfig` configured, the dump
        files behind each batch are parsed concurrently.  Use either this or
        the record-at-a-time API on a given stream, not both.
        """
        if not self._started:
            self.start()
        if self._record_iter is not None or self._batched_consumer:
            raise RuntimeError(
                "records_batched() cannot be mixed with get_next_record()/records() "
                "or called twice on the same stream"
            )
        if batch_size is None:
            batch_size = (
                self._parallel.batch_size if self._parallel is not None else DEFAULT_BATCH_SIZE
            )
        elif batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self._batched_consumer = True
        return self._generate_batches(batch_size)

    def elems(self) -> Iterator[Tuple[BGPStreamRecord, BGPElem]]:
        """Iterate ``(record, elem)`` pairs matching the elem-level filters."""
        for record in self.records():
            if _metrics.enabled:
                # One ``filter`` span per record: extraction + match_elem
                # over the record's elems (the consumer's time is outside).
                with _metrics.trace_span("filter"):
                    matched = [
                        elem for elem in record.elems() if self.filters.match_elem(elem)
                    ]
                for elem in matched:
                    yield record, elem
            else:
                for elem in record.elems():
                    if self.filters.match_elem(elem):
                        yield record, elem

    def __iter__(self) -> Iterator[BGPStreamRecord]:
        return self.records()
