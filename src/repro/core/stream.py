"""The BGPStream API (§3.3.1).

A program using the stream consists of a configuration phase (meta-data
filters plus a time interval) and a reading phase (iteratively requesting
records).  Setting the interval end to ``None`` (or ``-1``) turns the same
code into a live monitoring process.

Two idioms are supported:

* the C-API style of the paper's listings::

      stream = BGPStream(data_interface=interface)
      stream.add_filter("record-type", "ribs")
      stream.add_interval_filter(t0, t1)
      stream.start()
      while (rec := stream.get_next_record()) is not None:
          elem = rec.get_next_elem()
          while elem:
              ...
              elem = rec.get_next_elem()

* plain Python iteration::

      for rec in stream.records():
          for elem in rec.elems():
              ...

  (or ``stream.elems()`` to iterate matching elems directly).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.core.elem import BGPElem
from repro.core.filters import FilterSet
from repro.core.interfaces import BrokerDataInterface, DataInterface
from repro.core.record import BGPStreamRecord, RecordStatus
from repro.core.sorter import SortedRecordMerger


class BGPStream:
    """A configurable, sorted stream of BGP measurement data."""

    def __init__(
        self,
        data_interface: Optional[DataInterface] = None,
        filters: Optional[FilterSet] = None,
    ) -> None:
        self.filters = filters or FilterSet()
        self._interface = data_interface
        self._started = False
        self._record_iter: Optional[Iterator[BGPStreamRecord]] = None
        #: Counters useful for benchmarks and sanity checks.
        self.records_read = 0
        self.records_filtered = 0

    # -- configuration ------------------------------------------------------------

    def set_data_interface(self, interface: DataInterface) -> "BGPStream":
        if self._started:
            raise RuntimeError("cannot change the data interface after start()")
        self._interface = interface
        return self

    def add_filter(self, name: str, value: str) -> "BGPStream":
        if self._started:
            raise RuntimeError("cannot add filters after start()")
        self.filters.add(name, value)
        return self

    def add_interval_filter(self, start: int, end: Optional[int]) -> "BGPStream":
        if self._started:
            raise RuntimeError("cannot add filters after start()")
        self.filters.add_interval(start, end)
        return self

    # -- reading ---------------------------------------------------------------------

    def start(self) -> "BGPStream":
        """Freeze the configuration and begin producing the stream."""
        if self._interface is None:
            raise RuntimeError(
                "no data interface configured; pass one to BGPStream() or "
                "call set_data_interface()"
            )
        if self._started:
            return self
        self._started = True
        self._record_iter = self._generate_records()
        return self

    def _generate_records(self) -> Iterator[BGPStreamRecord]:
        assert self._interface is not None
        for batch in self._interface.batches(self.filters):
            merger = SortedRecordMerger(batch)
            for record in merger:
                self.records_read += 1
                if not self._record_passes(record):
                    self.records_filtered += 1
                    continue
                yield record

    def _record_passes(self, record: BGPStreamRecord) -> bool:
        # Invalid records are always delivered (the user must be able to see
        # the not-valid status); valid ones go through the meta-data filters.
        if record.status != RecordStatus.VALID:
            return True
        return self.filters.match_record(record)

    def get_next_record(self) -> Optional[BGPStreamRecord]:
        """Return the next record, or ``None`` when the stream has ended."""
        if not self._started:
            self.start()
        assert self._record_iter is not None
        return next(self._record_iter, None)

    def records(self) -> Iterator[BGPStreamRecord]:
        """Iterate all (filter-matching) records of the stream."""
        while True:
            record = self.get_next_record()
            if record is None:
                return
            yield record

    def elems(self) -> Iterator[Tuple[BGPStreamRecord, BGPElem]]:
        """Iterate ``(record, elem)`` pairs matching the elem-level filters."""
        for record in self.records():
            for elem in record.elems():
                if self.filters.match_elem(elem):
                    yield record, elem

    def __iter__(self) -> Iterator[BGPStreamRecord]:
        return self.records()
