"""BGPStream records: annotated, de-serialised MRT records (§3.3.3).

A :class:`BGPStreamRecord` wraps one MRT record together with the
annotations libBGPStream adds: the originating project and collector, the
dump type and nominal dump time, a validity status (the not-valid status is
how corrupted reads and unopenable files are signalled to the user), and a
position marker that flags the records beginning and ending a dump file so
users can collate the records of a single RIB dump.

``elems()`` decomposes the record into :class:`~repro.core.elem.BGPElem`
objects; RIB records need the dump's PEER_INDEX_TABLE to resolve peer
indexes, which the dump-file reader passes in as context.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, Optional, Tuple

from repro import _profiling as profiling
from repro.bgp.attributes import LazyPathAttributes
from repro.core.elem import BGPElem, ElemType
from repro.core.intern import InternPool
from repro.mrt.records import (
    BGP4MPMessage,
    BGP4MPStateChange,
    MRTRecord,
    PeerIndexTable,
    RIBPrefixRecord,
)


def _canonical_attrs(attrs, pool: InternPool):
    """Canonicalise a shared attribute set through ``pool``, with write-back.

    One attribute set fans out into many elems, so the canonical path and
    community set are written back into it: later extractions of the same
    record (or of other records sharing the cached attrs) then take the
    identity fast path in the pool.  Returns ``(as_path, communities)``.

    The ``_canonical_for`` marker records which pool the set was last
    written back through, so repeated ``elems()`` calls on the same (or a
    cache-shared) record skip the write-back pass entirely.
    """
    if attrs._canonical_for is pool:
        return attrs.as_path, attrs.communities
    as_path = attrs.as_path
    canonical = pool.path(as_path)
    if canonical is not as_path:
        attrs.as_path = as_path = canonical
    communities = attrs.communities
    canonical = pool.communities(communities)
    if canonical is not communities:
        attrs.communities = communities = canonical
    attrs._canonical_for = pool
    return as_path, communities


_get_elem_next_hop = BGPElem.__dict__["next_hop"].__get__
_set_elem_next_hop = BGPElem.__dict__["next_hop"].__set__
_get_elem_as_path = BGPElem.__dict__["as_path"].__get__
_set_elem_as_path = BGPElem.__dict__["as_path"].__set__
_get_elem_communities = BGPElem.__dict__["communities"].__get__
_set_elem_communities = BGPElem.__dict__["communities"].__set__


class LazyBGPElem(BGPElem):
    """A :class:`BGPElem` whose attribute-derived fields fill on first read.

    The cheap gate fields the filter layer probes first (type, time, peer,
    prefix) are set eagerly; ``next_hop`` / ``as_path`` / ``communities``
    resolve from the (lazy) attribute set only when actually read — so an
    elem the filters reject never parses its path attributes, and interning
    / canonicalisation only runs for survivors.  Pickling produces a plain
    :class:`BGPElem`.
    """

    __slots__ = ("_attrs", "_version", "_pool", "_ready")

    def __init__(
        self,
        elem_type,
        time,
        peer_address,
        peer_asn,
        prefix,
        attrs,
        version,
        pool,
        project,
        collector,
    ) -> None:
        self.elem_type = elem_type
        self.time = time
        self.peer_address = peer_address
        self.peer_asn = peer_asn
        self.prefix = prefix
        _set_elem_next_hop(self, None)
        _set_elem_as_path(self, None)
        _set_elem_communities(self, None)
        self.old_state = None
        self.new_state = None
        self.project = project
        self.collector = collector
        self._attrs = attrs
        self._version = version
        self._pool = pool
        self._ready = False

    def _fill(self) -> None:
        attrs = self._attrs
        pool = self._pool
        next_hop = attrs.effective_next_hop(self._version)
        if pool is not None:
            as_path, communities = _canonical_attrs(attrs, pool)
            if next_hop is not None:
                next_hop = pool.string(next_hop)
        else:
            as_path = attrs.as_path
            communities = attrs.communities
        _set_elem_next_hop(self, next_hop)
        _set_elem_as_path(self, as_path)
        _set_elem_communities(self, communities)
        # Flag readiness last: a racing reader that saw False just repeats
        # the (idempotent) fill instead of observing half-set fields.
        self._ready = True
        if profiling.counters is not None:
            profiling.counters.elems_materialised += 1

    def __reduce__(self):
        return (
            BGPElem,
            (
                self.elem_type,
                self.time,
                self.peer_address,
                self.peer_asn,
                self.prefix,
                self.next_hop,
                self.as_path,
                self.communities,
                self.old_state,
                self.new_state,
                self.project,
                self.collector,
            ),
        )


def _lazy_elem_field(name: str) -> property:
    slot = BGPElem.__dict__[name]
    slot_get = slot.__get__
    slot_set = slot.__set__

    def fget(self):
        if not self._ready:
            self._fill()
        return slot_get(self)

    def fset(self, value):
        slot_set(self, value)

    return property(fget, fset)


for _name in ("next_hop", "as_path", "communities"):
    setattr(LazyBGPElem, _name, _lazy_elem_field(_name))
del _name


class RecordStatus(Enum):
    """Validity of a record (the paper's ``status`` field)."""

    VALID = "valid"
    CORRUPTED_RECORD = "corrupted-record"
    CORRUPTED_SOURCE = "corrupted-source"  # the dump file could not be opened
    EMPTY_SOURCE = "empty-source"

    def __str__(self) -> str:
        return self.value


class DumpPosition(Enum):
    """Where in its dump file a record sits."""

    START = "start"
    MIDDLE = "middle"
    END = "end"

    def __str__(self) -> str:
        return self.value


@dataclass(slots=True)
class BGPStreamRecord:
    """One annotated record of the stream.

    Slotted like every other hot object of the pipeline.  ``intern_pool``
    is transport, not identity: the stream attaches its flyweight pool here
    so :meth:`elems` can canonicalise elem fields (and it is excluded from
    equality/repr and dropped on pickling — worker processes rebuild their
    own pools).
    """

    project: str
    collector: str
    dump_type: str  # "ribs" or "updates"
    dump_time: int  # nominal start time of the originating dump
    status: RecordStatus = RecordStatus.VALID
    dump_position: DumpPosition = DumpPosition.MIDDLE
    mrt: Optional[MRTRecord] = None
    #: The PEER_INDEX_TABLE of the originating RIB dump (context for elems).
    peer_table: Optional[PeerIndexTable] = None
    #: The monitored router the record came from, for records delivered over
    #: a live BMP feed (empty for archive replay; see :mod:`repro.bmp`).
    router: str = ""
    #: The flyweight pool elems are canonicalised through (set by the stream).
    intern_pool: Optional[InternPool] = field(default=None, repr=False, compare=False)
    _elem_iter: Optional[Iterator[BGPElem]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __getstate__(self) -> Tuple:
        # The elem cursor (a generator) and the pool do not travel across
        # process boundaries; everything else does.
        return (
            self.project,
            self.collector,
            self.dump_type,
            self.dump_time,
            self.status,
            self.dump_position,
            self.mrt,
            self.peer_table,
            self.router,
        )

    def __setstate__(self, state: Tuple) -> None:
        (
            self.project,
            self.collector,
            self.dump_type,
            self.dump_time,
            self.status,
            self.dump_position,
            self.mrt,
            self.peer_table,
            self.router,
        ) = state
        self.intern_pool = None
        self._elem_iter = None

    @property
    def time(self) -> int:
        """The record timestamp (falls back to the dump time when invalid)."""
        if self.mrt is not None and self.status == RecordStatus.VALID:
            return self.mrt.timestamp
        return self.dump_time

    @property
    def is_valid(self) -> bool:
        return self.status == RecordStatus.VALID and self.mrt is not None and self.mrt.is_valid

    # -- elem extraction --------------------------------------------------------

    def elems(self) -> Iterator[BGPElem]:
        """Decompose this record into its elems (empty for invalid records)."""
        if not self.is_valid:
            return
        body = self.mrt.body
        if isinstance(body, PeerIndexTable):
            return  # carries no routing information itself
        if isinstance(body, RIBPrefixRecord):
            yield from self._rib_elems(body)
        elif isinstance(body, BGP4MPMessage):
            yield from self._message_elems(body)
        elif isinstance(body, BGP4MPStateChange):
            yield self._state_elem(body)

    def get_next_elem(self) -> Optional[BGPElem]:
        """C-API-style cursor over elems (used by the PyBGPStream facade)."""
        if self._elem_iter is None:
            self._elem_iter = self.elems()
        try:
            return next(self._elem_iter)
        except StopIteration:
            self._elem_iter = None
            return None

    def _rib_elems(self, body: RIBPrefixRecord) -> Iterator[BGPElem]:
        pool = self.intern_pool
        timestamp = self.mrt.timestamp
        prefix = body.prefix
        if pool is not None:
            canonical = pool.prefix(prefix)
            if canonical is not prefix:
                body.prefix = prefix = canonical
        version = prefix.version
        counters = profiling.counters
        for entry in body.entries:
            peer_address = ""
            peer_asn = 0
            if self.peer_table is not None and entry.peer_index < len(self.peer_table.peers):
                peer = self.peer_table.peers[entry.peer_index]
                peer_address = peer.address
                peer_asn = peer.asn
            attrs = entry.attributes
            if type(attrs) is LazyPathAttributes and attrs._deferred:
                # Attribute values still deferred: hand out a lazy elem so
                # the filter gate can reject it without parsing them.
                if pool is not None:
                    peer_address = pool.string(peer_address)
                if counters is not None:
                    counters.lazy_elems += 1
                yield LazyBGPElem(
                    ElemType.RIB,
                    timestamp,
                    peer_address,
                    peer_asn,
                    prefix,
                    attrs,
                    version,
                    pool,
                    self.project,
                    self.collector,
                )
                continue
            as_path = attrs.as_path
            communities = attrs.communities
            next_hop = attrs.effective_next_hop(version)
            if pool is not None:
                peer_address = pool.string(peer_address)
                as_path, communities = _canonical_attrs(attrs, pool)
                if next_hop is not None:
                    next_hop = pool.string(next_hop)
            if counters is not None:
                counters.eager_elems += 1
            yield BGPElem(
                elem_type=ElemType.RIB,
                time=timestamp,
                peer_address=peer_address,
                peer_asn=peer_asn,
                prefix=prefix,
                next_hop=next_hop,
                as_path=as_path,
                communities=communities,
                project=self.project,
                collector=self.collector,
            )

    def _message_elems(self, body: BGP4MPMessage) -> Iterator[BGPElem]:
        pool = self.intern_pool
        timestamp = self.mrt.timestamp
        update = body.update
        attrs = update.attributes
        peer_address = body.peer_address
        if pool is not None:
            peer_address = pool.string(peer_address)
        lazy = type(attrs) is LazyPathAttributes and bool(attrs._deferred)
        if not lazy:
            as_path = attrs.as_path
            communities = attrs.communities
            if pool is not None:
                as_path, communities = _canonical_attrs(attrs, pool)
        for prefix in update.all_withdrawn:
            if pool is not None:
                prefix = pool.prefix(prefix)
            yield BGPElem(
                elem_type=ElemType.WITHDRAWAL,
                time=timestamp,
                peer_address=peer_address,
                peer_asn=body.peer_asn,
                prefix=prefix,
                project=self.project,
                collector=self.collector,
            )
        counters = profiling.counters
        for prefix in update.all_announced:
            if pool is not None:
                prefix = pool.prefix(prefix)
            if lazy:
                if counters is not None:
                    counters.lazy_elems += 1
                yield LazyBGPElem(
                    ElemType.ANNOUNCEMENT,
                    timestamp,
                    peer_address,
                    body.peer_asn,
                    prefix,
                    attrs,
                    prefix.version,
                    pool,
                    self.project,
                    self.collector,
                )
                continue
            next_hop = attrs.effective_next_hop(prefix.version)
            if pool is not None and next_hop is not None:
                next_hop = pool.string(next_hop)
            if counters is not None:
                counters.eager_elems += 1
            yield BGPElem(
                elem_type=ElemType.ANNOUNCEMENT,
                time=timestamp,
                peer_address=peer_address,
                peer_asn=body.peer_asn,
                prefix=prefix,
                next_hop=next_hop,
                as_path=as_path,
                communities=communities,
                project=self.project,
                collector=self.collector,
            )

    def _state_elem(self, body: BGP4MPStateChange) -> BGPElem:
        pool = self.intern_pool
        peer_address = body.peer_address
        if pool is not None:
            peer_address = pool.string(peer_address)
        return BGPElem(
            elem_type=ElemType.STATE,
            time=self.mrt.timestamp,
            peer_address=peer_address,
            peer_asn=body.peer_asn,
            old_state=body.old_state,
            new_state=body.new_state,
            project=self.project,
            collector=self.collector,
        )

    # -- rendering ----------------------------------------------------------------

    def to_ascii(self) -> str:
        """One pipe-separated record header line (BGPReader ``-r`` style)."""
        return "|".join(
            [
                self.dump_type,
                str(self.dump_time),
                self.project,
                self.collector,
                str(self.status),
                str(self.dump_position),
                str(self.time),
            ]
        )
