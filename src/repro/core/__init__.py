"""libBGPStream: the core of the framework (§3.3).

Provides transparent access to concurrent dumps from multiple collectors of
different projects (both RIB and Updates), live data processing, data
extraction / annotation / error checking, and a time-sorted stream of BGP
measurement data behind a small API:

* :class:`~repro.core.stream.BGPStream` — configure filters, then iterate
  records (each carrying the originating project/collector/dump metadata).
* :class:`~repro.core.record.BGPStreamRecord` /
  :class:`~repro.core.elem.BGPElem` — the two-level data model of Table 1.
* :class:`~repro.core.filters.FilterSet` — record- and elem-level filters.
* data interfaces (:mod:`repro.core.interfaces`) — Broker, single-file, CSV
  and SQLite back-ends.
* :mod:`repro.core.reader` — the ``bgpreader`` command-line tool.
"""

from repro.core.intern import InternPool, default_pool, parse_interning, set_parse_interning
from repro.core.elem import BGPElem, ElemType
from repro.core.record import BGPStreamRecord, DumpPosition, RecordStatus
from repro.core.filters import FilterSet
from repro.core.interfaces import (
    BrokerDataInterface,
    CSVFileDataInterface,
    DataInterface,
    DumpFileSpec,
    SingleFileDataInterface,
    SQLiteDataInterface,
)
from repro.core.parallel import ParallelConfig, ParallelStreamEngine
from repro.core.sorter import DumpFileReader, SortedRecordMerger
from repro.core.stream import BGPStream

__all__ = [
    "InternPool",
    "default_pool",
    "parse_interning",
    "set_parse_interning",
    "BGPElem",
    "ElemType",
    "BGPStreamRecord",
    "DumpPosition",
    "RecordStatus",
    "FilterSet",
    "DataInterface",
    "DumpFileSpec",
    "BrokerDataInterface",
    "SingleFileDataInterface",
    "CSVFileDataInterface",
    "SQLiteDataInterface",
    "DumpFileReader",
    "SortedRecordMerger",
    "ParallelConfig",
    "ParallelStreamEngine",
    "BGPStream",
]
