"""Parallel, batched stream engine.

The paper dimensions libBGPStream for many collectors' worth of overlapping
dump files (§3.3.3–§3.3.4): the expensive part of producing a sorted stream
is *parsing* the dumps, not merging them.  The sequential sorter interleaves
the two — every heap pop resumes a parser generator.  This engine decouples
them:

1. each sorter subset's files are parsed **concurrently** in a
   :mod:`concurrent.futures` worker pool (processes for the CPU-bound MRT
   decode when multiple cores are available, threads as a fallback);
2. the pre-parsed per-file record lists are multi-way merged with the same
   :func:`~repro.core.sorter.merge_record_iterators` the sequential path
   uses — so both paths emit **identical record sequences**; and
3. records are delivered in timestamp-ordered **batches** (lists), which
   amortises per-record Python overhead across every downstream consumer.

Subsets are prefetched: while one subset's records are being delivered, the
next subsets' files are already parsing in the pool.

The engine degrades gracefully: a worker pool that cannot be created or that
breaks mid-run (sandboxes without ``fork``, unpicklable records, dead
workers) falls back to in-process parsing, never losing or reordering
records.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.core.interfaces import DumpFileSpec
from repro.core.record import BGPStreamRecord
from repro.core.sorter import (
    DEFAULT_BATCH_SIZE,
    DumpFileReader,
    SortedRecordMerger,
    batch_records,
    merge_record_iterators,
)

__all__ = [
    "ParallelConfig",
    "ParallelStreamEngine",
    "read_dump_file",
    "DEFAULT_BATCH_SIZE",
]


def read_dump_file(
    spec: DumpFileSpec,
    cache_records: bool = True,
    intern: Optional[bool] = None,
    lazy: Optional[bool] = None,
    segment_cache=None,
) -> List[BGPStreamRecord]:
    """Parse one dump file into a record list (the worker-pool task).

    By default workers ask the parser to cache the decoded records: the
    engine materialises whole files anyway, so an unchanged file re-read by
    a later stream (overlapping windows, repeated analyses, benchmark
    rounds) costs a merge instead of a decode.  Note process-pool workers
    populate the cache in *their* process; the re-read win applies to
    thread/serial executors and to any in-process read that follows.

    ``intern`` forwards the parse-time flyweight-interning knob
    (:mod:`repro.core.intern`).  Each process-pool worker interns into its
    own process-wide pool (pools are rebuilt per worker); pickling the
    records back preserves the object sharing *within* each file's list, and
    the consumer-side elem pipeline re-canonicalises across files.

    ``lazy`` forwards the lazy-decode knob: lazy records returned from
    *thread* workers carry zero-copy attribute views into the dump buffer;
    process-pool workers materialise on pickle, so the deferral win there is
    bounded to the worker side.

    ``segment_cache`` is an optional persistent decoded-segment cache
    (:class:`repro.broker.segments.SegmentCache`); it pickles by
    configuration, so process-pool workers reopen the same on-disk cache
    and a hit skips the MRT decode entirely.
    """
    return list(
        DumpFileReader(
            spec,
            cache_records=cache_records,
            intern=intern,
            lazy=lazy,
            segment_cache=segment_cache,
        )
    )


@dataclass(frozen=True)
class ParallelConfig:
    """Tuning knobs for the parallel batched engine.

    ``executor`` selects the worker pool:

    * ``"auto"`` (default) — processes when the machine has more than one
      CPU, threads otherwise (threads still overlap file I/O and avoid the
      fork/pickle overhead that a single core cannot amortise);
    * ``"process"`` / ``"thread"`` — force one kind;
    * ``"serial"`` — no pool at all: files are parsed in-process, but the
      stream is still delivered through the batched merge.
    """

    max_workers: Optional[int] = None
    executor: str = "auto"
    batch_size: int = DEFAULT_BATCH_SIZE
    #: How many subsets ahead of the one being delivered to keep parsing.
    prefetch_subsets: int = 2
    #: Keep decoded records in the parser's per-file cache so unchanged
    #: files re-read later skip decoding.  The cache is bounded by record
    #: count, not bytes — disable for streams over very large RIB dumps
    #: where retaining decoded records is unwanted.
    cache_records: bool = True
    #: Parse-time flyweight interning in the workers (``None`` follows each
    #: worker process's global switch; ``bgpreader --no-intern`` forces
    #: ``False`` so process-pool workers skip dedup too).
    intern: Optional[bool] = None
    #: Lazy attribute decoding in the workers (``None`` follows each worker
    #: process's global switch; ``bgpreader --eager-decode`` forces
    #: ``False``).  Process-pool workers materialise lazy records when
    #: pickling them back, so the end-to-end deferral win applies to
    #: thread/serial executors.
    lazy: Optional[bool] = None
    #: Optional persistent decoded-segment cache
    #: (:class:`repro.broker.segments.SegmentCache`).  Unlike
    #: ``cache_records`` this survives the process: warm replays of a window
    #: unpickle decoded segments instead of re-decoding MRT, in workers and
    #: fallback paths alike.
    segment_cache: Optional[object] = None

    def __post_init__(self) -> None:
        if self.executor not in ("auto", "process", "thread", "serial"):
            raise ValueError(f"unknown executor kind: {self.executor!r}")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.prefetch_subsets < 0:
            raise ValueError("prefetch_subsets must be >= 0")

    def resolved_workers(self) -> int:
        if self.max_workers is not None:
            return max(1, self.max_workers)
        return max(1, os.cpu_count() or 1)

    def resolved_executor(self) -> str:
        if self.executor != "auto":
            return self.executor
        return "process" if (os.cpu_count() or 1) > 1 else "thread"


class ParallelStreamEngine:
    """Produce the sorted stream of a dump-file set in parallel batches.

    The worker pool is created lazily on first use and reused across
    :meth:`iter_batches` calls (a stream pulls many meta-data windows
    through one engine; paying process startup per window would erase the
    win).  Call :meth:`close` — or use the engine as a context manager —
    to release the pool; a closed engine recreates it on next use.
    """

    def __init__(self, config: Optional[ParallelConfig] = None) -> None:
        self.config = config or ParallelConfig()
        #: Files parsed in-process because the pool failed (introspection).
        self.fallback_files = 0
        self._executor: Optional[Executor] = None
        self._executor_created = False
        self._pool_is_process = False

    def close(self) -> None:
        """Shut down the worker pool (idempotent; the engine stays usable)."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self._executor_created = False

    def __enter__(self) -> "ParallelStreamEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- public API --------------------------------------------------------

    def iter_batches(
        self, specs: Sequence[DumpFileSpec], batch_size: Optional[int] = None
    ) -> Iterator[List[BGPStreamRecord]]:
        """Timestamp-ordered batches over the whole dump-file set.

        Flattening the batches yields exactly the record sequence of
        ``iter(SortedRecordMerger(specs))``.
        """
        size = self.config.batch_size if batch_size is None else batch_size
        return batch_records(self.iter_records(specs), size)

    def iter_records(self, specs: Sequence[DumpFileSpec]) -> Iterator[BGPStreamRecord]:
        """Record-at-a-time view of the merged stream."""
        for record_lists in self._parsed_subsets(specs):
            yield from merge_record_iterators([iter(lst) for lst in record_lists])

    # -- internals ---------------------------------------------------------

    def _parsed_subsets(
        self, specs: Sequence[DumpFileSpec]
    ) -> Iterator[List[List[BGPStreamRecord]]]:
        """Yield each subset's per-file record lists, parsing ahead."""
        subsets = SortedRecordMerger(specs).subsets()
        if not subsets:
            return
        executor = self._ensure_executor()
        if executor is None:
            for subset in subsets:
                yield [
                    read_dump_file(
                        spec,
                        self.config.cache_records,
                        self.config.intern,
                        self.config.lazy,
                        self.config.segment_cache,
                    )
                    for spec in subset
                ]
            return
        pending: List[List[Future]] = []
        ahead = self.config.prefetch_subsets + 1
        for submitted in range(min(ahead, len(subsets))):
            pending.append(self._submit_subset(executor, subsets[submitted]))
        for current in range(len(subsets)):
            futures = pending.pop(0)
            nxt = current + len(pending) + 1
            if nxt < len(subsets):
                pending.append(self._submit_subset(executor, subsets[nxt]))
            yield [
                self._collect(future, spec)
                for future, spec in zip(futures, subsets[current])
            ]

    def _submit_subset(self, executor: Executor, subset: Sequence[DumpFileSpec]) -> List[Future]:
        # Record-caching inside process-pool workers is pure overhead: the
        # cache lives in the worker's memory and dies with the pool, so no
        # later read can hit it.  Threads share this process's cache.
        cache = self.config.cache_records and not self._pool_is_process
        futures: List[Future] = []
        for spec in subset:
            try:
                futures.append(
                    executor.submit(
                        read_dump_file,
                        spec,
                        cache,
                        self.config.intern,
                        self.config.lazy,
                        self.config.segment_cache,
                    )
                )
            except RuntimeError:
                # Pool already broken/shut down; park a pre-failed future so
                # _collect falls back to in-process parsing.
                failed: Future = Future()
                failed.set_exception(RuntimeError("worker pool unavailable"))
                futures.append(failed)
        return futures

    def _collect(self, future: Future, spec: DumpFileSpec) -> List[BGPStreamRecord]:
        try:
            return future.result()
        except Exception:
            # Broken pool, unpicklable payload, or a worker killed mid-task:
            # parse the file in the delivering process instead.
            self.fallback_files += 1
            return read_dump_file(
                spec,
                self.config.cache_records,
                self.config.intern,
                self.config.lazy,
                self.config.segment_cache,
            )

    def _ensure_executor(self) -> Optional[Executor]:
        if not self._executor_created:
            self._executor = self._make_executor()
            self._executor_created = True
        return self._executor

    def _make_executor(self) -> Optional[Executor]:
        kind = self.config.resolved_executor()
        if kind == "serial":
            return None
        workers = self.config.resolved_workers()
        if kind == "process":
            try:
                pool: Executor = ProcessPoolExecutor(max_workers=workers)
                self._pool_is_process = True
                return pool
            except (OSError, ValueError, ImportError):
                kind = "thread"
        self._pool_is_process = False
        return ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="bgpstream-parse"
        )
