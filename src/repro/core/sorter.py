"""Generating a sorted stream of records from many dump files (§3.3.4).

Collectors write records within one dump file in non-decreasing timestamp
order, but a stream usually spans many files with overlapping time intervals
(several collectors; RIBs and Updates together).  libBGPStream therefore:

1. splits the current dump-file set into disjoint subsets of files with
   (transitively) overlapping time intervals — so the expensive multi-way
   merge only ever sees the files that actually need merging; and
2. applies a multi-way merge to each subset, repeatedly extracting the
   record with the oldest timestamp among the open files.

:class:`DumpFileReader` adapts one MRT dump file into an iterator of
annotated :class:`~repro.core.record.BGPStreamRecord` objects (marking dump
start/end and signalling unreadable or corrupted dumps through the record
status), and :class:`SortedRecordMerger` implements the grouping + merge.
"""

from __future__ import annotations

import heapq
import time
from itertools import count
from typing import Iterable, Iterator, List, Optional, Sequence

from repro import _metrics
from repro.core.interfaces import DumpFileSpec
from repro.core.record import BGPStreamRecord, DumpPosition, RecordStatus
from repro.mrt.parser import MRTDumpReader, MRTParseError, file_signature
from repro.mrt.records import PeerIndexTable
from repro.utils.intervals import TimeInterval, group_overlapping

#: Default number of records per batch for the batched APIs.
DEFAULT_BATCH_SIZE = 1024


class DumpFileReader:
    """Iterate one dump file as annotated BGPStream records.

    * A file that cannot be opened yields exactly one record with
      ``CORRUPTED_SOURCE`` status.
    * An empty file yields one record with ``EMPTY_SOURCE`` status.
    * A corrupted record (or truncated tail) yields a record with
      ``CORRUPTED_RECORD`` status, and reading stops after it.
    * The first and last records of a readable dump are marked with the
      START / END dump positions so users can collate whole RIB dumps.

    ``cache_records=True`` asks the MRT parser to keep the decoded records
    of a cleanly-read dump in its per-file cache, so re-reads of the
    unchanged file skip decoding (the parallel engine's workers set this).
    ``intern`` forwards the parse-time flyweight-interning knob to the MRT
    reader and ``lazy`` the lazy-decode knob (``None`` follows the
    respective process-wide switch).

    ``segment_cache`` is an optional persistent decoded-segment cache
    (:class:`repro.broker.segments.SegmentCache`): a hit replays the file's
    annotated records without touching the MRT wire bytes; a miss reads
    normally and — if the iteration completes and the file is unchanged —
    stores the decoded segment for the next run.
    """

    def __init__(
        self,
        spec: DumpFileSpec,
        cache_records: bool = False,
        intern: Optional[bool] = None,
        lazy: Optional[bool] = None,
        segment_cache=None,
    ) -> None:
        self.spec = spec
        self.cache_records = cache_records
        self.intern = intern
        self.lazy = lazy
        self.segment_cache = segment_cache

    def __iter__(self) -> Iterator[BGPStreamRecord]:
        cache = self.segment_cache
        if cache is None:
            yield from self._timed_read()
            return
        signature = file_signature(self.spec.path)
        cached = cache.load(self.spec)
        if cached is not None:
            yield from cached
            return
        records: List[BGPStreamRecord] = []
        for record in self._timed_read():
            records.append(record)
            yield record
        # Store only complete, consistent reads: an abandoned iteration never
        # reaches this point, and a file replaced mid-read fails the
        # signature check.
        if signature is not None and signature == file_signature(self.spec.path):
            cache.store(self.spec, records, signature=signature)

    def _timed_read(self) -> Iterator[BGPStreamRecord]:
        """Iterate :meth:`_read`, feeding the per-file ``decode`` span.

        The span accumulates only the time spent *inside* the generator
        (one ``perf_counter`` pair per record pull) so consumer time does
        not pollute the decode-stage latency; one observation lands in
        ``repro_stage_latency_seconds{stage="decode"}`` per dump file.
        Disabled metrics take the plain path — zero added work.
        """
        if not _metrics.enabled:
            yield from self._read()
            return
        inner = self._read()
        perf_counter = time.perf_counter
        spent = 0.0
        while True:
            started = perf_counter()
            try:
                record = next(inner)
            except StopIteration:
                spent += perf_counter() - started
                _metrics.stage_latency.labels("decode").observe(spent)
                return
            spent += perf_counter() - started
            yield record

    def _read(self) -> Iterator[BGPStreamRecord]:
        spec = self.spec
        try:
            reader = MRTDumpReader(
                spec.path,
                cache_records=self.cache_records,
                intern=self.intern,
                lazy=self.lazy,
            )
            reader.open()
        except MRTParseError:
            yield BGPStreamRecord(
                project=spec.project,
                collector=spec.collector,
                dump_type=spec.dump_type,
                dump_time=spec.timestamp,
                status=RecordStatus.CORRUPTED_SOURCE,
            )
            return

        peer_table: Optional[PeerIndexTable] = None
        previous: Optional[BGPStreamRecord] = None
        emitted_any = False
        try:
            for mrt in reader:
                if isinstance(mrt.body, PeerIndexTable):
                    peer_table = mrt.body
                status = (
                    RecordStatus.VALID if mrt.is_valid else RecordStatus.CORRUPTED_RECORD
                )
                record = BGPStreamRecord(
                    project=spec.project,
                    collector=spec.collector,
                    dump_type=spec.dump_type,
                    dump_time=spec.timestamp,
                    status=status,
                    dump_position=DumpPosition.MIDDLE,
                    mrt=mrt,
                    peer_table=peer_table,
                )
                if previous is None:
                    record.dump_position = DumpPosition.START
                else:
                    yield previous
                previous = record
                emitted_any = True
        finally:
            reader.close()

        if previous is not None:
            if previous.dump_position != DumpPosition.START:
                previous.dump_position = DumpPosition.END
            else:
                # A single-record dump is both start and end; END is the
                # more useful marker for collation, so prefer it.
                previous.dump_position = DumpPosition.END
            yield previous
        if not emitted_any:
            yield BGPStreamRecord(
                project=spec.project,
                collector=spec.collector,
                dump_type=spec.dump_type,
                dump_time=spec.timestamp,
                status=RecordStatus.EMPTY_SOURCE,
            )


class SortedRecordMerger:
    """Group a dump-file set by overlapping intervals and merge each group.

    ``intern`` forwards the parse-time flyweight-interning knob and
    ``lazy`` the lazy-decode knob to every :class:`DumpFileReader` it opens
    (``None`` follows the respective process-wide switch);
    ``segment_cache`` forwards an optional persistent decoded-segment cache.
    """

    def __init__(
        self,
        specs: Sequence[DumpFileSpec],
        intern: Optional[bool] = None,
        lazy: Optional[bool] = None,
        segment_cache=None,
    ) -> None:
        self.specs = list(specs)
        self.intern = intern
        self.lazy = lazy
        self.segment_cache = segment_cache

    # -- grouping ------------------------------------------------------------

    def subsets(self) -> List[List[DumpFileSpec]]:
        """The disjoint subsets of files with overlapping time intervals.

        Files within a subset must be merged record-by-record; distinct
        subsets can simply be read one after the other.
        """
        if not self.specs:
            return []
        ordered = sorted(self.specs, key=lambda s: (s.timestamp, s.interval_end, s.path))
        # A dump covering [t, t+duration) holds records strictly before
        # t+duration, so two back-to-back dumps do not need merging; model
        # the file interval as closed on [t, t+duration-1].
        intervals = [
            TimeInterval(s.timestamp, max(s.timestamp, s.interval_end - 1)) for s in ordered
        ]
        return group_overlapping(ordered, intervals)

    # -- merging ----------------------------------------------------------------

    def __iter__(self) -> Iterator[BGPStreamRecord]:
        for subset in self.subsets():
            yield from self._merge_subset(subset)

    def iter_batches(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[List[BGPStreamRecord]]:
        """Iterate the merged stream in timestamp-ordered record batches.

        Flattening the batches reproduces ``iter(self)`` record for record;
        batch boundaries carry no meaning (a batch may span subsets).
        """
        yield from batch_records(self, batch_size)

    def _merge_subset(self, subset: Sequence[DumpFileSpec]) -> Iterator[BGPStreamRecord]:
        """Multi-way merge of the (already time-ordered) files of one subset."""
        if len(subset) == 1:
            yield from DumpFileReader(
                subset[0],
                intern=self.intern,
                lazy=self.lazy,
                segment_cache=self.segment_cache,
            )
            return
        yield from merge_record_iterators(
            [
                iter(
                    DumpFileReader(
                        spec,
                        intern=self.intern,
                        lazy=self.lazy,
                        segment_cache=self.segment_cache,
                    )
                )
                for spec in subset
            ]
        )

    # -- introspection (used by benchmarks) ---------------------------------------

    def subset_sizes(self) -> List[int]:
        return [len(subset) for subset in self.subsets()]


def batch_records(
    records: Iterable[BGPStreamRecord], batch_size: int
) -> Iterator[List[BGPStreamRecord]]:
    """Group a record iterable into lists of up to ``batch_size``.

    The single accumulate-and-flush loop behind every batched API (sorter,
    parallel engine, stream): the trailing partial batch is always flushed.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    batch: List[BGPStreamRecord] = []
    for record in records:
        batch.append(record)
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


def merge_record_iterators(
    iterators: Sequence[Iterator[BGPStreamRecord]],
) -> Iterator[BGPStreamRecord]:
    """Multi-way merge of per-file record iterators, oldest timestamp first.

    Repeatedly extracts the record with the oldest timestamp among the
    iterator heads (§3.3.4).  Equal timestamps resolve by iterator position
    and then by a monotonic sequence counter, so the merged order is stable
    and reproducible across runs.  Both the sequential sorter and the
    parallel engine (:mod:`repro.core.parallel`) merge through this function,
    which is what guarantees the two paths emit identical record sequences.
    """
    sequence = count()
    heap: List[tuple] = []
    for index, iterator in enumerate(iterators):
        record = next(iterator, None)
        if record is not None:
            heap.append((record.time, index, next(sequence), record))
    heapq.heapify(heap)
    while heap:
        _, index, _, record = heapq.heappop(heap)
        yield record
        nxt = next(iterators[index], None)
        if nxt is not None:
            heapq.heappush(heap, (nxt.time, index, next(sequence), nxt))
