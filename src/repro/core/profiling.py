"""Decode-path profiling counters (the ``bgpreader --decode-stats`` surface).

The lazy decode tier (PR 6) is justified by work *not* done: attribute
blocks never parsed, bytes never copied, elems rejected by the filter gate
before materialisation.  These counters make the win observable at runtime
instead of only in benchmarks::

    from repro.core import profiling

    profiling.enable()
    ...  # run a stream
    stats = profiling.snapshot()
    print(stats.elems_skipped, stats.bytes_copied)
    profiling.disable()

Profiling is off by default; every hot-path increment is guarded by a
single ``if counters is not None`` check, so the disabled cost is one
global load per site.  The state itself lives in :mod:`repro._profiling`
(below the :mod:`repro.core` package in the import graph, so the decode
layers can use it without an import cycle); this module is the public face.
"""

from __future__ import annotations

from repro._profiling import (
    DecodeStats,
    disable,
    enable,
    record_intern_stats,
    snapshot,
)

__all__ = [
    "DecodeStats",
    "counters",
    "disable",
    "enable",
    "record_intern_stats",
    "snapshot",
]


def __getattr__(name: str):
    # ``counters`` is a live module global of repro._profiling; resolve it
    # at access time so this facade never holds a stale binding.
    if name == "counters":
        from repro import _profiling

        return _profiling.counters
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
