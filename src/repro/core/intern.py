"""Flyweight interning for the hot BGP value objects (the elem pipeline).

A RIB dump repeats the same few thousand AS paths, community sets and peer
addresses millions of times; materialising a fresh object per occurrence
dominates both the elem-extraction hot loop and the resident size of the
routing-tables (prefix × VP) matrix.  An :class:`InternPool` deduplicates
those immutable values at parse time, so every consumer downstream holds
*references to one canonical object* per distinct value:

* canonical objects carry their hash cached (the value classes memoise it in
  a ``_hash`` slot), so dict/set/trie operations skip recomputation;
* equality checks between interned values hit the identity fast path the
  value classes implement (``self is other`` first, fields second);
* duplicate parse-time allocations become garbage immediately instead of
  living for the lifetime of a routing table.

Pools are **bounded** (per-kind entry caps; a full pool passes values
through uninterned rather than evicting), **thread-safe** (lock-free read
probe, locked insert) and **stats-reporting** (:meth:`InternPool.stats`).
They pickle cleanly — contents and counters travel, the lock is rebuilt —
so a pool can cross a process boundary if a consumer wants to
:meth:`~InternPool.merge` worker-side pools.

Two layers use interning:

* **parse time** — :func:`repro.mrt.records.decode_record_body` interns the
  freshly decoded values into the process-wide :func:`default_pool`
  (toggle with :func:`set_parse_interning`, or per-reader via the
  ``intern=`` knob threaded through the parser and the parallel engine;
  worker processes each rebuild their own default pool);
* **elem time** — :meth:`repro.core.stream.BGPStream` attaches its pool
  (``BGPStream(interning=...)``) to every record it yields, and
  ``BGPStreamRecord.elems()`` canonicalises the fields of each elem through
  it, writing the canonical objects back into the shared attribute sets so
  later extractions take the identity fast path.

This module is intentionally dependency-free (stdlib only): it sits below
``repro.bgp`` / ``repro.mrt`` in the import graph so any layer may use it.
"""

from __future__ import annotations

import threading
from typing import Dict, Hashable, Optional, Tuple, TypeVar

__all__ = [
    "InternPool",
    "default_pool",
    "reset_default_pool",
    "parse_interning",
    "parse_interning_enabled",
    "set_parse_interning",
    "parse_pool",
    "DEFAULT_MAX_ENTRIES",
]

_T = TypeVar("_T", bound=Hashable)

#: Base per-kind entry cap of a pool.  2**17 distinct AS paths comfortably
#: covers a full IPv4 RIB (real tables sit around 60-100k distinct paths).
DEFAULT_MAX_ENTRIES = 1 << 17

#: Cap multipliers for kinds whose realistic population outgrows the base
#: cap: a full IPv4 RIB carries ~1M distinct prefixes (~8x the base), so the
#: prefix kind — the hottest value type of the pipeline — gets 16x headroom.
KIND_CAP_MULTIPLIERS = {"prefix": 16}

#: The value kinds a pool tracks (used for stats; unknown kinds are allowed
#: and simply appear in the stats as they are first seen).
KINDS = ("prefix", "path", "segment", "communities", "community", "string", "peer")


class _CounterBlock:
    """Hit/overflow tallies owned by exactly one thread.

    Only the owning thread ever writes a block, so the hot-path increments
    need neither a lock nor atomics; readers (``stats()``) sum the blocks
    under the pool lock, which under the GIL observes each int whole.
    """

    __slots__ = ("hits", "overflow")

    def __init__(self) -> None:
        self.hits: Dict[str, int] = {}
        self.overflow: Dict[str, int] = {}


class InternPool:
    """A bounded, thread-safe flyweight pool for immutable values.

    One dict per *kind* maps each value to its canonical instance.  The read
    probe is lock-free (safe under the GIL: a racing insert at worst stores
    a second equal canonical, never corrupts); inserts take a small lock so
    the bound and the miss counter stay exact.  The *hit* and *overflow*
    counters are kept in per-thread blocks — each thread increments only its
    own block, so a saturated kind pays no lock acquisition per occurrence
    and concurrent threads never lose each other's updates (the stats a
    multi-threaded consumer like the streaming gateway reads are exact, not
    approximate).  When a kind reaches its cap new values pass through
    uninterned (counted as ``overflow``) — bounded memory beats perfect
    dedup.  The cap is ``max_entries`` per kind, scaled up by
    :data:`KIND_CAP_MULTIPLIERS` for kinds with larger realistic
    populations (prefixes).
    """

    __slots__ = (
        "max_entries",
        "_caps",
        "_tables",
        "_base_hits",
        "_misses",
        "_base_overflow",
        "_blocks",
        "_local",
        "_lock",
    )

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._caps: Dict[str, int] = {
            kind: max_entries * multiplier for kind, multiplier in KIND_CAP_MULTIPLIERS.items()
        }
        self._tables: Dict[str, dict] = {kind: {} for kind in KINDS}
        #: Totals carried over from pickling/merging; live deltas sit in the
        #: per-thread blocks and are folded in on read.
        self._base_hits: Dict[str, int] = {kind: 0 for kind in KINDS}
        self._misses: Dict[str, int] = {kind: 0 for kind in KINDS}
        self._base_overflow: Dict[str, int] = {kind: 0 for kind in KINDS}
        self._blocks: list = []
        self._local = threading.local()
        self._lock = threading.Lock()

    # -- per-thread counters -----------------------------------------------

    def _block(self) -> _CounterBlock:
        block = getattr(self._local, "block", None)
        if block is None:
            block = _CounterBlock()
            with self._lock:
                self._blocks.append(block)
            self._local.block = block
        return block

    def _aggregate(self) -> Tuple[Dict[str, int], Dict[str, int]]:
        """Fold the thread blocks into total hit/overflow dicts.

        Caller must hold ``_lock`` (the blocks list must not grow
        mid-iteration; individual block reads are GIL-atomic).
        """
        hits = dict(self._base_hits)
        overflow = dict(self._base_overflow)
        for block in self._blocks:
            for kind, count in block.hits.items():
                hits[kind] = hits.get(kind, 0) + count
            for kind, count in block.overflow.items():
                overflow[kind] = overflow.get(kind, 0) + count
        return hits, overflow

    # -- the generic primitive ---------------------------------------------

    def intern(self, kind: str, value: _T) -> _T:
        """Return the canonical instance equal to ``value`` (inserting it
        if unseen and the pool has room)."""
        table = self._tables.get(kind)
        if table is None:
            with self._lock:
                table = self._tables.setdefault(kind, {})
                self._misses.setdefault(kind, 0)
        canonical = table.get(value)
        if canonical is not None:
            hits = self._block().hits
            hits[kind] = hits.get(kind, 0) + 1
            return canonical
        cap = self._caps.get(kind, self.max_entries)
        if len(table) >= cap:
            # Permanently-full kind: stay on the lock-free path.
            overflow = self._block().overflow
            overflow[kind] = overflow.get(kind, 0) + 1
            return value
        with self._lock:
            canonical = table.get(value)
            if canonical is not None:
                hit = True
                over = False
            elif len(table) >= cap:
                hit = False
                over = True
            else:
                hit = over = False
                self._misses[kind] = self._misses.get(kind, 0) + 1
                table[value] = value
        if canonical is not None and hit:
            hits = self._block().hits
            hits[kind] = hits.get(kind, 0) + 1
            return canonical
        if over:
            overflow = self._block().overflow
            overflow[kind] = overflow.get(kind, 0) + 1
        return value

    # -- typed conveniences (the elem-pipeline hot paths) ------------------

    def string(self, value: str) -> str:
        """Canonicalise a peer address / next hop / collector string."""
        return self.intern("string", value)

    def prefix(self, value):
        """Canonicalise a :class:`~repro.bgp.prefix.Prefix`."""
        return self.intern("prefix", value)

    def path(self, value):
        """Canonicalise an :class:`~repro.bgp.aspath.ASPath`.

        On first sight the path's segments are interned too, so paths that
        share a segment (e.g. a common AS_SET tail) share the segment
        object; the canonical path is rebuilt over the canonical segments.
        """
        table = self._tables["path"]
        canonical = table.get(value)
        if canonical is not None:
            hits = self._block().hits
            hits["path"] = hits.get("path", 0) + 1
            return canonical
        segments = value.segments
        interned = tuple(self.intern("segment", segment) for segment in segments)
        if any(a is not b for a, b in zip(interned, segments)):
            value = type(value)(interned)
        return self.intern("path", value)

    def communities(self, value):
        """Canonicalise a :class:`~repro.bgp.community.CommunitySet`.

        Member :class:`~repro.bgp.community.Community` objects of a
        first-seen set are interned as well.
        """
        table = self._tables["communities"]
        canonical = table.get(value)
        if canonical is not None:
            hits = self._block().hits
            hits["communities"] = hits.get("communities", 0) + 1
            return canonical
        members = tuple(value)
        interned = tuple(self.intern("community", member) for member in members)
        if any(a is not b for a, b in zip(interned, members)):
            value = type(value)(interned)
        return self.intern("communities", value)

    # -- maintenance -------------------------------------------------------

    def clear(self) -> None:
        with self._lock:
            for table in self._tables.values():
                table.clear()

    def merge(self, other: "InternPool") -> None:
        """Fold another pool's canonicals into this one (bound-respecting).

        Useful to pre-warm a stream pool from a worker's pool after a
        parallel run; counters of ``other`` are not carried over.
        """
        if other is self:
            return  # self-merge is a no-op (and the lock is non-reentrant)
        with other._lock:
            # Snapshot under the source pool's lock so concurrent inserts
            # cannot resize the tables mid-iteration.
            snapshot = [(kind, list(table.values())) for kind, table in other._tables.items()]
        for kind, values in snapshot:
            for value in values:
                self.intern(kind, value)

    # -- introspection -----------------------------------------------------

    # Introspection takes the lock: intern() can add a first-seen *kind* to
    # the top-level dicts, which must not resize under these iterations.

    def sizes(self) -> Dict[str, int]:
        with self._lock:
            return {kind: len(table) for kind, table in self._tables.items()}

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-kind ``{size, hits, misses, overflow}`` counters."""
        with self._lock:
            hits, overflow = self._aggregate()
            return {
                kind: {
                    "size": len(table),
                    "hits": hits.get(kind, 0),
                    "misses": self._misses.get(kind, 0),
                    "overflow": overflow.get(kind, 0),
                }
                for kind, table in self._tables.items()
            }

    @property
    def hit_rate(self) -> float:
        """Overall hits / (hits + misses + overflow); 0.0 when unused."""
        with self._lock:
            hit_totals, overflow_totals = self._aggregate()
            hits = sum(hit_totals.values())
            total = hits + sum(self._misses.values()) + sum(overflow_totals.values())
        return hits / total if total else 0.0

    def __len__(self) -> int:
        with self._lock:
            return sum(len(table) for table in self._tables.values())

    def __repr__(self) -> str:
        return (
            f"InternPool(entries={len(self)}, "
            f"hit_rate={self.hit_rate:.3f}, max_entries={self.max_entries})"
        )

    # -- pickling (the lock cannot travel) ---------------------------------

    def __getstate__(self) -> Tuple:
        with self._lock:
            # Copy under the lock: pickling iterates the dicts and releases
            # the GIL into entry __reduce__/__hash__ calls, so a concurrent
            # insert would otherwise resize them mid-iteration.  Thread
            # blocks are folded into plain totals — the unpickled pool
            # starts with fresh blocks.
            hits, overflow = self._aggregate()
            return (
                self.max_entries,
                {kind: dict(table) for kind, table in self._tables.items()},
                hits,
                dict(self._misses),
                overflow,
            )

    def __setstate__(self, state: Tuple) -> None:
        self.max_entries, self._tables, self._base_hits, self._misses, self._base_overflow = state
        self._caps = {
            kind: self.max_entries * multiplier
            for kind, multiplier in KIND_CAP_MULTIPLIERS.items()
        }
        self._blocks = []
        self._local = threading.local()
        self._lock = threading.Lock()


# ---------------------------------------------------------------------------
# The process-wide default pool and the parse-time interning switch
# ---------------------------------------------------------------------------

_default_pool: Optional[InternPool] = None
_default_lock = threading.Lock()
_parse_interning = True


def default_pool() -> InternPool:
    """The process-wide pool (created lazily; worker processes build their
    own, which is the "pools rebuilt per worker" composition with the
    parallel engine)."""
    global _default_pool
    pool = _default_pool
    if pool is None:
        with _default_lock:
            pool = _default_pool
            if pool is None:
                pool = _default_pool = InternPool()
    return pool


def reset_default_pool() -> None:
    """Drop the process-wide pool (tests / long-lived daemons)."""
    global _default_pool
    with _default_lock:
        _default_pool = None


def parse_interning_enabled() -> bool:
    return _parse_interning


def set_parse_interning(enabled: bool) -> bool:
    """Globally enable/disable parse-time interning; returns the previous
    setting (so callers can restore it)."""
    global _parse_interning
    previous = _parse_interning
    _parse_interning = bool(enabled)
    return previous


def parse_pool(intern: Optional[bool] = None) -> Optional[InternPool]:
    """The pool parse-time code should intern into, or ``None``.

    ``intern=None`` follows the global switch; ``True`` / ``False`` force
    the decision per call site (the ``intern=`` knob of the MRT reader and
    the parallel engine ends up here).
    """
    if intern is None:
        intern = _parse_interning
    return default_pool() if intern else None


class parse_interning:
    """Context manager scoping the global parse-interning switch::

        with parse_interning(False):
            records = read_dump(path)   # raw, un-deduplicated objects
    """

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled
        self._previous: Optional[bool] = None

    def __enter__(self) -> "parse_interning":
        self._previous = set_parse_interning(self.enabled)
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._previous is not None:
            set_parse_interning(self._previous)
