"""Data interfaces: where the stream learns which dump files to read (§3.2).

The Broker data interface is the primary one (and the default); the single
file, CSV file and SQLite interfaces support analysis of local files without
a Broker, exactly as the released BGPStream does.  Every interface produces
:class:`DumpFileSpec` batches; the stream machinery is identical from there
on.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.broker.broker import Broker, BrokerQuery
from repro.broker.db import MetadataDB
from repro.collectors.projects import project_for_collector
from repro.core.filters import FilterSet
from repro.utils.timeutil import Clock, SystemClock


@dataclass(frozen=True)
class DumpFileSpec:
    """Everything the stream needs to know to read one dump file."""

    path: str
    project: str
    collector: str
    dump_type: str  # "ribs" / "updates"
    timestamp: int
    duration: int

    @property
    def interval_end(self) -> int:
        return self.timestamp + self.duration


class DataInterface:
    """Base class: yields batches of dump files in time order.

    Each batch corresponds to one meta-data response (one Broker window, or
    the whole local file set); batches arrive in non-decreasing time order
    and the stream merges/sorts records within each batch.
    """

    def batches(self, filters: FilterSet) -> Iterator[List[DumpFileSpec]]:
        raise NotImplementedError


class BrokerDataInterface(DataInterface):
    """The default interface: pull windows of meta-data from a Broker.

    Implements the client-pull model of §3.3.2: meta-data is requested only
    when the application is ready to process more data, and in live mode the
    interface blocks (polling the Broker through the clock) until new data
    is available.
    """

    def __init__(
        self,
        broker: Broker,
        clock: Optional[Clock] = None,
        poll_interval: float = 30.0,
        max_empty_polls: Optional[int] = None,
    ) -> None:
        self.broker = broker
        self.clock = clock or SystemClock()
        self.poll_interval = poll_interval
        #: In live mode, stop after this many consecutive empty polls
        #: (None = poll forever).  Simulations set a bound so runs terminate.
        self.max_empty_polls = max_empty_polls

    def batches(self, filters: FilterSet) -> Iterator[List[DumpFileSpec]]:
        query = BrokerQuery(
            projects=tuple(sorted(filters.projects)),
            collectors=tuple(sorted(filters.collectors)),
            dump_types=tuple(sorted(filters.record_types)),
            interval_start=filters.interval_start or 0,
            interval_end=filters.interval_end,
        )
        if not query.live:
            cursor: Optional[int] = None
            while True:
                response = self.broker.get_window(query, from_time=cursor, now=None)
                if response.files:
                    yield [_spec_from_record(f) for f in response.files]
                if not response.more_data:
                    return
                cursor = response.window_end
            return

        # Live mode: ask the Broker for anything *published* since the last
        # poll, so late or out-of-order publications are never missed.  The
        # query blocks (sleeping on the clock) while nothing new is
        # available, which is the paper's blocking-poll behaviour.
        published_after: Optional[float] = None
        empty_polls = 0
        while True:
            now = self.clock.now()
            files = self.broker.get_new_files(query, published_after=published_after, now=now)
            published_after = now
            if files:
                empty_polls = 0
                yield [_spec_from_record(f) for f in files]
                continue
            empty_polls += 1
            if self.max_empty_polls is not None and empty_polls >= self.max_empty_polls:
                return
            self.clock.sleep(self.poll_interval)


class SingleFileDataInterface(DataInterface):
    """Read exactly one local dump file."""

    def __init__(
        self,
        path: str,
        dump_type: str,
        project: str = "",
        collector: str = "",
        timestamp: Optional[int] = None,
        duration: int = 0,
    ) -> None:
        if collector and not project:
            try:
                project = project_for_collector(collector).name
            except KeyError:
                project = ""
        self.spec = DumpFileSpec(
            path=path,
            project=project,
            collector=collector,
            dump_type=dump_type,
            timestamp=timestamp if timestamp is not None else 0,
            duration=duration,
        )

    def batches(self, filters: FilterSet) -> Iterator[List[DumpFileSpec]]:
        yield [self.spec]


class CSVFileDataInterface(DataInterface):
    """Read dump-file meta-data from a local CSV file.

    Each row: ``project,collector,dump_type,timestamp,duration,path``.
    """

    def __init__(self, csv_path: str) -> None:
        self.csv_path = csv_path

    def _load(self) -> List[DumpFileSpec]:
        specs: List[DumpFileSpec] = []
        with open(self.csv_path, newline="", encoding="utf-8") as handle:
            for row in csv.reader(handle):
                if not row or row[0].startswith("#"):
                    continue
                project, collector, dump_type, timestamp, duration, path = row[:6]
                specs.append(
                    DumpFileSpec(
                        path=path.strip(),
                        project=project.strip(),
                        collector=collector.strip(),
                        dump_type=dump_type.strip(),
                        timestamp=int(timestamp),
                        duration=int(duration),
                    )
                )
        specs.sort(key=lambda s: (s.timestamp, s.project, s.collector))
        return specs

    def batches(self, filters: FilterSet) -> Iterator[List[DumpFileSpec]]:
        specs = [s for s in self._load() if _spec_matches(s, filters)]
        if specs:
            yield specs


class SQLiteDataInterface(DataInterface):
    """Read dump-file meta-data from a Broker-format SQLite database."""

    def __init__(self, db_path: str) -> None:
        self.db_path = db_path

    def batches(self, filters: FilterSet) -> Iterator[List[DumpFileSpec]]:
        db = MetadataDB(self.db_path)
        try:
            records = db.query(
                projects=sorted(filters.projects) or None,
                collectors=sorted(filters.collectors) or None,
                dump_types=sorted(filters.record_types) or None,
                interval_start=filters.interval_start,
                interval_end=filters.interval_end,
            )
        finally:
            db.close()
        specs = [_spec_from_record(r) for r in records]
        if specs:
            yield specs


def _spec_from_record(record) -> DumpFileSpec:
    return DumpFileSpec(
        path=record.path,
        project=record.project,
        collector=record.collector,
        dump_type=record.dump_type,
        timestamp=record.timestamp,
        duration=record.duration,
    )


def _spec_matches(spec: DumpFileSpec, filters: FilterSet) -> bool:
    if filters.projects and spec.project not in filters.projects:
        return False
    if filters.collectors and spec.collector not in filters.collectors:
        return False
    if filters.record_types and spec.dump_type not in filters.record_types:
        return False
    if filters.interval_start is not None and spec.interval_end < filters.interval_start:
        return False
    if filters.interval_end is not None and spec.timestamp > filters.interval_end:
        return False
    return True
