"""Data interfaces: where the stream learns which dump files to read (§3.2).

The Broker data interface is the primary one (and the default); the single
file, CSV file and SQLite interfaces support analysis of local files without
a Broker, exactly as the released BGPStream does.  Every file-backed
interface produces :class:`DumpFileSpec` batches; the stream machinery is
identical from there on.  :class:`LiveDataInterface` is the near-realtime
counterpart: it yields ready-made record batches straight off a BMP-over-
Kafka feed (:mod:`repro.bmp`).

Interfaces can be addressed by name through the registry
(:func:`make_data_interface`), matching the paper's named-interface API:
``broker``, ``csvfile``, ``sqlite``, ``singlefile`` and ``kafka`` (the live
BMP feed, also reachable as ``bmp``).
"""

from __future__ import annotations

import csv
import inspect
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional, Sequence, Union

from repro import _metrics
from repro.broker.broker import Broker, BrokerQuery
from repro.broker.db import MetadataDB
from repro.collectors.projects import project_for_collector
from repro.core.filters import FilterSet
from repro.core.record import BGPStreamRecord
from repro.utils.timeutil import Clock, SystemClock

if TYPE_CHECKING:
    from repro.bmp.convert import BMPRecordConverter
    from repro.bmp.source import BMPKafkaDataSource
    from repro.kafka.broker import MessageBroker


@dataclass(frozen=True)
class DumpFileSpec:
    """Everything the stream needs to know to read one dump file."""

    path: str
    project: str
    collector: str
    dump_type: str  # "ribs" / "updates"
    timestamp: int
    duration: int

    @property
    def interval_end(self) -> int:
        return self.timestamp + self.duration


class DataInterface:
    """Base class: yields batches of dump files in time order.

    Each batch corresponds to one meta-data response (one Broker window, or
    the whole local file set); batches arrive in non-decreasing time order
    and the stream merges/sorts records within each batch.
    """

    def batches(self, filters: FilterSet) -> Iterator[List[DumpFileSpec]]:
        raise NotImplementedError


class BrokerDataInterface(DataInterface):
    """The default interface: pull windows of meta-data from a Broker.

    Implements the client-pull model of §3.3.2: meta-data is requested only
    when the application is ready to process more data, and in live mode the
    interface blocks (polling the Broker through the clock) until new data
    is available.

    ``page_size`` bounds the files per meta-data response; when set (or when
    resuming from a ``cursor``), historical windows are pulled through the
    Broker's cursor pagination and :attr:`last_cursor` tracks the most
    recent resume token, so an interrupted stream can be restarted with
    ``cursor=interface.last_cursor`` without re-fetching earlier pages.
    """

    def __init__(
        self,
        broker: Broker,
        clock: Optional[Clock] = None,
        poll_interval: float = 30.0,
        max_empty_polls: Optional[int] = None,
        page_size: Optional[int] = None,
        cursor: Optional[str] = None,
    ) -> None:
        self.broker = broker
        self.clock = clock or SystemClock()
        self.poll_interval = poll_interval
        #: In live mode, stop after this many consecutive empty polls
        #: (None = poll forever).  Simulations set a bound so runs terminate.
        self.max_empty_polls = max_empty_polls
        self.page_size = page_size
        #: The cursor to resume from (consumed by the first request).
        self.cursor = cursor
        #: The opaque resume token of the most recent response (checkpoint
        #: this to survive restarts); None until the first paginated pull.
        self.last_cursor: Optional[str] = None

    def batches(self, filters: FilterSet) -> Iterator[List[DumpFileSpec]]:
        query = BrokerQuery(
            projects=tuple(sorted(filters.projects)),
            collectors=tuple(sorted(filters.collectors)),
            dump_types=tuple(sorted(filters.record_types)),
            interval_start=filters.interval_start or 0,
            interval_end=filters.interval_end,
        )
        if not query.live:
            if self.page_size is not None or self.cursor is not None:
                yield from self._paginated_batches(query)
                return
            from_time: Optional[int] = None
            while True:
                response = self.broker.get_window(query, from_time=from_time, now=None)
                if response.files:
                    yield [_spec_from_record(f) for f in response.files]
                if not response.more_data:
                    return
                from_time = response.window_end
            return

        # Live mode: ask the Broker for anything *published* since the last
        # poll, so late or out-of-order publications are never missed.  The
        # query blocks (sleeping on the clock) while nothing new is
        # available, which is the paper's blocking-poll behaviour.
        published_after: Optional[float] = None
        empty_polls = 0
        while True:
            now = self.clock.now()
            files = self.broker.get_new_files(query, published_after=published_after, now=now)
            published_after = now
            if files:
                empty_polls = 0
                yield [_spec_from_record(f) for f in files]
                continue
            empty_polls += 1
            if self.max_empty_polls is not None and empty_polls >= self.max_empty_polls:
                return
            self.clock.sleep(self.poll_interval)

    def _paginated_batches(self, query: BrokerQuery) -> Iterator[List[DumpFileSpec]]:
        """Historical pull through cursor pagination (bounded responses).

        Pages are a transport detail: the sorted merge downstream needs the
        whole window, so pages are reassembled into one batch per window
        before yielding.  ``last_cursor`` only advances at window
        boundaries — it always points at the first *unyielded* page, so a
        consumer that stops mid-stream can resume without losing files
        from a window whose pages were fetched but never delivered.
        """
        cursor = self.cursor
        pending: List[DumpFileSpec] = []
        pending_window: Optional[int] = None
        while True:
            response = self.broker.get_window(
                query, cursor=cursor, page_size=self.page_size, now=None
            )
            if pending and response.window_start != pending_window:
                # This fetch crossed into the next window: the previous
                # window is complete.  Resuming from `cursor` re-fetches
                # only the page we are holding but have not yet yielded.
                self.last_cursor = cursor
                yield pending
                pending = []
            if response.files:
                pending_window = response.window_start
                pending.extend(_spec_from_record(f) for f in response.files)
            cursor = response.next_cursor
            if cursor is None:
                self.last_cursor = None
                break
        if pending:
            yield pending


class SingleFileDataInterface(DataInterface):
    """Read exactly one local dump file."""

    def __init__(
        self,
        path: str,
        dump_type: str,
        project: str = "",
        collector: str = "",
        timestamp: Optional[int] = None,
        duration: int = 0,
    ) -> None:
        if collector and not project:
            try:
                project = project_for_collector(collector).name
            except KeyError:
                project = ""
        self.spec = DumpFileSpec(
            path=path,
            project=project,
            collector=collector,
            dump_type=dump_type,
            timestamp=timestamp if timestamp is not None else 0,
            duration=duration,
        )

    def batches(self, filters: FilterSet) -> Iterator[List[DumpFileSpec]]:
        yield [self.spec]


class CSVFileDataInterface(DataInterface):
    """Read dump-file meta-data from a local CSV file.

    Each row: ``project,collector,dump_type,timestamp,duration,path``.
    """

    def __init__(self, csv_path: str) -> None:
        self.csv_path = csv_path

    def _load(self) -> List[DumpFileSpec]:
        specs: List[DumpFileSpec] = []
        with open(self.csv_path, newline="", encoding="utf-8") as handle:
            for row in csv.reader(handle):
                if not row or row[0].startswith("#"):
                    continue
                project, collector, dump_type, timestamp, duration, path = row[:6]
                specs.append(
                    DumpFileSpec(
                        path=path.strip(),
                        project=project.strip(),
                        collector=collector.strip(),
                        dump_type=dump_type.strip(),
                        timestamp=int(timestamp),
                        duration=int(duration),
                    )
                )
        specs.sort(key=lambda s: (s.timestamp, s.project, s.collector))
        return specs

    def batches(self, filters: FilterSet) -> Iterator[List[DumpFileSpec]]:
        specs = [s for s in self._load() if _spec_matches(s, filters)]
        if specs:
            yield specs


class SQLiteDataInterface(DataInterface):
    """Read dump-file meta-data from a Broker-format SQLite database."""

    def __init__(self, db_path: str) -> None:
        self.db_path = db_path

    def batches(self, filters: FilterSet) -> Iterator[List[DumpFileSpec]]:
        db = MetadataDB(self.db_path)
        try:
            records = db.query(
                projects=sorted(filters.projects) or None,
                collectors=sorted(filters.collectors) or None,
                dump_types=sorted(filters.record_types) or None,
                interval_start=filters.interval_start,
                interval_end=filters.interval_end,
            )
        finally:
            db.close()
        specs = [_spec_from_record(r) for r in records]
        if specs:
            yield specs


class LiveDataInterface(DataInterface):
    """Live mode: records come off a near-realtime BMP feed, not dump files.

    The interface polls a :class:`~repro.bmp.source.BMPKafkaDataSource`
    (client-pull, §3.3.2: data is requested only when the application is
    ready for more), converts each BMP message into BGPStream records
    through a :class:`~repro.bmp.convert.BMPRecordConverter`, and yields
    them in arrival batches.  The stream applies its filters and intern
    pool to live records exactly as to replayed ones.

    Bounded windows: when the stream's filters carry an ``interval_end``
    (an ``until_ts``), the interface stops as soon as the feed progresses
    past it, so a BGPCorsaro consumer's bins close deterministically in
    live mode.  Without one it polls forever (or until
    ``max_empty_polls`` consecutive empty polls, which simulations set so
    runs terminate).

    Resilience: a ``retry_policy``
    (:class:`~repro.core.resilience.RetryPolicy`) retries polls that raise
    transient errors (:class:`~repro.core.resilience.TransientError` or
    :class:`ConnectionError`) with backoff on the injected clock, and an
    optional ``circuit_breaker`` fails polls fast during a hard feed
    outage.  Retries happen *between* polls, and a poll commits its
    consumer offsets only on success — so a failed poll delivers nothing
    and re-delivers nothing: the retry path can never duplicate or lose a
    message.  A non-transient error (or retry exhaustion) propagates to
    the stream owner — in the gateway that is the hub's supervisor.
    """

    #: Marks interfaces whose batches are records, not dump-file specs.
    yields_records = True

    def __init__(
        self,
        source: Optional["BMPKafkaDataSource"] = None,
        *,
        broker: Optional["MessageBroker"] = None,
        topics: Optional[Sequence[str]] = None,
        group: Optional[str] = None,
        clock: Optional[Clock] = None,
        poll_interval: float = 1.0,
        max_empty_polls: Optional[int] = None,
        max_poll_messages: Optional[int] = None,
        project: Optional[str] = None,
        track_state: Optional[bool] = None,
        converter: Optional["BMPRecordConverter"] = None,
        eager: Optional[bool] = None,
        retry_policy: Optional["RetryPolicy"] = None,
        circuit_breaker: Optional["CircuitBreaker"] = None,
    ) -> None:
        # Imported lazily: repro.bmp depends on repro.core and this module
        # is part of the repro.core package init.
        from repro.bmp.convert import LIVE_PROJECT, BMPRecordConverter
        from repro.bmp.source import DEFAULT_CONSUMER_GROUP, BMPKafkaDataSource

        if source is None:
            if broker is None:
                raise ValueError("LiveDataInterface needs a source or a message broker")
            source = BMPKafkaDataSource(
                broker, topics=topics, group=group or DEFAULT_CONSUMER_GROUP, eager=eager
            )
        elif broker is not None or topics is not None or group is not None:
            raise ValueError("pass either a ready source or broker/topics/group, not both")
        elif eager is not None:
            raise ValueError(
                "pass either a ready source or eager=, not both (configure "
                "eager on the source instead)"
            )
        self.source = source
        if converter is not None:
            if project is not None or track_state is not None:
                raise ValueError(
                    "pass either a ready converter or project/track_state, not both"
                )
            self.converter = converter
        else:
            self.converter = BMPRecordConverter(
                project=project or LIVE_PROJECT,
                track_state=True if track_state is None else track_state,
            )
        self.clock = clock or SystemClock()
        self.poll_interval = poll_interval
        #: Stop after this many consecutive empty polls (None = poll forever).
        self.max_empty_polls = max_empty_polls
        #: Cap on Kafka messages per poll (bounded batches for bin-oriented
        #: consumers; None = drain everything available).
        self.max_poll_messages = max_poll_messages
        self.retry_policy = retry_policy
        self.circuit_breaker = circuit_breaker
        #: Polls that had to be retried (transient feed failures absorbed).
        self.poll_retries = 0

    def batches(self, filters: FilterSet) -> Iterator[List[DumpFileSpec]]:
        raise RuntimeError(
            "LiveDataInterface yields record batches, not dump files; "
            "use record_batches() (BGPStream does this automatically)"
        )

    def record_batches(self, filters: FilterSet) -> Iterator[List[BGPStreamRecord]]:
        """Poll the feed and yield record batches until the window closes."""
        until_ts = filters.interval_end
        # A window-aware source (BMPKafkaDataSource) leaves messages past
        # the boundary uncommitted in the log, so a later window on the same
        # broker/consumer group picks them up instead of losing them.
        window_aware = until_ts is not None and self._source_accepts_until_ts()
        empty_polls = 0
        while True:
            if window_aware:
                pairs = self._poll(until_ts=until_ts)
                # One held-back partition does not mean the whole feed
                # passed the boundary: other partitions may still hold
                # in-window messages (a bounded fetch surfaces them over
                # several polls).  The source owns that determination and
                # reports it as window_drained.
                window_closed = bool(getattr(self.source, "window_drained", False))
                held_back = bool(getattr(self.source, "window_exceeded", False))
            else:
                pairs = self._poll()
                window_closed = False
                held_back = False
            if not pairs:
                if window_closed:
                    return
                if not held_back:
                    # A poll that held something back made progress (the
                    # deferral frees the next fetch's budget for other
                    # partitions) and does not count as an empty poll.
                    empty_polls += 1
                    if (
                        self.max_empty_polls is not None
                        and empty_polls >= self.max_empty_polls
                    ):
                        return
                    self.clock.sleep(self.poll_interval)
                continue
            empty_polls = 0
            batch: List[BGPStreamRecord] = []
            with _metrics.trace_span("convert"):
                converted = [
                    record
                    for router, message in pairs
                    for record in self.converter.convert(router, message)
                ]
            for record in converted:
                if until_ts is not None and record.time > until_ts:
                    # Overhang of a straddling frame batch (delivered
                    # whole because offsets cannot split a message):
                    # discard it here.  A window-aware source left the
                    # straddling message uncommitted, so the *next*
                    # window re-reads it and these frames are delivered
                    # then — nothing is stranded.  Only a window-unaware
                    # source closes the window here — a window-aware one
                    # may still hold in-window messages on other
                    # partitions and signals the close via
                    # window_drained.
                    if not window_aware:
                        window_closed = True
                    continue
                batch.append(record)
            if batch:
                yield batch
            if window_closed:
                return

    def _poll(self, until_ts: Optional[int] = None):
        """One source poll, run through the breaker and retry policy.

        Offsets commit inside a *successful* poll only, so a retried poll
        neither loses nor re-delivers messages — at-most-once per attempt,
        exactly-once across the retry loop.
        """
        if until_ts is not None:

            def call():
                return self.source.poll(self.max_poll_messages, until_ts=until_ts)
        else:

            def call():
                return self.source.poll(self.max_poll_messages)

        guarded = call
        if self.circuit_breaker is not None:
            breaker = self.circuit_breaker

            def guarded():
                return breaker.call(call)

        if self.retry_policy is None:
            with _metrics.trace_span("poll"):
                return guarded()

        def count_retry(_attempt: int, _exc: BaseException, _delay: float) -> None:
            self.poll_retries += 1

        with _metrics.trace_span("poll"):
            return self.retry_policy.run(guarded, clock=self.clock, on_retry=count_retry)

    def _source_accepts_until_ts(self) -> bool:
        try:
            return "until_ts" in inspect.signature(self.source.poll).parameters
        except (TypeError, ValueError):
            return False


# ---------------------------------------------------------------------------
# The named-interface registry
# ---------------------------------------------------------------------------


def _make_broker_interface(
    broker: Optional[Broker] = None,
    archive: Optional[str] = None,
    archives: Optional[Sequence] = None,
    **options,
) -> BrokerDataInterface:
    if broker is None:
        from repro.collectors.archive import Archive

        paths = list(archives or [])
        if archive is not None:
            paths.append(archive)
        if not paths:
            raise ValueError("the broker interface needs broker=... or archive=...")
        broker = Broker(
            archives=[Archive(p) if isinstance(p, str) else p for p in paths]
        )
    elif archive is not None or archives:
        raise ValueError("pass either broker=... or archive(s)=..., not both")
    return BrokerDataInterface(broker, **options)


def _make_csvfile_interface(path: Optional[str] = None, **options) -> CSVFileDataInterface:
    csv_path = path or options.pop("csv_path", None)
    if csv_path is None:
        raise ValueError("the csvfile interface needs path=...")
    return CSVFileDataInterface(csv_path, **options)


def _make_sqlite_interface(path: Optional[str] = None, **options) -> SQLiteDataInterface:
    db_path = path or options.pop("db_path", None)
    if db_path is None:
        raise ValueError("the sqlite interface needs path=...")
    return SQLiteDataInterface(db_path, **options)


def _make_singlefile_interface(
    path: Optional[str] = None, dump_type: str = "updates", **options
) -> SingleFileDataInterface:
    if path is None:
        raise ValueError("the singlefile interface needs path=...")
    return SingleFileDataInterface(path, dump_type=dump_type, **options)


#: name -> factory.  Factories accept keyword options only.
_INTERFACE_REGISTRY: Dict[str, Callable[..., DataInterface]] = {
    "broker": _make_broker_interface,
    "csvfile": _make_csvfile_interface,
    "sqlite": _make_sqlite_interface,
    "singlefile": _make_singlefile_interface,
    "kafka": LiveDataInterface,
    "bmp": LiveDataInterface,  # alias: the kafka interface carries BMP frames
}


def register_data_interface(name: str, factory: Callable[..., DataInterface]) -> None:
    """Register (or replace) a named data-interface factory."""
    _INTERFACE_REGISTRY[name] = factory


def data_interface_names() -> List[str]:
    """The registered interface names."""
    return sorted(_INTERFACE_REGISTRY)


def make_data_interface(
    name: Union[str, DataInterface], **options
) -> DataInterface:
    """Build a data interface from its registry name (instances pass through).

    This is the paper's named-interface idiom:
    ``BGPStream(data_interface="sqlite", interface_options={"path": ...})``
    next to the instance-passing API.
    """
    if isinstance(name, DataInterface):
        if options:
            raise ValueError("options are only accepted with a registry name")
        return name
    factory = _INTERFACE_REGISTRY.get(name)
    if factory is None:
        raise ValueError(
            f"unknown data interface {name!r}; expected one of {data_interface_names()}"
        )
    return factory(**options)


def _spec_from_record(record) -> DumpFileSpec:
    return DumpFileSpec(
        path=record.path,
        project=record.project,
        collector=record.collector,
        dump_type=record.dump_type,
        timestamp=record.timestamp,
        duration=record.duration,
    )


def _spec_matches(spec: DumpFileSpec, filters: FilterSet) -> bool:
    if filters.projects and spec.project not in filters.projects:
        return False
    if filters.collectors and spec.collector not in filters.collectors:
        return False
    if filters.record_types and spec.dump_type not in filters.record_types:
        return False
    if filters.interval_start is not None and spec.interval_end < filters.interval_start:
        return False
    if filters.interval_end is not None and spec.timestamp > filters.interval_end:
        return False
    return True
