"""Decode-path profiling counters — internal state module.

The public API lives in :mod:`repro.core.profiling`; this module holds the
actual state so the decode hot paths in :mod:`repro.bgp`, :mod:`repro.mrt`
and :mod:`repro.bmp` can import it without pulling in the
:mod:`repro.core` package (which imports those same modules — a cycle).

The lazy decode tier is justified by work *not* done: attributes never
parsed, bytes never copied, elems rejected before materialisation.  These
counters make that visible at runtime instead of only in benchmarks.

Profiling is off by default and the hot paths guard every increment with a
single ``if counters is not None`` check, so the disabled cost is one global
load per site.  Enable with :func:`enable` (or ``bgpreader
--decode-stats``), read a snapshot with :func:`snapshot`.
"""

from __future__ import annotations

from typing import Optional


class DecodeStats:
    """Mutable counter block for one profiling window."""

    __slots__ = (
        "records_scanned",
        "bytes_viewed",
        "bytes_copied",
        "attr_blocks_deferred",
        "attr_blocks_eager",
        "attr_fields_materialised",
        "lazy_elems",
        "elems_materialised",
        "eager_elems",
        "bmp_frames_scanned",
        "intern_hits",
        "intern_misses",
        "segment_hits",
        "segment_misses",
        "segment_corrupt",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    # -- reporting ---------------------------------------------------------

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def merge(self, other: "DecodeStats") -> None:
        for name in self.__slots__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    @property
    def elems_skipped(self) -> int:
        """Lazy elems that were never materialised (filter rejected them)."""
        return max(0, self.lazy_elems - self.elems_materialised)

    def summary_lines(self) -> list:
        """Human-readable report lines (``bgpreader --decode-stats``)."""
        total_bytes = self.bytes_viewed + self.bytes_copied
        viewed_pct = (100.0 * self.bytes_viewed / total_bytes) if total_bytes else 0.0
        lines = [
            f"records scanned:          {self.records_scanned}",
            f"bmp frames scanned:       {self.bmp_frames_scanned}",
            f"bytes viewed (zero-copy): {self.bytes_viewed} ({viewed_pct:.1f}%)",
            f"bytes copied:             {self.bytes_copied}",
            f"attr blocks deferred:     {self.attr_blocks_deferred}",
            f"attr blocks eager:        {self.attr_blocks_eager}",
            f"attr fields materialised: {self.attr_fields_materialised}",
            f"lazy elems created:       {self.lazy_elems}",
            f"elems materialised:       {self.elems_materialised}",
            f"elems skipped (lazy win): {self.elems_skipped}",
            f"eager elems created:      {self.eager_elems}",
            f"intern hits:              {self.intern_hits}",
            f"intern misses:            {self.intern_misses}",
            f"segment cache hits:       {self.segment_hits}",
            f"segment cache misses:     {self.segment_misses}",
            f"segment files corrupt:    {self.segment_corrupt}",
        ]
        return lines


#: The active counter block, or None when profiling is disabled.  Hot sites
#: must guard with ``if profiling.counters is not None``.
counters: Optional[DecodeStats] = None


def enable() -> DecodeStats:
    """Start (or restart) profiling with a fresh counter block."""
    global counters
    counters = DecodeStats()
    return counters


def disable() -> None:
    global counters
    counters = None


def snapshot() -> Optional[DecodeStats]:
    """The current counter block (live, not a copy), or None if disabled."""
    return counters


def record_intern_stats(pool) -> None:
    """Fold an intern pool's hit/miss tallies into the active counters."""
    if counters is None or pool is None:
        return
    stats = pool.stats()
    counters.intern_hits += sum(s["hits"] for s in stats.values())
    counters.intern_misses += sum(s["misses"] for s in stats.values())
