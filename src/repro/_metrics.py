"""Unified telemetry registry — internal state module (PR 10).

The public API lives in :mod:`repro.core.metrics`; this module holds the
actual machinery so the hot paths in every tier (MRT/BMP decode, broker
client, segment cache, Kafka source, resilience primitives, gateway hub)
can import it without pulling in the :mod:`repro.core` package (which
imports those same modules — a cycle), exactly like
:mod:`repro._profiling`.

Design, in the spirit of the PR 7 ``_CounterBlock`` audit:

* **Disabled by default, one global load per site.**  Instrumented code
  guards every update with ``if _metrics.enabled:`` — when metrics are off
  (the default) the whole telemetry tier costs one module-global read per
  instrumented site and nothing else.
* **Per-thread sharded hot paths.**  Counter and histogram children keep
  one tally block per thread, keyed by ``threading.get_ident()``; only the
  owning thread ever writes its block, so an enabled increment is a dict
  probe plus an integer add — no lock, no atomics, and **no lost updates**:
  totals read by scrapes are exact, not approximate (the 8-thread hammer
  test in ``tests/core/test_metrics.py`` asserts this).
* **Prometheus text exposition.**  :meth:`MetricsRegistry.exposition`
  renders the 0.0.4 text format — ``# HELP`` / ``# TYPE`` headers, escaped
  help strings and label values, labels in declaration order, histograms
  with cumulative ``le`` buckets plus ``_sum`` / ``_count``.
* **Collected (bridged) metrics.**  Tiers that predate this registry keep
  their own exact counters (``DecodeStats``, ``InternPool``, hub/subscriber
  tallies).  Rather than double-counting on the hot path, those are
  *bridged*: metrics created with ``collected=True`` are reset at the start
  of every :meth:`~MetricsRegistry.collect` cycle and then repopulated by
  registered collector callbacks that read the live objects.  Object-bound
  collectors are held by weakref, so a hub that goes away stops being
  scraped without explicit deregistration.
* **Pipeline tracing.**  :func:`trace_span` times one pipeline stage
  (``poll`` → ``decode`` → ``convert`` → ``filter`` → ``fanout`` →
  ``deliver``) into a per-stage latency histogram; when metrics are
  disabled it returns a shared no-op span.

Everything here is stdlib-only and thread-safe.
"""

from __future__ import annotations

import json
import re
import threading
import time
from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "enabled",
    "enable",
    "disable",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "counter",
    "gauge",
    "histogram",
    "trace_span",
    "PIPELINE_STAGES",
    "exposition",
    "metrics_snapshot",
    "MetricsLogEmitter",
    "start_metrics_server",
]

#: The global telemetry switch.  Instrumented sites read this module global
#: directly (``if _metrics.enabled: ...``) so the disabled cost is exactly
#: one global load per site.
enabled: bool = False


def enable() -> None:
    """Turn the telemetry tier on (instrumented sites start recording)."""
    global enabled
    enabled = True


def disable() -> None:
    """Turn the telemetry tier off (sites revert to one global load)."""
    global enabled
    enabled = False


# ---------------------------------------------------------------------------
# Name / label validation and text-format escaping
# ---------------------------------------------------------------------------

#: Prometheus metric-name grammar ([a-zA-Z_:][a-zA-Z0-9_:]*).
METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Prometheus label-name grammar (no colons; ``__``-prefixed is reserved).
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def _validate_labelnames(labelnames: Sequence[str]) -> Tuple[str, ...]:
    names = tuple(labelnames)
    for name in names:
        if not LABEL_NAME_RE.match(name) or name.startswith("__"):
            raise ValueError(f"invalid label name {name!r}")
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate label names in {names!r}")
    return names


# ---------------------------------------------------------------------------
# Metric children: the per-series hot paths
# ---------------------------------------------------------------------------


class _CounterChild:
    """One labeled counter series: per-thread shards, exact totals.

    Each thread increments only its own slot of ``_shards`` (keyed by
    thread id), so the enabled hot path is a dict probe plus an add and
    concurrent threads can never lose each other's updates.  ``set_total``
    is the bridge path for collector callbacks mirroring an external
    counter — it replaces the value wholesale.
    """

    __slots__ = ("_shards", "_collected")

    def __init__(self) -> None:
        self._shards: Dict[int, float] = {}
        self._collected: Optional[float] = None

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        shards = self._shards
        ident = threading.get_ident()
        shards[ident] = shards.get(ident, 0) + amount

    def set_total(self, value: float) -> None:
        """Bridge an externally-maintained total (collector callbacks)."""
        self._collected = value

    def add_total(self, value: float) -> None:
        """Accumulate into the bridged total (multi-instance collectors)."""
        self._collected = (self._collected or 0) + value

    def value(self) -> float:
        total = sum(list(self._shards.values()))
        if self._collected is not None:
            total += self._collected
        return total

    def _reset(self) -> None:
        self._shards = {}
        self._collected = None


class _GaugeChild:
    """One labeled gauge series (a plain last-write-wins cell)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        self._value = 0.0


class _HistogramShard:
    """Per-thread histogram tallies: bucket counts plus the running sum."""

    __slots__ = ("counts", "total")

    def __init__(self, nbuckets: int) -> None:
        self.counts = [0] * nbuckets
        self.total = 0.0


class _HistogramChild:
    """One labeled histogram series: sharded observe, cumulative render."""

    __slots__ = ("_uppers", "_shards")

    def __init__(self, uppers: Sequence[float]) -> None:
        self._uppers = list(uppers)
        self._shards: Dict[int, _HistogramShard] = {}

    def observe(self, value: float) -> None:
        shards = self._shards
        ident = threading.get_ident()
        shard = shards.get(ident)
        if shard is None:
            shard = shards[ident] = _HistogramShard(len(self._uppers) + 1)
        # ``le`` buckets: the observation lands in the first bucket whose
        # upper bound is >= value (bisect_left keeps equality inclusive);
        # past every bound it lands in the +Inf overflow slot.
        shard.counts[bisect_left(self._uppers, value)] += 1
        shard.total += value

    def snapshot(self) -> Tuple[List[int], float, int]:
        """(per-bucket counts incl. +Inf, sum, total count) — exact totals."""
        counts = [0] * (len(self._uppers) + 1)
        total = 0.0
        for shard in list(self._shards.values()):
            for index, count in enumerate(shard.counts):
                counts[index] += count
            total += shard.total
        return counts, total, sum(counts)

    def value(self) -> float:
        return self.snapshot()[2]

    def _reset(self) -> None:
        self._shards = {}


# ---------------------------------------------------------------------------
# Metric families
# ---------------------------------------------------------------------------


class Metric:
    """Base class of one metric family: a name, help text and children.

    A family without labels owns exactly one (anonymous) child, created
    eagerly so the series is always present in the exposition (a scrape of
    an idle process shows explicit zeros, not absent metrics).  A labeled
    family creates children on first use via :meth:`labels`.
    """

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        collected: bool = False,
    ) -> None:
        if not METRIC_NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.labelnames = _validate_labelnames(labelnames)
        #: Collected metrics are reset at the start of every collect cycle
        #: and repopulated by collector callbacks bridging live objects.
        self.collected = collected
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}
        if not self.labelnames:
            self._children[()] = self._new_child()

    def _new_child(self):
        raise NotImplementedError

    def labels(self, *values, **kwargs):
        """The child series for one label-value combination."""
        if kwargs:
            if values:
                raise ValueError("pass label values positionally or by name, not both")
            try:
                values = tuple(str(kwargs.pop(name)) for name in self.labelnames)
            except KeyError as exc:
                raise ValueError(f"missing label {exc.args[0]!r} for {self.name}")
            if kwargs:
                raise ValueError(f"unknown labels {sorted(kwargs)!r} for {self.name}")
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} takes {len(self.labelnames)} label(s) "
                f"{self.labelnames!r}, got {len(values)}"
            )
        child = self._children.get(values)
        if child is None:
            with self._lock:
                child = self._children.setdefault(values, self._new_child())
        return child

    def _resolve(self, labels: Dict[str, str]):
        return self.labels(**labels) if labels else self.labels()

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        """(label values, child) pairs in insertion order (stable render)."""
        with self._lock:
            return list(self._children.items())

    def reset(self) -> None:
        """Drop labeled children and zero the rest (collect-cycle reset)."""
        with self._lock:
            if self.labelnames:
                self._children = {}
            else:
                for child in self._children.values():
                    child._reset()

    def _label_text(self, values: Tuple[str, ...], extra: str = "") -> str:
        pairs = [
            f'{name}="{_escape_label_value(value)}"'
            for name, value in zip(self.labelnames, values)
        ]
        if extra:
            pairs.append(extra)
        return "{" + ",".join(pairs) + "}" if pairs else ""

    def render(self, lines: List[str]) -> None:
        """Append this family's exposition lines (HELP/TYPE + samples)."""
        lines.append(f"# HELP {self.name} {_escape_help(self.help)}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for values, child in self.children():
            lines.append(f"{self.name}{self._label_text(values)} {_format_value(child.value())}")

    def sample_dict(self) -> Dict[str, float]:
        """``{label-suffix: value}`` for :func:`metrics_snapshot`."""
        return {
            self._label_text(values) or "": child.value()
            for values, child in self.children()
        }


class Counter(Metric):
    """A monotonically increasing metric family (name must end ``_total``)."""

    kind = "counter"

    def __init__(self, name, help, labelnames=(), collected=False) -> None:
        if not name.endswith("_total"):
            raise ValueError(f"counter {name!r} must end with '_total'")
        super().__init__(name, help, labelnames, collected)

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1, **labels) -> None:
        self._resolve(labels).inc(amount)

    def set_total(self, value: float, **labels) -> None:
        """Bridge an external total into this family (collector path)."""
        self._resolve(labels).set_total(value)

    def add_total(self, value: float, **labels) -> None:
        """Accumulate an external total (summing over several instances)."""
        self._resolve(labels).add_total(value)


class Gauge(Metric):
    """A metric family whose value can go up and down (or be sampled)."""

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float, **labels) -> None:
        self._resolve(labels).set(value)

    def inc(self, amount: float = 1, **labels) -> None:
        self._resolve(labels).inc(amount)

    def dec(self, amount: float = 1, **labels) -> None:
        self._resolve(labels).dec(amount)


class Histogram(Metric):
    """A bucketed distribution family (Prometheus cumulative ``le`` form)."""

    kind = "histogram"

    #: The prometheus_client default bucket ladder.
    DEFAULT_BUCKETS = (
        0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    )

    def __init__(
        self, name, help, labelnames=(), buckets=None, collected=False
    ) -> None:
        uppers = list(buckets if buckets is not None else self.DEFAULT_BUCKETS)
        if not uppers:
            raise ValueError("a histogram needs at least one bucket")
        if sorted(uppers) != uppers or len(set(uppers)) != len(uppers):
            raise ValueError("histogram buckets must be sorted and distinct")
        if uppers and uppers[-1] == float("inf"):
            uppers = uppers[:-1]  # +Inf is implicit
        self.buckets = tuple(uppers)
        super().__init__(name, help, labelnames, collected)

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float, **labels) -> None:
        self._resolve(labels).observe(value)

    def render(self, lines: List[str]) -> None:
        lines.append(f"# HELP {self.name} {_escape_help(self.help)}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for values, child in self.children():
            counts, total, count = child.snapshot()
            cumulative = 0
            for upper, bucket_count in zip(self.buckets, counts):
                cumulative += bucket_count
                extra = f'le="{_format_value(upper)}"'
                lines.append(
                    f"{self.name}_bucket{self._label_text(values, extra)} {cumulative}"
                )
            inf_label = 'le="+Inf"'
            lines.append(f"{self.name}_bucket{self._label_text(values, inf_label)} {count}")
            lines.append(f"{self.name}_sum{self._label_text(values)} {_format_value(total)}")
            lines.append(f"{self.name}_count{self._label_text(values)} {count}")

    def sample_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for values, child in self.children():
            counts, total, count = child.snapshot()
            key = self._label_text(values) or ""
            out[key] = count
            out[key + ":sum"] = total
        return out


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------


class MetricsRegistry:
    """A named collection of metric families plus collector callbacks.

    Registration enforces unique names (``tools/check_metrics.py`` re-walks
    the registry in CI as a belt-and-braces gate).  Collector callbacks run
    at the start of every :meth:`collect` so bridged metrics reflect the
    live objects at scrape time; object-bound collectors are weakly
    referenced and pruned automatically when their owner is garbage
    collected.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}
        #: (weakref-or-None, callback) pairs; callback takes the owner (or
        #: no argument when unbound).
        self._collectors: List[Tuple[Optional[object], Callable]] = []

    # -- registration ------------------------------------------------------

    def register(self, metric: Metric) -> Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                raise ValueError(f"duplicate metric name {metric.name!r}")
            self._metrics[metric.name] = metric
        return metric

    def counter(self, name, help, labelnames=(), collected=False) -> Counter:
        """Create and register a :class:`Counter`."""
        return self.register(Counter(name, help, labelnames, collected=collected))

    def gauge(self, name, help, labelnames=(), collected=False) -> Gauge:
        """Create and register a :class:`Gauge`."""
        return self.register(Gauge(name, help, labelnames, collected=collected))

    def histogram(self, name, help, labelnames=(), buckets=None, collected=False) -> Histogram:
        """Create and register a :class:`Histogram`."""
        return self.register(
            Histogram(name, help, labelnames, buckets=buckets, collected=collected)
        )

    def metrics(self) -> List[Metric]:
        """Every registered family, sorted by name (stable exposition)."""
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def get(self, name: str) -> Optional[Metric]:
        """The registered family called ``name``, or None."""
        with self._lock:
            return self._metrics.get(name)

    # -- collectors --------------------------------------------------------

    def add_collector(self, callback: Callable, owner: Optional[object] = None) -> None:
        """Run ``callback`` at the start of every collect cycle.

        With an ``owner`` the callback is invoked as ``callback(owner)``
        and the registration lives exactly as long as the owner does (a
        weak reference; dead owners are pruned silently) — instances like
        hubs and servers register themselves this way and never need to
        deregister.
        """
        import weakref

        ref = weakref.ref(owner) if owner is not None else None
        with self._lock:
            self._collectors.append((ref, callback))

    def remove_collector(self, callback: Callable) -> None:
        """Drop a previously added collector callback."""
        with self._lock:
            self._collectors = [
                (ref, cb) for ref, cb in self._collectors if cb is not callback
            ]

    def collect(self) -> List[Metric]:
        """Reset bridged metrics, run collectors, return the families."""
        families = self.metrics()
        for metric in families:
            if metric.collected:
                metric.reset()
        with self._lock:
            collectors = list(self._collectors)
        alive: List[Tuple[Optional[object], Callable]] = []
        for ref, callback in collectors:
            if ref is None:
                callback()
                alive.append((ref, callback))
                continue
            owner = ref()
            if owner is None:
                continue  # pruned: the instance is gone
            callback(owner)
            alive.append((ref, callback))
        if len(alive) != len(collectors):
            with self._lock:
                current = {id(cb) for _ref, cb in alive}
                self._collectors = [
                    (ref, cb) for ref, cb in self._collectors if id(cb) in current
                ]
        return families

    # -- output surfaces ---------------------------------------------------

    def exposition(self) -> str:
        """The Prometheus 0.0.4 text exposition of every family."""
        lines: List[str] = []
        for metric in self.collect():
            metric.render(lines)
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """``{metric name: {label suffix: value}}`` over every family."""
        return {metric.name: metric.sample_dict() for metric in self.collect()}


# ---------------------------------------------------------------------------
# The process-wide default registry and its convenience constructors
# ---------------------------------------------------------------------------

_default_registry = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry every tier registers into."""
    return _default_registry


def counter(name, help, labelnames=(), collected=False) -> Counter:
    """Register a :class:`Counter` on the default registry."""
    return _default_registry.counter(name, help, labelnames, collected=collected)


def gauge(name, help, labelnames=(), collected=False) -> Gauge:
    """Register a :class:`Gauge` on the default registry."""
    return _default_registry.gauge(name, help, labelnames, collected=collected)


def histogram(name, help, labelnames=(), buckets=None, collected=False) -> Histogram:
    """Register a :class:`Histogram` on the default registry."""
    return _default_registry.histogram(
        name, help, labelnames, buckets=buckets, collected=collected
    )


def exposition() -> str:
    """The default registry's Prometheus text exposition."""
    return _default_registry.exposition()


def metrics_snapshot() -> Dict[str, Dict[str, float]]:
    """A plain-dict snapshot of the default registry (headless replays)."""
    return _default_registry.snapshot()


# ---------------------------------------------------------------------------
# Pipeline tracing
# ---------------------------------------------------------------------------

#: The pipeline stages the span tracer distinguishes, in data-flow order.
PIPELINE_STAGES = ("poll", "decode", "convert", "filter", "fanout", "deliver")

#: Latency ladder tuned for in-process pipeline stages (sub-ms to seconds).
STAGE_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

stage_latency = histogram(
    "repro_stage_latency_seconds",
    "Wall-clock latency of one pipeline stage execution "
    "(poll/decode/convert/filter/fanout/deliver).",
    labelnames=("stage",),
    buckets=STAGE_BUCKETS,
)

#: Pre-resolved children: the hot path pays one dict probe, not a labels()
#: validation, per span.
_STAGE_CHILDREN = {stage: stage_latency.labels(stage) for stage in PIPELINE_STAGES}


class _Span:
    """A live tracing span: times enter→exit into a stage histogram."""

    __slots__ = ("_child", "_start")

    def __init__(self, child: _HistogramChild) -> None:
        self._child = child
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._child.observe(time.perf_counter() - self._start)


class _NoopSpan:
    """The shared do-nothing span handed out while metrics are disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


def trace_span(stage: str):
    """A context manager timing one pipeline stage execution.

    ``with trace_span("decode"): ...`` feeds the elapsed wall-clock time
    into ``repro_stage_latency_seconds{stage="decode"}``.  While metrics
    are disabled this returns a shared no-op span, so an un-guarded call
    site costs two empty method calls; hot loops should still guard with
    ``if _metrics.enabled:`` for the one-global-load discipline.
    """
    if not enabled:
        return _NOOP_SPAN
    child = _STAGE_CHILDREN.get(stage)
    if child is None:
        child = stage_latency.labels(stage)
        _STAGE_CHILDREN[stage] = child
    return _Span(child)


# ---------------------------------------------------------------------------
# Bridged tiers: decode profiling counters and the intern pool
# ---------------------------------------------------------------------------

decode_records_scanned = counter(
    "repro_decode_records_scanned_total",
    "MRT records scanned by the decode tier (populated while decode "
    "profiling is enabled; see repro.core.profiling).",
    collected=True,
)
decode_frames_scanned = counter(
    "repro_decode_bmp_frames_scanned_total",
    "BMP frames scanned by the live decode tier.",
    collected=True,
)
decode_bytes = counter(
    "repro_decode_bytes_total",
    "Bytes handled by the decode tier, split into zero-copy views vs copies.",
    labelnames=("kind",),
    collected=True,
)
decode_attr_blocks = counter(
    "repro_decode_attr_blocks_total",
    "Path-attribute blocks deferred (lazy) vs decoded eagerly.",
    labelnames=("kind",),
    collected=True,
)
decode_elems = counter(
    "repro_decode_elems_total",
    "Elems created lazily, materialised on read, or built eagerly.",
    labelnames=("kind",),
    collected=True,
)
intern_operations = counter(
    "repro_intern_operations_total",
    "Intern-pool probes of the process-wide parse pool by kind and outcome.",
    labelnames=("kind", "result"),
    collected=True,
)
intern_entries = gauge(
    "repro_intern_entries",
    "Canonical entries resident in the process-wide intern pool, per kind.",
    labelnames=("kind",),
    collected=True,
)


def _collect_decode() -> None:
    """Bridge :mod:`repro._profiling` counters into the decode metrics."""
    from repro import _profiling

    counters = _profiling.counters
    if counters is None:
        zero = _profiling.DecodeStats()
        counters = zero
    decode_records_scanned.set_total(counters.records_scanned)
    decode_frames_scanned.set_total(counters.bmp_frames_scanned)
    decode_bytes.set_total(counters.bytes_viewed, kind="viewed")
    decode_bytes.set_total(counters.bytes_copied, kind="copied")
    decode_attr_blocks.set_total(counters.attr_blocks_deferred, kind="deferred")
    decode_attr_blocks.set_total(counters.attr_blocks_eager, kind="eager")
    decode_elems.set_total(counters.lazy_elems, kind="lazy")
    decode_elems.set_total(counters.elems_materialised, kind="materialised")
    decode_elems.set_total(counters.eager_elems, kind="eager")


def _collect_intern() -> None:
    """Bridge the process-wide intern pool's exact tallies (if it exists)."""
    import repro.core.intern as intern_module

    pool = intern_module._default_pool
    if pool is None:
        return
    for kind, stats in pool.stats().items():
        intern_operations.set_total(stats["hits"], kind=kind, result="hit")
        intern_operations.set_total(stats["misses"], kind=kind, result="miss")
        intern_operations.set_total(stats["overflow"], kind=kind, result="overflow")
        intern_entries.set(stats["size"], kind=kind)


_default_registry.add_collector(_collect_decode)
_default_registry.add_collector(_collect_intern)


# ---------------------------------------------------------------------------
# Output plumbing: the scrape server and the structured-log emitter
# ---------------------------------------------------------------------------


class _MetricsServer:
    """A tiny stdlib HTTP scrape server bound to one registry.

    Serves ``GET /metrics`` (and ``/``) with the text exposition from a
    daemon thread; anything else is a 404.  Built on
    ``http.server.ThreadingHTTPServer`` — no dependencies, good enough for
    a scrape endpoint that answers one request every few seconds.
    """

    def __init__(self, host: str, port: int, registry: MetricsRegistry) -> None:
        import http.server

        outer = self

        class Handler(http.server.BaseHTTPRequestHandler):
            """GET /metrics (and /) → the registry's text exposition."""

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.split("?", 1)[0] not in ("/metrics", "/"):
                    self.send_error(404)
                    return
                body = outer.registry.exposition().encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: object) -> None:
                pass  # a scrape endpoint must not chat on stderr

        self.registry = registry
        self._httpd = http.server.ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True, name="metrics-server"
        )
        self._thread.start()

    def close(self) -> None:
        """Stop serving and release the socket."""
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=2.0)


def start_metrics_server(
    port: int, host: str = "127.0.0.1", registry: Optional[MetricsRegistry] = None
) -> _MetricsServer:
    """Serve ``GET /metrics`` on ``host:port`` from a daemon thread.

    ``port=0`` picks an ephemeral port (read it back from ``.port``).
    This is the ``--metrics-port`` surface of ``bgpreader`` and
    ``python -m repro.gateway``; embedders can call it directly.
    """
    return _MetricsServer(host, port, registry or _default_registry)


class MetricsLogEmitter:
    """Periodically write registry snapshots as JSON lines (headless runs).

    A replay with no scrape endpoint still wants observability: the emitter
    writes one ``{"event": "metrics", "elapsed": ..., "metrics": {...}}``
    JSON object per line to ``out`` every ``interval`` seconds from a
    daemon thread, plus a final line on :meth:`stop`.  Histograms are
    summarised as their count and sum.
    """

    def __init__(
        self,
        out,
        interval: float = 10.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.out = out
        self.interval = interval
        self.registry = registry or _default_registry
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at = time.monotonic()
        self.emitted = 0

    def emit(self) -> None:
        """Write one snapshot line immediately."""
        body = {
            "event": "metrics",
            "elapsed": round(time.monotonic() - self._started_at, 3),
            "metrics": self.registry.snapshot(),
        }
        print(json.dumps(body, sort_keys=True), file=self.out, flush=True)
        self.emitted += 1

    def start(self) -> "MetricsLogEmitter":
        """Start the periodic emission thread."""
        if self._thread is not None:
            raise RuntimeError("emitter already started")

        def loop() -> None:
            while not self._stop.wait(self.interval):
                self.emit()

        self._thread = threading.Thread(target=loop, daemon=True, name="metrics-log")
        self._thread.start()
        return self

    def stop(self, final: bool = True) -> None:
        """Stop the thread; by default emit one final snapshot line."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        if final:
            self.emit()
