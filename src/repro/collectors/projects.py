"""Collector project parameters (RouteViews and RIPE RIS).

The two projects differ in dump periodicity (§2 of the paper): RouteViews
saves a RIB dump every 2 hours and an Updates dump every 15 minutes; RIPE
RIS every 8 hours and every 5 minutes.  RIPE RIS collectors additionally
dump per-VP session state messages, which RouteViews collectors do not — a
distinction the paper's RT plugin has to work around (§6.2.1, footnote 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class ProjectSpec:
    """Static description of a collector project."""

    name: str
    rib_period: int  # seconds between RIB dumps
    updates_period: int  # seconds covered by one Updates dump
    collector_prefix: str  # collectors are named <prefix><n>
    dumps_state_messages: bool
    #: Approximate seconds a collector needs to walk its RIB while dumping
    #: (RIB record timestamps spread over this window).
    rib_dump_duration: int = 120

    def collector_name(self, index: int) -> str:
        return f"{self.collector_prefix}{index}"


ROUTEVIEWS = ProjectSpec(
    name="routeviews",
    rib_period=2 * 3600,
    updates_period=15 * 60,
    collector_prefix="route-views",
    dumps_state_messages=False,
)

RIPE_RIS = ProjectSpec(
    name="ris",
    rib_period=8 * 3600,
    updates_period=5 * 60,
    collector_prefix="rrc",
    dumps_state_messages=True,
)

#: Projects by name, as the stream filters refer to them.
PROJECTS: Dict[str, ProjectSpec] = {
    ROUTEVIEWS.name: ROUTEVIEWS,
    RIPE_RIS.name: RIPE_RIS,
}


def project_for_collector(collector: str) -> ProjectSpec:
    """Infer the project a collector belongs to from its name."""
    for spec in PROJECTS.values():
        if collector.startswith(spec.collector_prefix):
            return spec
    raise KeyError(f"unknown collector {collector!r}")
