"""The data-provider archive: where collectors publish their dump files.

RouteViews and RIPE RIS expose HTTP directory trees of MRT files; the
BGPStream Broker continuously scrapes them and indexes new files.  Here the
archive is a local directory tree laid out the same way, plus a JSON-lines
index the crawler reads (standing in for scraping directory listings).

Publication latency matters for live processing: the paper measured that in
addition to the file-rotation delay, files appear on the public archives
with a small variable delay, with 99 % of Updates dumps available within 20
minutes of the dump start (§2).  Each published file therefore records an
``available_at`` timestamp drawn from a configurable latency model, and the
Broker only reveals files whose ``available_at`` has passed.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import asdict, dataclass
from datetime import datetime, timezone
from typing import Iterator, List, Optional


@dataclass(frozen=True)
class DumpFile:
    """Metadata describing one published dump file."""

    project: str
    collector: str
    dump_type: str  # "ribs" or "updates"
    timestamp: int  # nominal dump start time
    duration: int  # seconds of data the dump covers
    path: str  # absolute path of the MRT file
    available_at: float  # when the file became visible on the archive

    @property
    def interval_end(self) -> int:
        return self.timestamp + self.duration

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "DumpFile":
        return cls(**json.loads(line))


class PublicationDelayModel:
    """Latency between the end of a dump interval and its public availability.

    Modelled as a base delay plus a long-ish tail, calibrated so that ~99 %
    of dumps are available within ``p99`` seconds of the dump *start* for a
    dump of ``reference_duration`` seconds — matching the paper's "99 % of
    Updates dumps available in under 20 minutes" observation.
    """

    def __init__(
        self,
        base_delay: float = 30.0,
        mean_extra: float = 90.0,
        p99: float = 20 * 60,
        reference_duration: int = 15 * 60,
        seed: int = 0,
    ) -> None:
        self.base_delay = base_delay
        self.mean_extra = mean_extra
        self.p99 = p99
        self.reference_duration = reference_duration
        self._rng = random.Random(seed)

    def sample(self, dump: "DumpFile" | None = None, duration: int | None = None) -> float:
        """Delay (seconds) after the dump interval *ends* until publication."""
        duration = duration if duration is not None else (
            dump.duration if dump is not None else self.reference_duration
        )
        extra = self._rng.expovariate(1.0 / self.mean_extra)
        # Cap the tail so that start-to-available stays below p99 for the
        # overwhelming majority of reference-duration dumps, with a rare
        # outlier beyond it (about 1 %).
        ceiling = max(0.0, self.p99 - self.reference_duration - self.base_delay)
        if self._rng.random() > 0.01:
            extra = min(extra, ceiling)
        else:
            extra = ceiling + self._rng.expovariate(1.0 / self.mean_extra)
        return self.base_delay + extra


class Archive:
    """A local, RouteViews/RIS-like archive of MRT dump files."""

    INDEX_NAME = "index.jsonl"

    def __init__(
        self,
        root: str,
        delay_model: Optional[PublicationDelayModel] = None,
    ) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.delay_model = delay_model or PublicationDelayModel()
        self._entries: List[DumpFile] = []
        self._load_index()

    # -- layout --------------------------------------------------------------

    def path_for(
        self, project: str, collector: str, dump_type: str, timestamp: int
    ) -> str:
        """Absolute path where a dump with these coordinates is stored.

        Mirrors the ``<collector>/<type>/<YYYY.MM>/<type>.<YYYYMMDD.HHMM>``
        convention of the real archives (with a project directory on top).
        """
        moment = datetime.fromtimestamp(timestamp, tz=timezone.utc)
        month_dir = moment.strftime("%Y.%m")
        stamp = moment.strftime("%Y%m%d.%H%M")
        filename = f"{dump_type}.{stamp}.mrt.gz"
        return os.path.join(self.root, project, collector, dump_type, month_dir, filename)

    # -- publication ----------------------------------------------------------

    def publish(
        self,
        project: str,
        collector: str,
        dump_type: str,
        timestamp: int,
        duration: int,
        path: str,
        available_at: Optional[float] = None,
    ) -> DumpFile:
        """Register a dump file that has been written to ``path``."""
        if available_at is None:
            delay = self.delay_model.sample(duration=duration)
            available_at = timestamp + duration + delay
        entry = DumpFile(
            project=project,
            collector=collector,
            dump_type=dump_type,
            timestamp=timestamp,
            duration=duration,
            path=os.path.abspath(path),
            available_at=float(available_at),
        )
        self._entries.append(entry)
        self._append_index(entry)
        return entry

    # -- queries (used by the Broker crawler) ---------------------------------

    def entries(self, visible_at: Optional[float] = None) -> List[DumpFile]:
        """All published files, optionally restricted to those already visible."""
        if visible_at is None:
            return list(self._entries)
        return [e for e in self._entries if e.available_at <= visible_at]

    def collectors(self, project: Optional[str] = None) -> List[str]:
        return sorted(
            {e.collector for e in self._entries if project is None or e.project == project}
        )

    def projects(self) -> List[str]:
        return sorted({e.project for e in self._entries})

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[DumpFile]:
        return iter(self._entries)

    # -- persistence -----------------------------------------------------------

    @property
    def index_path(self) -> str:
        return os.path.join(self.root, self.INDEX_NAME)

    def _append_index(self, entry: DumpFile) -> None:
        with open(self.index_path, "a", encoding="utf-8") as handle:
            handle.write(entry.to_json() + "\n")

    def _load_index(self) -> None:
        if not os.path.exists(self.index_path):
            return
        with open(self.index_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    self._entries.append(DumpFile.from_json(line))
