"""Scenario generation: from a topology + events to a populated archive.

A :class:`Scenario` ties together the synthetic topology, the policy-routing
ground truth, a set of collectors with their vantage points, and an event
timeline.  ``generate()`` walks simulated time and makes every collector
write genuine MRT RIB and Updates dumps into an archive, with the project's
own periodicities and realistic publication latency — producing exactly the
kind of heterogeneous, distributed dataset libBGPStream is designed to
consume.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bgp.community import CommunitySet
from repro.bgp.fsm import SessionState
from repro.bgp.prefix import Prefix
from repro.collectors.archive import Archive, DumpFile
from repro.collectors.collector import Collector, UpdateEntry
from repro.collectors.events import EventTimeline, OutageEvent, RTBHEvent, RoutingEvent
from repro.collectors.projects import PROJECTS
from repro.collectors.routing import Route, RouteComputer
from repro.collectors.topology import ASRole, ASTopology, TopologyConfig, generate_topology
from repro.collectors.vantage_point import VantagePoint
from repro.utils.timeutil import iter_bins


@dataclass
class ScenarioConfig:
    """Parameters of a collection scenario."""

    start: int = 1_451_606_400  # 2016-01-01 00:00 UTC
    duration: int = 4 * 3600
    topology: TopologyConfig = field(default_factory=TopologyConfig)
    #: Number of collectors to instantiate per project.
    collectors_per_project: Dict[str, int] = field(
        default_factory=lambda: {"routeviews": 1, "ris": 1}
    )
    vps_per_collector: int = 8
    full_feed_fraction: float = 0.7
    #: Mean background (redundant) re-announcements per VP per hour.
    churn_updates_per_vp_per_hour: float = 60.0
    compress_dumps: bool = True
    include_ipv6: bool = True
    seed: int = 0

    @property
    def end(self) -> int:
        return self.start + self.duration


class Scenario:
    """A fully-instantiated scenario ready to generate dumps."""

    def __init__(
        self,
        config: ScenarioConfig,
        topology: ASTopology,
        collectors: List[Collector],
        timeline: EventTimeline,
    ) -> None:
        self.config = config
        self.topology = topology
        self.collectors = collectors
        self.timeline = timeline
        self.computer = RouteComputer(topology)
        self._rng = random.Random(config.seed ^ 0x5CE7A510)
        self._base_tables: Dict[Tuple[str, int], Dict[Prefix, Route]] = {}

    # -- convenience accessors -------------------------------------------------

    @property
    def start(self) -> int:
        return self.config.start

    @property
    def end(self) -> int:
        return self.config.end

    def collector(self, name: str) -> Collector:
        for collector in self.collectors:
            if collector.name == name:
                return collector
        raise KeyError(name)

    def all_vps(self) -> List[Tuple[Collector, VantagePoint]]:
        return [(c, vp) for c in self.collectors for vp in c.vps]

    # -- routing state over time -------------------------------------------------

    def base_table(self, collector: Collector, vp: VantagePoint) -> Dict[Prefix, Route]:
        """The VP's Adj-RIB-out with no events active (cached)."""
        key = (collector.name, vp.asn)
        if key not in self._base_tables:
            self._base_tables[key] = vp.adj_rib_out(self.computer)
        return self._base_tables[key]

    def route_at(
        self, vp: VantagePoint, prefix: Prefix, timestamp: int
    ) -> Optional[Route]:
        """The route ``vp`` exports for ``prefix`` at ``timestamp`` (or None).

        Only consulted for event-affected prefixes; unaffected prefixes keep
        their base-table route throughout the scenario.
        """
        excluded = self.timeline.excluded_asns_at(timestamp)
        if prefix in self.timeline.withdrawn_prefixes_at(timestamp):
            return None

        # Remotely-triggered black-holing has per-VP visibility scope.
        for event in self.timeline.rtbh_events_at(timestamp):
            if event.blackhole_prefix == prefix:
                return self._rtbh_route(vp, event, excluded)

        candidates: List[Route] = []
        base_origin = self.topology.origin_of(prefix)
        if base_origin is not None and base_origin not in excluded:
            route = self.computer.route(vp.asn, prefix, origin=base_origin, excluded=excluded)
            if route is not None:
                candidates.append(route)
        extra_origin = self.timeline.extra_origins_at(timestamp).get(prefix)
        if extra_origin is not None and extra_origin not in excluded:
            route = self.computer.route(vp.asn, prefix, origin=extra_origin, excluded=excluded)
            if route is not None:
                candidates.append(route)
        if not candidates:
            return None
        best = candidates[0]
        for candidate in candidates[1:]:
            if _route_preferred(candidate, best):
                best = candidate
        if not vp.exports(best):
            return None
        return best

    def table_at(
        self, collector: Collector, vp: VantagePoint, timestamp: int
    ) -> Dict[Prefix, Route]:
        """The VP's full Adj-RIB-out at ``timestamp`` (base + event deltas)."""
        table = dict(self.base_table(collector, vp))
        for prefix in self.timeline.affected_prefixes():
            route = self.route_at(vp, prefix, timestamp)
            if route is None:
                table.pop(prefix, None)
            else:
                table[prefix] = route
        return table

    def vp_session_down(self, collector: Collector, vp: VantagePoint, timestamp: int) -> bool:
        for event in self.timeline.session_resets(collector.name):
            if event.vp_asn == vp.asn and event.active_at(timestamp):
                return True
        return False

    def _rtbh_route(
        self, vp: VantagePoint, event: RTBHEvent, excluded: Iterable[int]
    ) -> Optional[Route]:
        """The black-holed /32 as seen (or not) by ``vp``."""
        visible = False
        if vp.asn in event.provider_asns or vp.asn in event.propagating_providers:
            visible = True
        else:
            path = self.computer.paths_to_origin(event.customer_asn, excluded).get(vp.asn)
            if path is not None and any(
                asn in event.propagating_providers for asn in path.asns
            ):
                visible = True
        if not visible:
            return None
        base = self.computer.route(
            vp.asn, event.blackhole_prefix, origin=event.customer_asn, excluded=excluded
        )
        if base is None:
            return None
        return Route(
            prefix=base.prefix,
            as_path=base.as_path,
            next_hop=base.next_hop,
            communities=base.communities.union(CommunitySet(event.communities)),
            origin=base.origin,
            route_type=base.route_type,
        )

    # -- update-stream generation ---------------------------------------------------

    def updates_for_collector(self, collector: Collector) -> List[UpdateEntry]:
        """Every update entry a collector receives during the scenario."""
        entries: List[UpdateEntry] = []
        boundaries = self.timeline.boundaries(self.start, self.end)
        rng = random.Random((self.config.seed, collector.name).__hash__() & 0x7FFFFFFF)

        for vp in collector.vps:
            entries.extend(
                self._event_updates_for_vp(collector, vp, boundaries, rng)
            )
            entries.extend(self._churn_updates_for_vp(collector, vp, rng))
            entries.extend(self._session_updates_for_vp(collector, vp))
        entries.sort(key=lambda e: e[0])
        return entries

    def _event_updates_for_vp(
        self,
        collector: Collector,
        vp: VantagePoint,
        boundaries: Sequence[int],
        rng: random.Random,
    ) -> List[UpdateEntry]:
        entries: List[UpdateEntry] = []
        affected = sorted(self.timeline.affected_prefixes())
        if not affected:
            return entries
        current: Dict[Prefix, Optional[Route]] = {}
        base = self.base_table(collector, vp)
        for prefix in affected:
            current[prefix] = self.route_at(vp, prefix, self.start) or base.get(prefix)
        for boundary in boundaries:
            if boundary <= self.start:
                continue
            for prefix in affected:
                new_route = self.route_at(vp, prefix, boundary)
                old_route = current[prefix]
                if _routes_equal(new_route, old_route):
                    continue
                jitter = rng.randint(0, 20)
                timestamp = min(boundary + jitter, self.end)
                if new_route is None:
                    entries.append((timestamp, vp, "withdraw", prefix))
                else:
                    entries.append((timestamp, vp, "announce", new_route))
                current[prefix] = new_route
        return entries

    def _churn_updates_for_vp(
        self, collector: Collector, vp: VantagePoint, rng: random.Random
    ) -> List[UpdateEntry]:
        """Background redundant re-announcements (routing churn)."""
        entries: List[UpdateEntry] = []
        rate = self.config.churn_updates_per_vp_per_hour
        if rate <= 0:
            return entries
        base = self.base_table(collector, vp)
        if not base:
            return entries
        prefixes = sorted(base)
        expected = rate * self.config.duration / 3600.0
        count = max(0, int(rng.gauss(expected, expected ** 0.5))) if expected > 0 else 0
        for _ in range(count):
            timestamp = rng.randint(self.start, self.end - 1)
            prefix = prefixes[rng.randrange(len(prefixes))]
            entries.append((timestamp, vp, "announce", base[prefix]))
        return entries

    def _session_updates_for_vp(
        self, collector: Collector, vp: VantagePoint
    ) -> List[UpdateEntry]:
        """State messages and post-reset table bursts for session resets."""
        entries: List[UpdateEntry] = []
        for event in self.timeline.session_resets(collector.name):
            if event.vp_asn != vp.asn:
                continue
            down, up = event.interval.start, event.interval.end
            entries.append(
                (down, vp, "state", (SessionState.ESTABLISHED, SessionState.IDLE))
            )
            entries.append(
                (up, vp, "state", (SessionState.IDLE, SessionState.ESTABLISHED))
            )
            # The re-established VP re-announces its entire table.
            table = self.table_at(collector, vp, up)
            for offset, prefix in enumerate(sorted(table)):
                entries.append((up + 1 + offset // 200, vp, "announce", table[prefix]))
        return entries

    # -- dump generation ----------------------------------------------------------

    def generate(self, archive: Archive) -> List[DumpFile]:
        """Write every RIB and Updates dump of the scenario into ``archive``."""
        published: List[DumpFile] = []
        for collector in self.collectors:
            published.extend(self._generate_collector(archive, collector))
        return published

    def _generate_collector(self, archive: Archive, collector: Collector) -> List[DumpFile]:
        published: List[DumpFile] = []
        spec = collector.project
        compress = self.config.compress_dumps

        # Updates dumps: bucket the full update stream into dump windows.
        entries = self.updates_for_collector(collector)
        for window_start in iter_bins(self.start, self.end, spec.updates_period):
            window_end = window_start + spec.updates_period
            window_entries = [e for e in entries if window_start <= e[0] < window_end]
            published.append(
                collector.write_updates_dump(
                    archive, window_start, window_entries, compress=compress
                )
            )

        # RIB dumps: snapshot every VP table at each RIB period boundary.
        for rib_time in iter_bins(self.start, self.end, spec.rib_period):
            if rib_time < self.start:
                rib_time = self.start
            tables = {}
            for vp in collector.vps:
                if self.vp_session_down(collector, vp, rib_time):
                    continue
                tables[vp] = self.table_at(collector, vp, rib_time)
            published.append(
                collector.write_rib_dump(archive, rib_time, tables, compress=compress)
            )
        return published


# -----------------------------------------------------------------------------
# Scenario construction helpers
# -----------------------------------------------------------------------------


def build_scenario(
    config: ScenarioConfig | None = None,
    events: Iterable[RoutingEvent] = (),
    topology: ASTopology | None = None,
) -> Scenario:
    """Build a scenario: topology, collectors with VPs, and the event timeline.

    ``events`` may contain :class:`OutageEvent` instances with only a
    ``country`` set; the builder resolves them to the ASes and prefixes of
    that country in the generated topology.
    """
    config = config or ScenarioConfig()
    topology = topology or generate_topology(config.topology)
    rng = random.Random(config.seed)

    collectors = _build_collectors(config, topology, rng)
    timeline = EventTimeline(_resolve_events(events, topology))
    return Scenario(config, topology, collectors, timeline)


def _build_collectors(
    config: ScenarioConfig, topology: ASTopology, rng: random.Random
) -> List[Collector]:
    # Prefer transit and tier-1 ASes as vantage points (as in reality), and
    # never attach the same AS twice to the same collector.
    transit_like = [
        asn
        for asn in topology.asns()
        if topology.node(asn).role in (ASRole.TIER1, ASRole.TRANSIT)
    ]
    stubs = [asn for asn in topology.asns() if topology.node(asn).role == ASRole.STUB]

    collectors: List[Collector] = []
    for project_name, count in sorted(config.collectors_per_project.items()):
        spec = PROJECTS[project_name]
        for index in range(count):
            name = spec.collector_name(index)
            vp_count = min(config.vps_per_collector, len(transit_like) + len(stubs))
            pool = transit_like + stubs
            chosen = rng.sample(pool, vp_count)
            vps = []
            for order, asn in enumerate(sorted(chosen)):
                full_feed = rng.random() < config.full_feed_fraction
                address = f"10.{(asn >> 8) & 0xFF}.{asn & 0xFF}.{order + 1}"
                vps.append(VantagePoint(asn=asn, address=address, full_feed=full_feed))
            bgp_id = f"198.51.{100 + len(collectors)}.1"
            collectors.append(
                Collector(
                    name=name,
                    project=spec,
                    vps=vps,
                    bgp_id=bgp_id,
                    local_address=bgp_id,
                )
            )
    return collectors


def _resolve_events(
    events: Iterable[RoutingEvent], topology: ASTopology
) -> List[RoutingEvent]:
    resolved: List[RoutingEvent] = []
    for event in events:
        if isinstance(event, OutageEvent):
            asns = tuple(event.asns)
            if event.country and not asns:
                asns = tuple(topology.asns_by_country(event.country))
            prefixes = tuple(event.prefixes)
            if not prefixes:
                collected: List[Prefix] = []
                for asn in asns:
                    if asn in topology:
                        collected.extend(topology.node(asn).all_prefixes)
                prefixes = tuple(sorted(collected))
            resolved.append(
                OutageEvent(
                    interval=event.interval,
                    asns=asns,
                    prefixes=prefixes,
                    country=event.country,
                )
            )
        else:
            resolved.append(event)
    return resolved


def _route_preferred(candidate: Route, incumbent: Route) -> bool:
    c_key = (int(candidate.route_type), len(candidate.as_path), candidate.as_path.hops[1:2] or [0])
    i_key = (int(incumbent.route_type), len(incumbent.as_path), incumbent.as_path.hops[1:2] or [0])
    return c_key < i_key


def _routes_equal(a: Optional[Route], b: Optional[Route]) -> bool:
    if a is None or b is None:
        return a is None and b is None
    return (
        a.prefix == b.prefix
        and a.as_path == b.as_path
        and a.next_hop == b.next_hop
        and a.communities == b.communities
    )
