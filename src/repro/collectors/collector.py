"""Route collectors.

A collector (paper §2, Figure 1) is a host that emulates a router,
establishes BGP sessions with vantage points, maintains an image of each
VP's Adj-RIB-out, and periodically dumps (i) a snapshot of all those tables
(RIB dump) and (ii) the update messages received since the last dump
(Updates dump).  Here the collector is responsible for materialising those
dumps as MRT files and publishing them into an :class:`~repro.collectors.
archive.Archive`; the routing content itself is provided by the scenario
generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bgp.fsm import SessionState
from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.collectors.archive import Archive, DumpFile
from repro.collectors.projects import ProjectSpec
from repro.collectors.routing import Route
from repro.collectors.vantage_point import VantagePoint
from repro.mrt.records import (
    BGP4MPMessage,
    BGP4MPStateChange,
    PeerEntry,
)
from repro.mrt.writer import write_rib_dump, write_updates_dump


#: One entry of an Updates dump before serialisation:
#: (timestamp, vp, kind, payload) where kind is "announce" / "withdraw" /
#: "state" and payload is a Route, a Prefix, or a (old, new) state pair.
UpdateEntry = Tuple[int, VantagePoint, str, object]


@dataclass
class Collector:
    """A single route collector of a project."""

    name: str
    project: ProjectSpec
    vps: List[VantagePoint]
    bgp_id: str = "198.51.100.1"
    local_asn: int = 65535
    local_address: str = "198.51.100.1"

    def __post_init__(self) -> None:
        addresses = [vp.address for vp in self.vps]
        if len(addresses) != len(set(addresses)):
            raise ValueError(f"collector {self.name}: duplicate VP addresses")

    # -- peer table ----------------------------------------------------------

    def peer_entries(self) -> List[PeerEntry]:
        """The PEER_INDEX_TABLE entries for this collector's VPs."""
        return [PeerEntry(self.bgp_id, vp.address, vp.asn) for vp in self.vps]

    def peer_index(self, vp: VantagePoint) -> int:
        return self.vps.index(vp)

    def vp_by_asn(self, asn: int) -> Optional[VantagePoint]:
        for vp in self.vps:
            if vp.asn == asn:
                return vp
        return None

    # -- dump generation -------------------------------------------------------

    def write_rib_dump(
        self,
        archive: Archive,
        timestamp: int,
        tables: Mapping[VantagePoint, Mapping[Prefix, Route]],
        compress: bool = True,
        rib_duration: Optional[int] = None,
    ) -> DumpFile:
        """Write one TABLE_DUMP_V2 RIB dump and publish it.

        ``tables`` maps each VP to its Adj-RIB-out snapshot at ``timestamp``.
        Record timestamps are spread over the collector's RIB-walk duration,
        reproducing the skew the RT plugin's E2 handling copes with.
        """
        path = archive.path_for(self.project.name, self.name, "ribs", timestamp)
        peer_tables: Dict[int, Mapping[Prefix, object]] = {}
        for vp, table in tables.items():
            index = self.peer_index(vp)
            peer_tables[index] = {
                prefix: route.to_attributes() for prefix, route in table.items()
            }
        duration = rib_duration if rib_duration is not None else self.project.rib_dump_duration
        total_prefixes = len({p for table in tables.values() for p in table})
        record_timestamps = {}
        if total_prefixes > 1 and duration > 0:
            for sequence in range(total_prefixes):
                record_timestamps[sequence] = timestamp + int(
                    duration * sequence / max(1, total_prefixes - 1)
                )
        write_rib_dump(
            path,
            timestamp,
            self.bgp_id,
            self.peer_entries(),
            peer_tables,
            view_name=self.name,
            compress=compress,
            record_timestamps=record_timestamps,
        )
        return archive.publish(
            self.project.name, self.name, "ribs", timestamp, duration, path
        )

    def write_updates_dump(
        self,
        archive: Archive,
        window_start: int,
        entries: Sequence[UpdateEntry],
        compress: bool = True,
    ) -> DumpFile:
        """Write one Updates dump covering ``[window_start, window_start+period)``."""
        path = archive.path_for(self.project.name, self.name, "updates", window_start)
        messages: List[Tuple[int, object]] = []
        for timestamp, vp, kind, payload in sorted(entries, key=lambda e: e[0]):
            body = self._entry_to_body(vp, kind, payload)
            if body is not None:
                messages.append((timestamp, body))
        write_updates_dump(path, messages, compress=compress)
        return archive.publish(
            self.project.name,
            self.name,
            "updates",
            window_start,
            self.project.updates_period,
            path,
        )

    def _entry_to_body(self, vp: VantagePoint, kind: str, payload: object):
        if kind == "announce":
            route: Route = payload  # type: ignore[assignment]
            update = BGPUpdate(attributes=route.to_attributes())
            if route.prefix.version == 6:
                update.attributes.mp_reach_nlri = [route.prefix]
            else:
                update.announced = [route.prefix]
            return BGP4MPMessage(
                vp.asn, self.local_asn, vp.address, self.local_address, update
            )
        if kind == "withdraw":
            prefix: Prefix = payload  # type: ignore[assignment]
            update = BGPUpdate()
            if prefix.version == 6:
                update.attributes.mp_unreach_nlri = [prefix]
            else:
                update.withdrawn = [prefix]
            return BGP4MPMessage(
                vp.asn, self.local_asn, vp.address, self.local_address, update
            )
        if kind == "state":
            if not self.project.dumps_state_messages:
                return None
            old_state, new_state = payload  # type: ignore[misc]
            return BGP4MPStateChange(
                vp.asn,
                self.local_asn,
                vp.address,
                self.local_address,
                SessionState(old_state),
                SessionState(new_state),
            )
        raise ValueError(f"unknown update entry kind {kind!r}")
