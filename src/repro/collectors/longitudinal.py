"""Longitudinal (multi-year) dataset generation for the Section 5 analyses.

Figure 5 of the paper is built from the midnight RIB dumps of the 15th day
of each month across 15 years: routing-table growth, MOAS sets, transit-AS
fractions and community diversity all need an Internet that *grows* over
time.  This module produces such a dataset: a maximal topology is generated
once, and each monthly snapshot activates a growing share of its ASes,
prefixes, IPv6 adoption and community usage, then writes one RIB dump per
collector into an archive.

The growth model is intentionally simple but preserves the shapes the
analyses measure: near-linear AS growth with a roughly constant IPv4
transit fraction (transit ASes are a fixed share of the allocation order),
later and faster IPv6 adoption concentrated first on transit ASes, a slow
rise in the number of MOAS prefixes, and community usage that expands over
time while some transit ASes keep stripping them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.bgp.prefix import Prefix
from repro.collectors.archive import Archive, DumpFile
from repro.collectors.collector import Collector
from repro.collectors.projects import PROJECTS
from repro.collectors.routing import RouteComputer
from repro.collectors.topology import ASRole, ASTopology, TopologyConfig, generate_topology
from repro.collectors.vantage_point import VantagePoint

#: Seconds in a (nominal) month; monthly snapshots are spaced by this.
MONTH = 30 * 24 * 3600


@dataclass
class LongitudinalConfig:
    """Parameters of the longitudinal dataset."""

    months: int = 48
    start: int = 978_912_000  # 2001-01-08-ish; only relative spacing matters
    topology: TopologyConfig = field(default_factory=lambda: TopologyConfig(
        num_tier1=6, num_transit=36, num_stub=150
    ))
    collectors_per_project: Dict[str, int] = field(
        default_factory=lambda: {"routeviews": 1, "ris": 1}
    )
    vps_per_collector: int = 6
    #: Fraction of the final AS count already present in month 0.
    initial_fraction: float = 0.35
    #: Month (fraction of the timeline) at which IPv6 adoption starts.
    ipv6_start_fraction: float = 0.3
    #: Fraction of stub prefixes that are long-lived MOAS (multi-homed
    #: anycast-style originations) once both origins exist.
    moas_fraction: float = 0.02
    full_feed_fraction: float = 0.7
    seed: int = 0


@dataclass
class MonthlySnapshot:
    """Bookkeeping for one generated month."""

    index: int
    timestamp: int
    active_asns: Tuple[int, ...]
    prefix_count_v4: int
    prefix_count_v6: int
    dumps: List[DumpFile] = field(default_factory=list)


class LongitudinalScenario:
    """Generates monthly RIB dumps over a growing synthetic Internet."""

    def __init__(self, config: Optional[LongitudinalConfig] = None) -> None:
        self.config = config or LongitudinalConfig()
        self._rng = random.Random(self.config.seed)
        #: The maximal topology; monthly snapshots activate subsets of it.
        self.topology = generate_topology(self.config.topology)
        self._asns = self.topology.asns()
        self._activation_order = self._plan_activation_order()
        self._ipv6_month = self._plan_ipv6_adoption()
        self._moas_pairs = self._plan_moas()
        self.collectors = self._build_collectors()
        self.snapshots: List[MonthlySnapshot] = []

    # -- planning --------------------------------------------------------------------

    def _plan_activation_order(self) -> List[int]:
        """ASes ordered by 'birth': providers always precede their customers.

        The generator allocates tier-1s, then transit, then stubs with
        increasing ASNs, so ASN order respects the provider relationship;
        within each role the order is shuffled deterministically to avoid a
        perfectly regular growth pattern.
        """
        tier1 = [a for a in self._asns if self.topology.node(a).role == ASRole.TIER1]
        transit = [a for a in self._asns if self.topology.node(a).role == ASRole.TRANSIT]
        stubs = [a for a in self._asns if self.topology.node(a).role == ASRole.STUB]
        self._rng.shuffle(transit)
        self._rng.shuffle(stubs)
        # Interleave transit and stub births at a fixed ratio so the transit
        # fraction stays roughly constant over time (the Figure 5c shape).
        interleaved: List[int] = []
        ratio = max(1, round(len(stubs) / max(1, len(transit))))
        stub_iter = iter(stubs)
        for asn in transit:
            interleaved.append(asn)
            for _ in range(ratio):
                nxt = next(stub_iter, None)
                if nxt is not None:
                    interleaved.append(nxt)
        interleaved.extend(stub_iter)
        return tier1 + interleaved

    def _plan_ipv6_adoption(self) -> Dict[int, int]:
        """For each AS with IPv6 prefixes, the month it starts announcing them."""
        months = self.config.months
        start_month = int(months * self.config.ipv6_start_fraction)
        adoption: Dict[int, int] = {}
        for asn in self._asns:
            node = self.topology.node(asn)
            if not node.prefixes_v6:
                continue
            # Transit ASes adopt earlier (the paper: IPv6 transit fraction is
            # higher; the edge lags behind).
            if node.role in (ASRole.TIER1, ASRole.TRANSIT):
                month = start_month + self._rng.randint(0, max(1, months // 4))
            else:
                month = start_month + self._rng.randint(months // 6, max(2, months // 2))
            adoption[asn] = min(month, months - 1)
        return adoption

    def _plan_moas(self) -> List[Tuple[Prefix, int, int, int]]:
        """(prefix, primary origin, secondary origin, start month) tuples."""
        stubs = [a for a in self._asns if self.topology.node(a).role == ASRole.STUB]
        pairs: List[Tuple[Prefix, int, int, int]] = []
        for asn in stubs:
            node = self.topology.node(asn)
            for prefix in node.prefixes:
                if self._rng.random() < self.config.moas_fraction:
                    other = self._rng.choice([a for a in stubs if a != asn])
                    start_month = self._rng.randint(1, max(1, self.config.months - 1))
                    pairs.append((prefix, asn, other, start_month))
        return pairs

    def _build_collectors(self) -> List[Collector]:
        transit_like = [
            a
            for a in self._asns
            if self.topology.node(a).role in (ASRole.TIER1, ASRole.TRANSIT)
        ]
        collectors: List[Collector] = []
        for project_name, count in sorted(self.config.collectors_per_project.items()):
            spec = PROJECTS[project_name]
            for index in range(count):
                chosen = self._rng.sample(
                    transit_like, min(self.config.vps_per_collector, len(transit_like))
                )
                vps = []
                for order, asn in enumerate(sorted(chosen)):
                    full_feed = self._rng.random() < self.config.full_feed_fraction
                    vps.append(
                        VantagePoint(
                            asn=asn,
                            address=f"10.{(asn >> 8) & 0xFF}.{asn & 0xFF}.{order + 1}",
                            full_feed=full_feed,
                        )
                    )
                bgp_id = f"198.51.{100 + len(collectors)}.1"
                collectors.append(
                    Collector(spec.collector_name(index), spec, vps, bgp_id=bgp_id,
                              local_address=bgp_id)
                )
        return collectors

    # -- monthly state ------------------------------------------------------------------

    def month_timestamp(self, month: int) -> int:
        return self.config.start + month * MONTH

    def active_asns(self, month: int) -> List[int]:
        months = self.config.months
        fraction = self.config.initial_fraction + (1 - self.config.initial_fraction) * (
            month / max(1, months - 1)
        )
        count = max(1, round(len(self._activation_order) * min(1.0, fraction)))
        active: Set[int] = set(self._activation_order[:count])
        # Close over providers so no active AS is ever orphaned: an AS cannot
        # exist before it has transit.  The closure of a growing prefix is
        # itself growing, so month-over-month monotonicity is preserved.
        frontier = list(active)
        while frontier:
            asn = frontier.pop()
            for provider in self.topology.providers(asn):
                if provider not in active:
                    active.add(provider)
                    frontier.append(provider)
        return sorted(active)

    def monthly_topology(self, month: int) -> ASTopology:
        """The sub-topology of ASes active in ``month`` (with its prefixes)."""
        active = set(self.active_asns(month))
        months = self.config.months
        sub = ASTopology()
        for asn in sorted(active):
            node = self.topology.node(asn)
            # Prefix count grows with AS age (older ASes announce more).
            age = month - self._birth_month(asn)
            share = min(1.0, 0.5 + 0.5 * age / max(1, months // 2))
            v4_count = max(1, round(len(node.prefixes) * share))
            prefixes_v6: List[Prefix] = []
            if asn in self._ipv6_month and month >= self._ipv6_month[asn]:
                prefixes_v6 = list(node.prefixes_v6)
            community_share = min(1.0, 0.2 + 0.8 * month / max(1, months - 1))
            community_count = (
                max(1, round(len(node.community_values) * community_share))
                if node.community_values
                else 0
            )
            clone = type(node)(
                asn=node.asn,
                role=node.role,
                country=node.country,
                prefixes=list(node.prefixes[:v4_count]),
                prefixes_v6=prefixes_v6,
                ixps=node.ixps,
                community_values=node.community_values[:community_count],
                strips_communities=node.strips_communities,
                blackhole_community_value=node.blackhole_community_value,
            )
            sub.add_as(clone)
        for a in sorted(active):
            for b in self.topology.neighbors(a):
                if b in active and a < b:
                    sub.add_link(a, b, self.topology.relationship(a, b))
        sub.invalidate_caches()
        return sub

    def _birth_month(self, asn: int) -> int:
        index = self._activation_order.index(asn)
        months = self.config.months
        initial = round(len(self._activation_order) * self.config.initial_fraction)
        if index < initial:
            return 0
        remaining = len(self._activation_order) - initial
        return round((index - initial) / max(1, remaining) * (months - 1))

    def moas_origins(self, month: int, topology: ASTopology) -> Dict[Prefix, int]:
        """Extra origins active in ``month`` (long-lived MOAS prefixes)."""
        extra: Dict[Prefix, int] = {}
        for prefix, primary, secondary, start_month in self._moas_pairs:
            if month >= start_month and primary in topology and secondary in topology:
                if topology.origin_of(prefix) is not None:
                    extra[prefix] = secondary
        return extra

    # -- generation -----------------------------------------------------------------------

    def generate(
        self, archive: Archive, months: Optional[Sequence[int]] = None
    ) -> List[MonthlySnapshot]:
        """Write monthly RIB dumps for every collector into ``archive``."""
        month_range = list(months) if months is not None else list(range(self.config.months))
        for month in month_range:
            self.snapshots.append(self._generate_month(archive, month))
        return self.snapshots

    def _generate_month(self, archive: Archive, month: int) -> MonthlySnapshot:
        timestamp = self.month_timestamp(month)
        topology = self.monthly_topology(month)
        computer = RouteComputer(topology)
        extra_origins = self.moas_origins(month, topology)
        snapshot = MonthlySnapshot(
            index=month,
            timestamp=timestamp,
            active_asns=tuple(topology.asns()),
            prefix_count_v4=len(topology.all_prefixes(version=4)),
            prefix_count_v6=len(topology.all_prefixes(version=6)),
        )
        for collector in self.collectors:
            tables = {}
            for vp in collector.vps:
                if vp.asn not in topology:
                    continue
                loc_rib = computer.loc_rib(vp.asn, extra_origins=extra_origins)
                tables[vp] = {
                    prefix: route for prefix, route in loc_rib.items() if vp.exports(route)
                }
            if not tables:
                continue
            dump = collector.write_rib_dump(archive, timestamp, tables)
            snapshot.dumps.append(dump)
        return snapshot
