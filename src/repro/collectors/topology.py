"""Synthetic AS-level Internet topology.

Generates an Internet-like AS graph with the structural features the
paper's analyses depend on:

* a small clique of Tier-1 transit providers,
* a layer of regional/national transit providers (multi-homed to Tier-1s
  and peering among themselves, often at IXPs),
* a large edge of stub ASes (content, access and enterprise networks),
* customer-provider and peer-peer relationships (Gao–Rexford),
* per-AS prefix originations (IPv4, plus IPv6 for a configurable fraction
  of ASes),
* per-AS country assignment (used by the per-country outage consumers),
* per-AS BGP community usage (providers define communities; a fraction of
  transit ASes strips them, which drives the Figure 5d diversity analysis).

The generator is deterministic given a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import networkx as nx

from repro.bgp.prefix import Prefix


class ASRole(Enum):
    """Coarse role of an AS in the synthetic hierarchy."""

    TIER1 = "tier1"
    TRANSIT = "transit"
    STUB = "stub"


class ASRelationship(Enum):
    """Business relationship on a link, from the perspective of (a, b)."""

    CUSTOMER_TO_PROVIDER = "c2p"  # a is customer of b
    PROVIDER_TO_CUSTOMER = "p2c"  # a is provider of b
    PEER_TO_PEER = "p2p"

    def invert(self) -> "ASRelationship":
        if self is ASRelationship.CUSTOMER_TO_PROVIDER:
            return ASRelationship.PROVIDER_TO_CUSTOMER
        if self is ASRelationship.PROVIDER_TO_CUSTOMER:
            return ASRelationship.CUSTOMER_TO_PROVIDER
        return ASRelationship.PEER_TO_PEER


#: Country codes used by the synthetic Internet (the per-country outage
#: consumer aggregates over these).
COUNTRIES = [
    "US", "DE", "GB", "FR", "NL", "IT", "ES", "SE", "JP", "KR",
    "CN", "IN", "BR", "AR", "ZA", "EG", "IQ", "IR", "RU", "UA",
    "AU", "CA", "MX", "TR", "SA",
]


@dataclass
class ASNode:
    """One autonomous system of the synthetic Internet."""

    asn: int
    role: ASRole
    country: str
    prefixes: List[Prefix] = field(default_factory=list)
    prefixes_v6: List[Prefix] = field(default_factory=list)
    ixps: FrozenSet[int] = frozenset()
    #: Communities this AS attaches to routes it originates/propagates
    #: (``asn:value`` with its own ASN as identifier).
    community_values: Tuple[int, ...] = ()
    #: Whether this AS strips communities when propagating routes.
    strips_communities: bool = False
    #: Community value customers of this AS can use to request black-holing,
    #: or None if the AS does not support RTBH.
    blackhole_community_value: Optional[int] = None

    @property
    def all_prefixes(self) -> List[Prefix]:
        return list(self.prefixes) + list(self.prefixes_v6)


@dataclass
class TopologyConfig:
    """Knobs for :func:`generate_topology`."""

    num_tier1: int = 6
    num_transit: int = 30
    num_stub: int = 120
    #: Mean number of providers per multi-homed AS.
    mean_providers: float = 2.0
    #: Probability that two transit ASes sharing an IXP peer with each other.
    ixp_peering_prob: float = 0.5
    num_ixps: int = 8
    #: Mean number of IPv4 prefixes originated by a stub / transit / tier1 AS.
    prefixes_per_stub: float = 3.0
    prefixes_per_transit: float = 8.0
    prefixes_per_tier1: float = 12.0
    #: Fraction of ASes that also originate IPv6 prefixes.
    ipv6_fraction: float = 0.45
    #: Fraction of transit ASes (incl. tier1) that strip communities.
    community_strip_fraction: float = 0.17
    #: Fraction of transit providers that define a black-holing community.
    blackhole_support_fraction: float = 0.6
    #: First ASN to allocate.
    base_asn: int = 100
    seed: int = 0


class ASTopology:
    """The synthetic AS graph plus prefix/country/community metadata."""

    def __init__(self) -> None:
        self.nodes: Dict[int, ASNode] = {}
        #: relationship from the perspective of the first ASN of the key.
        self._relationships: Dict[Tuple[int, int], ASRelationship] = {}
        self.graph = nx.Graph()

    # -- construction ------------------------------------------------------

    def add_as(self, node: ASNode) -> None:
        if node.asn in self.nodes:
            raise ValueError(f"AS{node.asn} already present")
        self.nodes[node.asn] = node
        self.graph.add_node(node.asn)

    def add_link(self, a: int, b: int, relationship: ASRelationship) -> None:
        """Add a link; ``relationship`` is from ``a``'s perspective."""
        if a not in self.nodes or b not in self.nodes:
            raise KeyError("both ASes must exist before linking them")
        if a == b:
            raise ValueError("an AS cannot have a relationship with itself")
        self._relationships[(a, b)] = relationship
        self._relationships[(b, a)] = relationship.invert()
        self.graph.add_edge(a, b)

    # -- queries -----------------------------------------------------------

    def __contains__(self, asn: int) -> bool:
        return asn in self.nodes

    def __len__(self) -> int:
        return len(self.nodes)

    def asns(self) -> List[int]:
        return sorted(self.nodes)

    def node(self, asn: int) -> ASNode:
        return self.nodes[asn]

    def relationship(self, a: int, b: int) -> Optional[ASRelationship]:
        return self._relationships.get((a, b))

    def neighbors(self, asn: int) -> List[int]:
        return sorted(self.graph.neighbors(asn))

    def providers(self, asn: int) -> List[int]:
        return [
            n
            for n in self.neighbors(asn)
            if self.relationship(asn, n) == ASRelationship.CUSTOMER_TO_PROVIDER
        ]

    def customers(self, asn: int) -> List[int]:
        return [
            n
            for n in self.neighbors(asn)
            if self.relationship(asn, n) == ASRelationship.PROVIDER_TO_CUSTOMER
        ]

    def peers(self, asn: int) -> List[int]:
        return [
            n
            for n in self.neighbors(asn)
            if self.relationship(asn, n) == ASRelationship.PEER_TO_PEER
        ]

    def origin_of(self, prefix: Prefix) -> Optional[int]:
        """The AS originating exactly this prefix, if any."""
        return self._origin_index().get(prefix)

    def prefixes_by_country(self, country: str) -> List[Prefix]:
        result: List[Prefix] = []
        for node in self.nodes.values():
            if node.country == country:
                result.extend(node.all_prefixes)
        return sorted(result)

    def countries(self) -> List[str]:
        return sorted({node.country for node in self.nodes.values()})

    def asns_by_country(self, country: str) -> List[int]:
        return sorted(a for a, n in self.nodes.items() if n.country == country)

    def all_prefixes(self, version: Optional[int] = None) -> List[Prefix]:
        result: List[Prefix] = []
        for node in self.nodes.values():
            for prefix in node.all_prefixes:
                if version is None or prefix.version == version:
                    result.append(prefix)
        return sorted(result)

    def ixp_members(self, ixp: int) -> List[int]:
        return sorted(a for a, n in self.nodes.items() if ixp in n.ixps)

    def _origin_index(self) -> Dict[Prefix, int]:
        if not hasattr(self, "_origin_cache") or len(self._origin_cache) == 0:
            cache: Dict[Prefix, int] = {}
            for asn, node in self.nodes.items():
                for prefix in node.all_prefixes:
                    cache[prefix] = asn
            self._origin_cache = cache
        return self._origin_cache

    def invalidate_caches(self) -> None:
        """Drop derived indexes after mutating prefixes/nodes."""
        self._origin_cache = {}


def generate_topology(config: TopologyConfig | None = None) -> ASTopology:
    """Generate a deterministic synthetic AS topology."""
    config = config or TopologyConfig()
    rng = random.Random(config.seed)
    topology = ASTopology()

    next_asn = config.base_asn
    tier1_asns: List[int] = []
    transit_asns: List[int] = []
    stub_asns: List[int] = []

    def allocate(role: ASRole, count: int, target: List[int]) -> None:
        nonlocal next_asn
        for _ in range(count):
            country = rng.choice(COUNTRIES)
            target.append(next_asn)
            topology.add_as(ASNode(asn=next_asn, role=role, country=country))
            next_asn += 1

    allocate(ASRole.TIER1, config.num_tier1, tier1_asns)
    allocate(ASRole.TRANSIT, config.num_transit, transit_asns)
    allocate(ASRole.STUB, config.num_stub, stub_asns)

    # Tier-1 full mesh of peering.
    for i, a in enumerate(tier1_asns):
        for b in tier1_asns[i + 1 :]:
            topology.add_link(a, b, ASRelationship.PEER_TO_PEER)

    # Transit ASes form a two-level hierarchy: the first half buy transit
    # directly from tier-1s; the second half (regional/national providers)
    # mostly buy from first-half transit ASes, which deepens AS paths the way
    # the real Internet's provider hierarchy does (and with it the AS-path
    # inflation that Listing 1 measures).
    upper_transit = transit_asns[: max(1, len(transit_asns) // 2)]
    for index, asn in enumerate(transit_asns):
        provider_count = max(1, round(rng.expovariate(1.0 / config.mean_providers)))
        if index < len(upper_transit) or rng.random() < 0.35:
            pool = tier1_asns
        else:
            pool = [p for p in upper_transit if p != asn]
        providers = rng.sample(pool, min(provider_count, len(pool)))
        for provider in providers:
            topology.add_link(asn, provider, ASRelationship.CUSTOMER_TO_PROVIDER)

    # IXPs: assign transit ASes to IXPs; co-located members peer with some
    # probability.  Stubs can also appear at IXPs (relevant for Atlas probe
    # selection in the RTBH case study).
    ixp_ids = list(range(1, config.num_ixps + 1))
    for asn in transit_asns + stub_asns:
        is_transit = topology.node(asn).role == ASRole.TRANSIT
        count = rng.choice([0, 0, 1, 1, 2]) if is_transit else rng.choice([0, 0, 0, 1])
        membership = frozenset(rng.sample(ixp_ids, min(count, len(ixp_ids))))
        topology.nodes[asn].ixps = membership
    for ixp in ixp_ids:
        members = [a for a in transit_asns if ixp in topology.node(a).ixps]
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                if topology.relationship(a, b) is None and rng.random() < config.ixp_peering_prob:
                    topology.add_link(a, b, ASRelationship.PEER_TO_PEER)

    # Stubs buy transit from transit ASes (or, rarely, directly from tier1).
    for asn in stub_asns:
        provider_count = max(1, round(rng.expovariate(1.0 / config.mean_providers)))
        pool = transit_asns if rng.random() > 0.05 else tier1_asns
        node = topology.node(asn)
        same_country = [p for p in pool if topology.node(p).country == node.country]
        candidates = same_country if same_country and rng.random() < 0.6 else pool
        providers = rng.sample(candidates, min(provider_count, len(candidates)))
        for provider in providers:
            topology.add_link(asn, provider, ASRelationship.CUSTOMER_TO_PROVIDER)

    # Prefix originations.
    _assign_prefixes(topology, tier1_asns, transit_asns, stub_asns, config, rng)

    # Community behaviour.
    _assign_communities(topology, config, rng)

    topology.invalidate_caches()
    return topology


def _assign_prefixes(
    topology: ASTopology,
    tier1_asns: Sequence[int],
    transit_asns: Sequence[int],
    stub_asns: Sequence[int],
    config: TopologyConfig,
    rng: random.Random,
) -> None:
    """Give every AS a set of IPv4 (and maybe IPv6) prefixes to originate.

    IPv4 prefixes are carved from 10.0.0.0/8 and 100.64.0.0/10 as /20–/24
    networks; IPv6 prefixes from 2001:db8::/32 as /40–/48.  Allocation is
    sequential so prefixes never collide.
    """
    v4_block = 0x0A000000  # 10.0.0.0
    v4_cursor = 0
    v6_cursor = 0

    def next_v4(length: int) -> Prefix:
        nonlocal v4_cursor
        size = 1 << (32 - length)
        # Align the cursor to the prefix size.
        v4_cursor = (v4_cursor + size - 1) // size * size
        address = v4_block + v4_cursor
        v4_cursor += size
        return Prefix.from_address(
            f"{(address >> 24) & 0xFF}.{(address >> 16) & 0xFF}."
            f"{(address >> 8) & 0xFF}.{address & 0xFF}",
            length,
        )

    def next_v6(length: int) -> Prefix:
        nonlocal v6_cursor
        base = 0x20010DB8 << 96
        step = 1 << (128 - length)
        address = base + v6_cursor * step
        v6_cursor += 1
        import ipaddress

        return Prefix.from_address(str(ipaddress.IPv6Address(address)), length)

    def mean_for(asn: int) -> float:
        role = topology.node(asn).role
        if role == ASRole.TIER1:
            return config.prefixes_per_tier1
        if role == ASRole.TRANSIT:
            return config.prefixes_per_transit
        return config.prefixes_per_stub

    for asn in list(tier1_asns) + list(transit_asns) + list(stub_asns):
        node = topology.node(asn)
        count = max(1, round(rng.expovariate(1.0 / mean_for(asn))))
        for _ in range(count):
            length = rng.choice([20, 21, 22, 22, 23, 24, 24, 24])
            node.prefixes.append(next_v4(length))
        if rng.random() < config.ipv6_fraction:
            for _ in range(max(1, count // 2)):
                length = rng.choice([40, 44, 48, 48])
                node.prefixes_v6.append(next_v6(length))
    topology.invalidate_caches()


def _assign_communities(
    topology: ASTopology, config: TopologyConfig, rng: random.Random
) -> None:
    """Decide which ASes define/attach/strip communities."""
    for asn, node in topology.nodes.items():
        if node.role in (ASRole.TIER1, ASRole.TRANSIT):
            # Providers define informational communities (ingress point, type
            # of peer, etc.) and may support black-holing.
            count = rng.randint(2, 8)
            node.community_values = tuple(
                sorted(rng.sample(range(100, 10000), count))
            )
            node.strips_communities = rng.random() < config.community_strip_fraction
            if rng.random() < config.blackhole_support_fraction:
                node.blackhole_community_value = 666
        else:
            # Stubs occasionally tag their announcements.
            if rng.random() < 0.3:
                node.community_values = (rng.randint(100, 999),)
