"""Vantage points: the routers that feed route collectors.

A vantage point (VP) is a real router that maintains a BGP session with a
collector and exports an Adj-RIB-out to it.  A *full-feed* VP exports its
entire Loc-RIB (the preferred route to every destination it knows); a
*partial-feed* VP exports only a subset — typically its own prefixes and
routes learned from customers (§2 of the paper).  Projects do not label VPs
as full- or partial-feed, so analyses must infer it from table sizes, which
is why the simulation must produce both kinds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional

from repro.bgp.prefix import Prefix
from repro.collectors.routing import Route, RouteComputer, RouteType


@dataclass(frozen=True)
class VantagePoint:
    """One router peering with a collector."""

    asn: int
    address: str
    full_feed: bool = True

    @property
    def version(self) -> int:
        return 6 if ":" in self.address else 4

    def exports(self, route: Route, own_asn: Optional[int] = None) -> bool:
        """Whether this VP's Adj-RIB-out towards the collector carries ``route``.

        The collector session is configured as customer-provider, so a
        full-feed VP exports everything in its Loc-RIB.  A partial-feed VP
        exports only its own routes and customer-learned routes.
        """
        if self.full_feed:
            return True
        return route.route_type in (RouteType.ORIGIN, RouteType.CUSTOMER)

    def adj_rib_out(
        self,
        computer: RouteComputer,
        excluded: Iterable[int] = (),
        extra_origins: Mapping[Prefix, int] | None = None,
    ) -> Dict[Prefix, Route]:
        """Build this VP's Adj-RIB-out from the routing ground truth."""
        loc_rib = computer.loc_rib(self.asn, excluded=excluded, extra_origins=extra_origins)
        return {
            prefix: route
            for prefix, route in loc_rib.items()
            if self.exports(route)
        }
