"""Gao–Rexford policy routing over the synthetic topology.

Computes, for every AS, the *preferred* (Loc-RIB) route towards every
origin: customer routes are preferred over peer routes over provider routes,
ties are broken by AS-path length and then by lowest next-hop ASN, and
export follows the valley-free rule (customer routes are exported to
everyone; peer and provider routes only to customers).

These preferred routes are exactly what a full-feed vantage point shares
with a route collector (its Adj-RIB-out mirrors its Loc-RIB), so this module
is the ground truth the whole collection simulation is built on.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.bgp.aspath import ASPath
from repro.bgp.attributes import Origin, PathAttributes
from repro.bgp.community import Community, CommunitySet
from repro.bgp.prefix import Prefix
from repro.collectors.topology import ASTopology


class RouteType(IntEnum):
    """How an AS learned a route; lower values are preferred (Gao–Rexford)."""

    ORIGIN = 0
    CUSTOMER = 1
    PEER = 2
    PROVIDER = 3


@dataclass(frozen=True)
class PolicyPath:
    """The preferred AS-level path from one AS towards an origin AS."""

    asns: Tuple[int, ...]  # from the AS itself (first) to the origin (last)
    route_type: RouteType

    @property
    def length(self) -> int:
        return len(self.asns)


@dataclass(frozen=True)
class Route:
    """A concrete route to a prefix as installed by (and exported from) an AS."""

    prefix: Prefix
    as_path: ASPath
    next_hop: str
    communities: CommunitySet = field(default_factory=CommunitySet)
    origin: Origin = Origin.IGP
    route_type: RouteType = RouteType.CUSTOMER

    @property
    def origin_asn(self) -> Optional[int]:
        return self.as_path.origin_asn

    def to_attributes(self) -> PathAttributes:
        """Convert to the PathAttributes carried on the wire."""
        attrs = PathAttributes(
            origin=self.origin,
            as_path=self.as_path,
            communities=self.communities,
        )
        if self.prefix.version == 6:
            attrs.mp_next_hop = self.next_hop
        else:
            attrs.next_hop = self.next_hop
        return attrs


class RouteComputer:
    """Computes and caches policy paths and per-AS routing tables."""

    def __init__(self, topology: ASTopology) -> None:
        self.topology = topology
        self._path_cache: Dict[Tuple[int, FrozenSet[int]], Dict[int, PolicyPath]] = {}

    # -- policy path computation -------------------------------------------

    def paths_to_origin(
        self, origin: int, excluded: Iterable[int] = ()
    ) -> Dict[int, PolicyPath]:
        """Preferred path from every AS to ``origin``.

        ``excluded`` lists ASes that are down (outage simulation); they
        neither originate nor propagate routes.  The origin itself being
        excluded yields an empty result (nobody can reach it).
        """
        excluded_set = frozenset(excluded)
        key = (origin, excluded_set)
        if key in self._path_cache:
            return self._path_cache[key]
        result = self._compute_paths(origin, excluded_set)
        self._path_cache[key] = result
        return result

    def invalidate(self) -> None:
        self._path_cache.clear()

    def _compute_paths(
        self, origin: int, excluded: FrozenSet[int]
    ) -> Dict[int, PolicyPath]:
        topology = self.topology
        if origin not in topology or origin in excluded:
            return {}

        best: Dict[int, PolicyPath] = {origin: PolicyPath((origin,), RouteType.ORIGIN)}

        def alive(asn: int) -> bool:
            return asn not in excluded

        # Phase 1 — customer routes climb provider links (valley-free "up").
        # Process in (path length, asn) order so ties resolve deterministically
        # to the shortest path through the lowest-numbered neighbour.
        heap: List[Tuple[int, int]] = [(1, origin)]
        while heap:
            length, asn = heapq.heappop(heap)
            current = best.get(asn)
            if current is None or current.length != length:
                continue
            for provider in topology.providers(asn):
                if not alive(provider):
                    continue
                candidate = PolicyPath((provider,) + current.asns, RouteType.CUSTOMER)
                existing = best.get(provider)
                if existing is None or _better(candidate, existing):
                    best[provider] = candidate
                    heapq.heappush(heap, (candidate.length, provider))

        # Phase 2 — one peer hop at the apex.  Only ASes holding a customer
        # route (or the origin) export across peering links.
        customer_holders = sorted(
            asn
            for asn, path in best.items()
            if path.route_type in (RouteType.ORIGIN, RouteType.CUSTOMER)
        )
        peer_candidates: Dict[int, PolicyPath] = {}
        for asn in customer_holders:
            exported = best[asn]
            for peer in topology.peers(asn):
                if not alive(peer):
                    continue
                candidate = PolicyPath((peer,) + exported.asns, RouteType.PEER)
                existing = best.get(peer)
                if existing is not None and not _better(candidate, existing):
                    continue
                pending = peer_candidates.get(peer)
                if pending is None or _better(candidate, pending):
                    peer_candidates[peer] = candidate
        best.update(peer_candidates)

        # Phase 3 — routes flow down provider→customer links ("down").
        # Everything an AS holds may be exported to its customers; provider
        # routes keep propagating downwards.
        heap = [(path.length, asn) for asn, path in best.items()]
        heapq.heapify(heap)
        while heap:
            length, asn = heapq.heappop(heap)
            current = best.get(asn)
            if current is None or current.length != length:
                continue
            for customer in topology.customers(asn):
                if not alive(customer):
                    continue
                candidate = PolicyPath((customer,) + current.asns, RouteType.PROVIDER)
                existing = best.get(customer)
                if existing is None or _better(candidate, existing):
                    best[customer] = candidate
                    heapq.heappush(heap, (candidate.length, customer))

        return best

    # -- routing tables ------------------------------------------------------

    def loc_rib(
        self,
        asn: int,
        excluded: Iterable[int] = (),
        extra_origins: Mapping[Prefix, int] | None = None,
        version: Optional[int] = None,
    ) -> Dict[Prefix, Route]:
        """The preferred route of ``asn`` for every reachable prefix.

        ``extra_origins`` maps prefixes to additional origin ASes (used for
        hijack simulation: the same prefix announced by a second origin);
        when both origins are reachable, the standard preference rules pick
        the winner at this AS.
        """
        excluded_set = frozenset(excluded)
        table: Dict[Prefix, Route] = {}
        for prefix in self.topology.all_prefixes(version=version):
            origin = self.topology.origin_of(prefix)
            if origin is None:
                continue
            route = self._route_for(asn, prefix, origin, excluded_set)
            if route is not None:
                table[prefix] = route
        for prefix, origin in (extra_origins or {}).items():
            candidate = self._route_for(asn, prefix, origin, excluded_set)
            if candidate is None:
                continue
            incumbent = table.get(prefix)
            if incumbent is None or _route_better(candidate, incumbent):
                table[prefix] = candidate
        return table

    def route(
        self,
        asn: int,
        prefix: Prefix,
        origin: Optional[int] = None,
        excluded: Iterable[int] = (),
    ) -> Optional[Route]:
        """The preferred route of ``asn`` towards ``prefix`` (or None)."""
        if origin is None:
            origin = self.topology.origin_of(prefix)
        if origin is None:
            return None
        return self._route_for(asn, prefix, origin, frozenset(excluded))

    def _route_for(
        self, asn: int, prefix: Prefix, origin: int, excluded: FrozenSet[int]
    ) -> Optional[Route]:
        paths = self.paths_to_origin(origin, excluded)
        path = paths.get(asn)
        if path is None:
            return None
        return self._materialise(prefix, path)

    def _materialise(self, prefix: Prefix, path: PolicyPath) -> Route:
        as_path = ASPath.from_asns(path.asns)
        communities = self._communities_for(path)
        next_hop = _synth_next_hop(path, prefix.version)
        return Route(
            prefix=prefix,
            as_path=as_path,
            next_hop=next_hop,
            communities=communities,
            origin=Origin.IGP,
            route_type=path.route_type,
        )

    def _communities_for(self, path: PolicyPath) -> CommunitySet:
        """Communities visible on a route at the head of ``path``.

        Each AS along the path attaches one of its informational communities
        (deterministically chosen); an AS that strips communities removes
        everything attached beyond it (i.e. communities added by ASes closer
        to the origin do not survive).
        """
        communities: List[Community] = []
        # Walk from the origin towards the observer.
        for asn in reversed(path.asns):
            node = self.topology.nodes.get(asn)
            if node is None:
                continue
            if node.strips_communities:
                communities = []
            if node.community_values:
                value = node.community_values[
                    (asn * 2654435761 + path.asns[-1]) % len(node.community_values)
                ]
                if node.asn <= 0xFFFF:
                    communities.append(Community(node.asn, value))
        return CommunitySet(communities)


def _better(candidate: PolicyPath, incumbent: PolicyPath) -> bool:
    """Gao–Rexford preference: type, then length, then lowest neighbour ASN."""
    c_key = (int(candidate.route_type), candidate.length, candidate.asns[1:2] or (0,))
    i_key = (int(incumbent.route_type), incumbent.length, incumbent.asns[1:2] or (0,))
    return c_key < i_key


def _route_better(candidate: Route, incumbent: Route) -> bool:
    c_key = (int(candidate.route_type), len(candidate.as_path), candidate.as_path.hops[1:2] or [0])
    i_key = (int(incumbent.route_type), len(incumbent.as_path), incumbent.as_path.hops[1:2] or [0])
    return c_key < i_key


def _synth_next_hop(path: PolicyPath, version: int) -> str:
    """A stable, synthetic next-hop address derived from the first hop."""
    neighbour = path.asns[1] if len(path.asns) > 1 else path.asns[0]
    if version == 6:
        return f"2001:db8:ffff::{neighbour:x}"
    return f"172.16.{(neighbour >> 8) & 0xFF}.{neighbour & 0xFF}"
