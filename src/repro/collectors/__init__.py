"""Synthetic Internet and BGP data-collection infrastructure.

The original BGPStream consumes dumps published by the RouteViews and RIPE
RIS collector projects.  Neither those archives nor the Internet itself are
reachable in this environment, so this package builds the closest synthetic
equivalent end-to-end:

* :mod:`repro.collectors.topology` — an AS-level Internet with
  customer-provider / peer-peer relationships, prefix originations,
  countries and IXP co-location.
* :mod:`repro.collectors.routing` — Gao–Rexford policy routing: per-AS
  preferred paths (the Loc-RIB each router would install).
* :mod:`repro.collectors.vantage_point` — vantage points (full- or
  partial-feed) that export an Adj-RIB-out towards a collector.
* :mod:`repro.collectors.events` — scripted routing events (hijacks,
  outages, remotely-triggered black-holing, flapping, session resets).
* :mod:`repro.collectors.collector` — route collectors that maintain
  per-VP state and periodically write RIB and Updates dumps.
* :mod:`repro.collectors.archive` — the on-disk data-provider archive with
  RouteViews/RIS-style layout and publication latency.
* :mod:`repro.collectors.projects` — the RouteViews / RIPE RIS project
  parameters (dump periodicities, collector names).
* :mod:`repro.collectors.scenario` — orchestration: build a topology, run
  events over a time window, and populate an archive with genuine MRT dumps.
"""

from repro.collectors.topology import (
    ASNode,
    ASRelationship,
    ASRole,
    ASTopology,
    TopologyConfig,
    generate_topology,
)
from repro.collectors.routing import Route, RouteComputer
from repro.collectors.vantage_point import VantagePoint
from repro.collectors.projects import PROJECTS, ProjectSpec, ROUTEVIEWS, RIPE_RIS
from repro.collectors.events import (
    EventTimeline,
    OutageEvent,
    PrefixFlapEvent,
    PrefixHijackEvent,
    RTBHEvent,
    SessionResetEvent,
)
from repro.collectors.collector import Collector
from repro.collectors.archive import Archive, DumpFile
from repro.collectors.scenario import Scenario, ScenarioConfig, build_scenario

__all__ = [
    "ASNode",
    "ASRelationship",
    "ASRole",
    "ASTopology",
    "TopologyConfig",
    "generate_topology",
    "Route",
    "RouteComputer",
    "VantagePoint",
    "PROJECTS",
    "ProjectSpec",
    "ROUTEVIEWS",
    "RIPE_RIS",
    "EventTimeline",
    "OutageEvent",
    "PrefixFlapEvent",
    "PrefixHijackEvent",
    "RTBHEvent",
    "SessionResetEvent",
    "Collector",
    "Archive",
    "DumpFile",
    "Scenario",
    "ScenarioConfig",
    "build_scenario",
]
