"""Scripted routing events injected into the collection simulation.

The paper's case studies revolve around real-world events: the GARR prefix
hijack of January 2015 (Figure 6), the Iraqi government-ordered outages of
June–July 2015 (Figure 10), remotely-triggered black-holing episodes
(Figure 4), and the ordinary background churn of the global routing system.
This module provides the synthetic equivalents.  Each event knows which
prefixes it affects and how it perturbs routing during its active interval,
so the scenario generator can recompute only the affected routes at event
boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.bgp.community import Community
from repro.bgp.prefix import Prefix
from repro.utils.intervals import TimeInterval


@dataclass(frozen=True)
class RoutingEvent:
    """Base class: an event active during ``interval``.

    Activity is half-open (``[start, end)``): at the interval's end the
    event's effect has been reverted, so the routing change generated at the
    end boundary restores the pre-event state.
    """

    interval: TimeInterval

    def active_at(self, timestamp: int) -> bool:
        return self.interval.start <= timestamp < self.interval.end

    # Hooks the scenario generator queries; subclasses override as needed.

    def affected_prefixes(self) -> Sequence[Prefix]:
        """Prefixes whose routes change when the event starts or ends."""
        return ()

    def excluded_asns(self) -> Set[int]:
        """ASes that are down while the event is active."""
        return set()

    def extra_origins(self) -> Mapping[Prefix, int]:
        """Additional (prefix -> origin AS) announcements while active."""
        return {}

    def boundaries(self) -> List[int]:
        """Timestamps at which routing changes because of this event."""
        return [self.interval.start, self.interval.end]


@dataclass(frozen=True)
class PrefixHijackEvent(RoutingEvent):
    """A second origin announces prefixes it does not own.

    ``prefixes`` may be the victim's exact prefixes (classic MOAS) or
    more-specific sub-prefixes (sub-prefix hijack); either way the
    pfxmonitor-style origin count over the victim's address space rises
    while the event is active.
    """

    hijacker_asn: int = 0
    victim_asn: int = 0
    prefixes: Tuple[Prefix, ...] = ()

    def affected_prefixes(self) -> Sequence[Prefix]:
        return self.prefixes

    def extra_origins(self) -> Mapping[Prefix, int]:
        return {prefix: self.hijacker_asn for prefix in self.prefixes}


@dataclass(frozen=True)
class OutageEvent(RoutingEvent):
    """A set of ASes (e.g. every AS of a country) withdraws its prefixes.

    The simulation treats an outage as origin-down: prefixes originated by
    the affected ASes become unreachable for its duration.  (Transit through
    the affected ASes is not rerouted — a documented simplification that
    preserves the visible-prefix-count signal the outage consumers use.)
    """

    asns: Tuple[int, ...] = ()
    #: Prefixes of the affected ASes, resolved by the scenario builder.
    prefixes: Tuple[Prefix, ...] = ()
    country: Optional[str] = None

    def affected_prefixes(self) -> Sequence[Prefix]:
        return self.prefixes

    def excluded_asns(self) -> Set[int]:
        return set(self.asns)


@dataclass(frozen=True)
class RTBHEvent(RoutingEvent):
    """A customer requests black-holing of one of its addresses (§4.3).

    While active, the customer announces ``blackhole_prefix`` (typically a
    /32 carved out of its own space) tagged with the black-holing
    communities of the providers it wants to act.  ``propagating_providers``
    lists the providers that fail to apply egress filtering and leak the
    announcement onwards (the paper found this is surprisingly common).
    """

    customer_asn: int = 0
    blackhole_prefix: Prefix = None  # type: ignore[assignment]
    provider_asns: Tuple[int, ...] = ()
    communities: Tuple[Community, ...] = ()
    propagating_providers: Tuple[int, ...] = ()

    def affected_prefixes(self) -> Sequence[Prefix]:
        return (self.blackhole_prefix,)

    def extra_origins(self) -> Mapping[Prefix, int]:
        return {self.blackhole_prefix: self.customer_asn}


@dataclass(frozen=True)
class PrefixFlapEvent(RoutingEvent):
    """A prefix is repeatedly withdrawn and re-announced (route flapping)."""

    prefix: Prefix = None  # type: ignore[assignment]
    origin_asn: int = 0
    period: int = 120  # seconds between state changes

    def affected_prefixes(self) -> Sequence[Prefix]:
        return (self.prefix,)

    def boundaries(self) -> List[int]:
        times = list(range(self.interval.start, self.interval.end + 1, self.period))
        if times[-1] != self.interval.end:
            times.append(self.interval.end)
        return times

    def is_withdrawn_at(self, timestamp: int) -> bool:
        """The prefix alternates: withdrawn on odd flap periods."""
        if not self.active_at(timestamp):
            return False
        phase = (timestamp - self.interval.start) // self.period
        return phase % 2 == 0


@dataclass(frozen=True)
class SessionResetEvent(RoutingEvent):
    """A VP's BGP session with its collector goes down and comes back up.

    While down, the collector considers the VP's table unavailable; when the
    session is re-established the VP re-announces its entire Adj-RIB-out,
    producing the update bursts visible in the Figure 9 maxima.
    """

    collector: str = ""
    vp_asn: int = 0

    def boundaries(self) -> List[int]:
        return [self.interval.start, self.interval.end]


class EventTimeline:
    """The ordered collection of events driving a scenario."""

    def __init__(self, events: Iterable[RoutingEvent] = ()) -> None:
        self.events: List[RoutingEvent] = sorted(events, key=lambda e: e.interval)

    def add(self, event: RoutingEvent) -> None:
        self.events.append(event)
        self.events.sort(key=lambda e: e.interval)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # -- state queries -------------------------------------------------------

    def active_at(self, timestamp: int) -> List[RoutingEvent]:
        return [e for e in self.events if e.active_at(timestamp)]

    def excluded_asns_at(self, timestamp: int) -> Set[int]:
        excluded: Set[int] = set()
        for event in self.active_at(timestamp):
            excluded |= event.excluded_asns()
        return excluded

    def extra_origins_at(self, timestamp: int) -> Dict[Prefix, int]:
        extra: Dict[Prefix, int] = {}
        for event in self.active_at(timestamp):
            if isinstance(event, PrefixFlapEvent) and event.is_withdrawn_at(timestamp):
                continue
            extra.update(event.extra_origins())
        return extra

    def withdrawn_prefixes_at(self, timestamp: int) -> Set[Prefix]:
        """Prefixes explicitly withdrawn at ``timestamp`` (flap troughs)."""
        withdrawn: Set[Prefix] = set()
        for event in self.active_at(timestamp):
            if isinstance(event, PrefixFlapEvent) and event.is_withdrawn_at(timestamp):
                withdrawn.add(event.prefix)
        return withdrawn

    def rtbh_events_at(self, timestamp: int) -> List[RTBHEvent]:
        return [e for e in self.active_at(timestamp) if isinstance(e, RTBHEvent)]

    def session_resets(self, collector: Optional[str] = None) -> List[SessionResetEvent]:
        return [
            e
            for e in self.events
            if isinstance(e, SessionResetEvent)
            and (collector is None or e.collector == collector)
        ]

    def boundaries(self, start: int, end: int) -> List[int]:
        """All distinct event boundary timestamps within ``[start, end]``."""
        times: Set[int] = set()
        for event in self.events:
            for timestamp in event.boundaries():
                if start <= timestamp <= end:
                    times.add(timestamp)
        return sorted(times)

    def affected_prefixes(self) -> Set[Prefix]:
        prefixes: Set[Prefix] = set()
        for event in self.events:
            prefixes.update(event.affected_prefixes())
        return prefixes
