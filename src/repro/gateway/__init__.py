"""The streaming gateway: one live decode loop, N filtered subscribers.

``repro.gateway`` turns the single-consumer live path (PR 5/6) into a
service tier: a :class:`~repro.gateway.hub.StreamHub` decodes the
BMP-over-Kafka feed exactly once in a bridge thread, and an asyncio
:class:`~repro.gateway.server.GatewayServer` exposes the shared elem
stream over WebSocket and SSE, one trie-backed
:class:`~repro.core.filters.FilterSet` and event-time window per
subscriber, with per-client backpressure (coalesced/dropped windows + gap
markers) that never stalls the decode loop.

Run it with ``python -m repro.gateway --live frames.bmp``.
"""

from repro.gateway.hub import GatewayWindow, StreamHub, Subscriber
from repro.gateway.server import GatewayServer

__all__ = ["GatewayWindow", "StreamHub", "Subscriber", "GatewayServer"]
