"""The asyncio fan-out server: WebSocket + SSE endpoints over a StreamHub.

Endpoints (all GET):

* ``/stream/sse?prefix=10.0.0.0/8&peer-asn=65001&window=5`` — an SSE
  stream of ``window`` events (JSON payloads); query parameters name
  filters exactly like ``BGPStream.add_filter`` (repeat a parameter to add
  several values) plus the knobs ``window`` (seconds per event-time
  window), ``interval=START,END``, ``max-queued`` and ``coalesce-budget``.
* ``/stream/ws`` — the same stream over WebSocket, plus *subscription
  multiplexing*: the client sends ``{"action": "add_filter", "name":
  "prefix", "value": "10.0.0.0/8"}`` / ``"remove_filter"`` text frames to
  retune its FilterSet mid-connection; each is acknowledged with an
  ``{"type": "ack", ...}`` frame.
* ``/stats`` — hub / decode / intern counters as JSON.

One bridge thread decodes the feed (see :mod:`repro.gateway.hub`); each
connection runs a sender coroutine that drains its subscriber's bounded
window queue.  A slow client blocks only its own ``writer.drain()`` —
the decode loop never waits, and the subscriber's queue coalesces or
drops windows (with gap markers) instead of growing without bound.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

from repro.core import profiling
from repro.core.filters import _FILTER_NAMES, FilterSet
from repro.gateway.hub import (
    DEFAULT_COALESCE_BUDGET,
    DEFAULT_MAX_QUEUED_WINDOWS,
    DEFAULT_WINDOW_SIZE,
    StreamHub,
    Subscriber,
)
from repro.gateway import protocol
from repro.gateway.protocol import (
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    OP_TEXT,
    WSFrameParser,
    encode_ws_frame,
    http_response,
    parse_http_request,
    sse_event,
    sse_preamble,
    websocket_handshake_response,
)

__all__ = ["GatewayServer", "subscription_from_query"]

_MAX_HEAD = 64 * 1024


def subscription_from_query(query) -> Tuple[FilterSet, dict]:
    """Build a FilterSet + subscriber knobs from HTTP query pairs."""
    filters = FilterSet()
    knobs = {
        "window_size": DEFAULT_WINDOW_SIZE,
        "max_queued_windows": DEFAULT_MAX_QUEUED_WINDOWS,
        "coalesce_budget": DEFAULT_COALESCE_BUDGET,
        "name": None,
    }
    for name, value in query:
        if name in _FILTER_NAMES:
            filters.add(name, value)
        elif name == "window":
            knobs["window_size"] = int(value)
        elif name == "max-queued":
            knobs["max_queued_windows"] = int(value)
        elif name == "coalesce-budget":
            knobs["coalesce_budget"] = int(value)
        elif name == "name":
            knobs["name"] = value
        elif name == "interval":
            start_text, _, end_text = value.partition(",")
            end = int(end_text) if end_text and end_text != "-1" else None
            filters.add_interval(int(start_text), end)
        else:
            raise ValueError(f"unknown query parameter {name!r}")
    return filters, knobs


class GatewayServer:
    """Serve a :class:`StreamHub` over WebSocket and SSE."""

    def __init__(
        self,
        hub: StreamHub,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_buffer: Optional[int] = None,
    ) -> None:
        self.hub = hub
        self.host = host
        self.port = port  # 0 = ephemeral; read back after start()
        #: Per-connection send-buffer bound (bytes).  Shrinking it makes a
        #: slow client's backpressure reach the sender coroutine sooner, so
        #: window coalescing engages instead of the kernel absorbing the
        #: whole stream; tests use it to exercise that path deterministically.
        self.socket_buffer = socket_buffer
        self._server: Optional[asyncio.AbstractServer] = None
        self.connections_served = 0

    async def start(self) -> "GatewayServer":
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # -- connection handling ------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.connections_served += 1
        if self.socket_buffer is not None:
            import socket as socket_module

            sock = writer.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(
                    socket_module.SOL_SOCKET, socket_module.SO_SNDBUF, self.socket_buffer
                )
            writer.transport.set_write_buffer_limits(high=self.socket_buffer)
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            writer.close()
            return
        try:
            if len(head) > _MAX_HEAD:
                raise ValueError("request head too large")
            request = parse_http_request(head)
            if request.method != "GET":
                writer.write(http_response("405 Method Not Allowed", b'{"error":"GET only"}'))
            elif request.path == "/stats":
                await self._serve_stats(writer)
            elif request.path == "/stream/sse":
                await self._serve_sse(request, writer)
            elif request.path == "/stream/ws":
                await self._serve_ws(request, reader, writer)
            else:
                writer.write(http_response("404 Not Found", b'{"error":"not found"}'))
        except ValueError as exc:
            writer.write(
                http_response(
                    "400 Bad Request",
                    protocol.dumps({"error": str(exc)}).encode("utf-8"),
                )
            )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away: its subscriber was already removed
        finally:
            try:
                await writer.drain()
                writer.close()
            except (ConnectionError, RuntimeError):
                pass

    async def _serve_stats(self, writer: asyncio.StreamWriter) -> None:
        stats = self.hub.stats()
        if profiling.counters is not None:
            decode = profiling.snapshot()
            stats["decode"] = {
                name: getattr(decode, name) for name in decode.__slots__
            }
        writer.write(
            http_response("200 OK", protocol.dumps(stats).encode("utf-8"))
        )

    def _subscribe(self, request) -> Subscriber:
        filters, knobs = subscription_from_query(request.query)
        return self.hub.subscribe(filters, **knobs)

    async def _serve_sse(self, request, writer: asyncio.StreamWriter) -> None:
        subscriber = self._subscribe(request)
        ready = asyncio.Event()
        loop = asyncio.get_running_loop()
        subscriber.set_notifier(lambda: loop.call_soon_threadsafe(ready.set))
        writer.write(sse_preamble())
        try:
            async for window in self._windows(subscriber, ready):
                writer.write(sse_event(window.payload(), event="window"))
                await writer.drain()
            writer.write(sse_event({"type": "end"}, event="end"))
            await writer.drain()
        finally:
            self.hub.unsubscribe(subscriber)

    async def _serve_ws(self, request, reader, writer: asyncio.StreamWriter) -> None:
        if request.header("upgrade").lower() != "websocket":
            writer.write(http_response("400 Bad Request", b'{"error":"upgrade required"}'))
            return
        writer.write(websocket_handshake_response(request))
        await writer.drain()
        subscriber = self._subscribe(request)
        ready = asyncio.Event()
        loop = asyncio.get_running_loop()
        subscriber.set_notifier(lambda: loop.call_soon_threadsafe(ready.set))
        closed = asyncio.Event()
        receiver = asyncio.ensure_future(
            self._ws_receiver(subscriber, reader, writer, closed)
        )
        try:
            async for window in self._windows(subscriber, ready, closed):
                writer.write(
                    encode_ws_frame(
                        protocol.dumps(window.payload()).encode("utf-8"), OP_TEXT
                    )
                )
                await writer.drain()
            if not closed.is_set():
                writer.write(
                    encode_ws_frame(protocol.dumps({"type": "end"}).encode("utf-8"), OP_TEXT)
                )
                writer.write(encode_ws_frame(b"", OP_CLOSE))
                await writer.drain()
        finally:
            self.hub.unsubscribe(subscriber)
            receiver.cancel()

    async def _ws_receiver(self, subscriber, reader, writer, closed) -> None:
        """Apply client control frames: subscription multiplexing."""
        parser = WSFrameParser()
        while not closed.is_set():
            data = await reader.read(4096)
            if not data:
                closed.set()
                return
            for opcode, payload in parser.feed(data):
                if opcode == OP_CLOSE:
                    closed.set()
                    return
                if opcode == OP_PING:
                    writer.write(encode_ws_frame(payload, OP_PONG))
                    continue
                if opcode != OP_TEXT:
                    continue
                response = self._apply_control(subscriber, payload)
                # No drain() here: the sender coroutine may be draining
                # concurrently and StreamWriter.drain is single-waiter.
                # Acks are tiny; the kernel buffer absorbs them.
                writer.write(
                    encode_ws_frame(protocol.dumps(response).encode("utf-8"), OP_TEXT)
                )

    @staticmethod
    def _apply_control(subscriber: Subscriber, payload: bytes) -> dict:
        try:
            message = json.loads(payload.decode("utf-8"))
            action = message["action"]
            if action == "add_filter":
                subscriber.add_filter(message["name"], message["value"])
            elif action == "remove_filter":
                subscriber.remove_filter(message["name"], message["value"])
            elif action == "set_interval":
                end = message.get("end")
                subscriber.set_interval(int(message["start"]), end)
            else:
                raise ValueError(f"unknown action {action!r}")
        except (KeyError, ValueError, TypeError, json.JSONDecodeError) as exc:
            return {"type": "error", "error": str(exc)}
        return {
            "type": "ack",
            "action": action,
            "name": message.get("name"),
            "value": message.get("value"),
        }

    @staticmethod
    async def _windows(subscriber, ready, closed: Optional[asyncio.Event] = None):
        """Yield windows as they close; return when the feed (or client)
        finishes.  Clear-before-check ordering makes the notifier race-free:
        anything pushed after the pop loop re-sets the event."""
        while closed is None or not closed.is_set():
            ready.clear()
            while (window := subscriber.pop_window()) is not None:
                yield window
                if closed is not None and closed.is_set():
                    return
            if subscriber.finished and subscriber.ready_count == 0:
                return
            if closed is None:
                await ready.wait()
            else:
                closed_wait = asyncio.ensure_future(closed.wait())
                ready_wait = asyncio.ensure_future(ready.wait())
                try:
                    await asyncio.wait(
                        [closed_wait, ready_wait], return_when=asyncio.FIRST_COMPLETED
                    )
                finally:
                    closed_wait.cancel()
                    ready_wait.cancel()
