"""The asyncio fan-out server: WebSocket + SSE endpoints over a StreamHub.

Endpoints (all GET):

* ``/stream/sse?prefix=10.0.0.0/8&peer-asn=65001&window=5`` — an SSE
  stream of ``window`` events (JSON payloads); query parameters name
  filters exactly like ``BGPStream.add_filter`` (repeat a parameter to add
  several values) plus the knobs ``window`` (seconds per event-time
  window), ``interval=START,END``, ``max-queued`` and ``coalesce-budget``.
* ``/stream/ws`` — the same stream over WebSocket, plus *subscription
  multiplexing*: the client sends ``{"action": "add_filter", "name":
  "prefix", "value": "10.0.0.0/8"}`` / ``"remove_filter"`` text frames to
  retune its FilterSet mid-connection; each is acknowledged with an
  ``{"type": "ack", ...}`` frame.
* ``/stats`` — hub / decode / intern counters, server uptime and
  per-session queue/unacked depths as JSON.
* ``/metrics`` — the process-wide telemetry registry in Prometheus text
  exposition format (see :mod:`repro.core.metrics` and
  ``docs/OBSERVABILITY.md``).

One bridge thread decodes the feed (see :mod:`repro.gateway.hub`); each
connection runs a sender coroutine that drains its subscriber's bounded
window queue.  A slow client blocks only its own ``writer.drain()`` —
the decode loop never waits, and the subscriber's queue coalesces or
drops windows (with gap markers) instead of growing without bound.

Reconnect-with-cursor: a client that adds ``session=<id>`` (or a bare
``session=`` for a server-generated id) gets a durable subscription whose
windows each carry a **resume token** ``<session>:<window_end>`` (also the
SSE ``id:`` line).  On disconnect the subscriber is parked, retaining
every delivered-but-unacked window; reconnecting with
``resume=<token>`` (or the standard ``Last-Event-ID`` header) acks
through the token's boundary and replays the rest — across client drops
*and* supervised hub restarts, the client misses nothing it had not
already acked.  WebSocket clients ack mid-stream with ``{"action":
"ack", "window_end": N}`` control frames; SSE clients ack implicitly by
reconnecting with their last event id.  Parked sessions idle longer than
``session_ttl`` are reaped; ``heartbeat_interval`` adds keepalive frames
(SSE comments / WS pings) so dead connections surface promptly.  A
terminal bridge failure ends every stream with a distinct ``{"type":
"error", ...}`` frame — never a clean-looking ``end``.
"""

from __future__ import annotations

import asyncio
import json
import time
import uuid
from typing import Dict, List, Optional, Tuple

from repro import _metrics
from repro.core import profiling
from repro.core.filters import _FILTER_NAMES, FilterSet
from repro.gateway.hub import (
    DEFAULT_COALESCE_BUDGET,
    DEFAULT_MAX_QUEUED_WINDOWS,
    DEFAULT_WINDOW_SIZE,
    StreamHub,
    Subscriber,
)
from repro.gateway import protocol
from repro.gateway.protocol import (
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    OP_TEXT,
    WSFrameParser,
    encode_ws_frame,
    http_response,
    parse_http_request,
    sse_event,
    sse_heartbeat,
    sse_preamble,
    websocket_handshake_response,
)

__all__ = ["GatewayServer", "subscription_from_query"]

_MAX_HEAD = 64 * 1024

#: Default seconds a detached session survives before it is reaped.
DEFAULT_SESSION_TTL = 60.0

#: Telemetry (see docs/OBSERVABILITY.md): bridged per live server by a
#: weakref-bound collector, summed when several servers share a process.
_gw_sessions = _metrics.gauge(
    "repro_gateway_sessions",
    "Durable gateway sessions currently registered (attached + parked).",
    collected=True,
)
_gw_connections = _metrics.counter(
    "repro_gateway_connections_total",
    "HTTP connections the gateway has accepted (all endpoints).",
    collected=True,
)
_gw_reaped = _metrics.counter(
    "repro_gateway_sessions_reaped_total",
    "Parked sessions dropped after idling past their TTL.",
    collected=True,
)


class ResumeGone(Exception):
    """A resume token that no longer names a live session (HTTP 410)."""


class _Session:
    """One durable subscription: a parked or attached retained subscriber."""

    __slots__ = ("id", "subscriber", "attached", "detached_at")

    def __init__(self, session_id: str, subscriber: Subscriber) -> None:
        self.id = session_id
        self.subscriber = subscriber
        self.attached = True
        self.detached_at: Optional[float] = None


def subscription_from_query(query) -> Tuple[FilterSet, dict]:
    """Build a FilterSet + subscriber knobs from HTTP query pairs."""
    filters = FilterSet()
    knobs = {
        "window_size": DEFAULT_WINDOW_SIZE,
        "max_queued_windows": DEFAULT_MAX_QUEUED_WINDOWS,
        "coalesce_budget": DEFAULT_COALESCE_BUDGET,
        "name": None,
    }
    for name, value in query:
        if name in _FILTER_NAMES:
            filters.add(name, value)
        elif name == "window":
            knobs["window_size"] = int(value)
        elif name == "max-queued":
            knobs["max_queued_windows"] = int(value)
        elif name == "coalesce-budget":
            knobs["coalesce_budget"] = int(value)
        elif name == "name":
            knobs["name"] = value
        elif name == "interval":
            start_text, _, end_text = value.partition(",")
            end = int(end_text) if end_text and end_text != "-1" else None
            filters.add_interval(int(start_text), end)
        else:
            raise ValueError(f"unknown query parameter {name!r}")
    return filters, knobs


class GatewayServer:
    """Serve a :class:`StreamHub` over WebSocket and SSE."""

    def __init__(
        self,
        hub: StreamHub,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_buffer: Optional[int] = None,
        heartbeat_interval: Optional[float] = None,
        session_ttl: float = DEFAULT_SESSION_TTL,
        reap_interval: Optional[float] = None,
    ) -> None:
        self.hub = hub
        self.host = host
        self.port = port  # 0 = ephemeral; read back after start()
        #: Per-connection send-buffer bound (bytes).  Shrinking it makes a
        #: slow client's backpressure reach the sender coroutine sooner, so
        #: window coalescing engages instead of the kernel absorbing the
        #: whole stream; tests use it to exercise that path deterministically.
        self.socket_buffer = socket_buffer
        #: Seconds of send-side silence before a keepalive frame goes out
        #: (SSE comment / WS ping).  None disables heartbeats.
        self.heartbeat_interval = heartbeat_interval
        #: Seconds a detached session survives before reaping frees its
        #: subscriber (and everything it retained).
        self.session_ttl = session_ttl
        self.reap_interval = (
            reap_interval if reap_interval is not None else max(session_ttl / 4.0, 0.5)
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._sessions: Dict[str, _Session] = {}
        self._reaper: Optional[asyncio.Task] = None
        self.connections_served = 0
        self.sessions_reaped = 0
        self.started_at = time.monotonic()
        # Bridge this server into the telemetry registry (weakref-owned).
        _metrics.default_registry().add_collector(
            GatewayServer._collect_metrics, owner=self
        )

    def _collect_metrics(self) -> None:
        """Scrape-time bridge: fold this server's counters in."""
        _gw_sessions.inc(len(self._sessions))
        _gw_connections.add_total(self.connections_served)
        _gw_reaped.add_total(self.sessions_reaped)

    async def start(self) -> "GatewayServer":
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._reaper = asyncio.ensure_future(self._reap_loop())
        return self

    async def close(self) -> None:
        if self._reaper is not None:
            self._reaper.cancel()
            self._reaper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- session registry ----------------------------------------------------

    async def _reap_loop(self) -> None:
        while True:
            await asyncio.sleep(self.reap_interval)
            self.reap_idle_sessions()

    def reap_idle_sessions(self, now: Optional[float] = None) -> int:
        """Drop detached sessions idle past ``session_ttl``; returns count."""
        now = now if now is not None else time.monotonic()
        doomed = [
            session
            for session in self._sessions.values()
            if not session.attached
            and session.detached_at is not None
            and now - session.detached_at > self.session_ttl
        ]
        for session in doomed:
            self._drop_session(session)
            self.sessions_reaped += 1
        return len(doomed)

    def _drop_session(self, session: _Session) -> None:
        self._sessions.pop(session.id, None)
        self.hub.unsubscribe(session.subscriber)

    @property
    def session_count(self) -> int:
        return len(self._sessions)

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # -- connection handling ------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.connections_served += 1
        if self.socket_buffer is not None:
            import socket as socket_module

            sock = writer.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(
                    socket_module.SOL_SOCKET, socket_module.SO_SNDBUF, self.socket_buffer
                )
            writer.transport.set_write_buffer_limits(high=self.socket_buffer)
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            writer.close()
            return
        try:
            if len(head) > _MAX_HEAD:
                raise ValueError("request head too large")
            request = parse_http_request(head)
            if request.method != "GET":
                writer.write(http_response("405 Method Not Allowed", b'{"error":"GET only"}'))
            elif request.path == "/stats":
                await self._serve_stats(writer)
            elif request.path == "/metrics":
                await self._serve_metrics(writer)
            elif request.path == "/stream/sse":
                await self._serve_sse(request, writer)
            elif request.path == "/stream/ws":
                await self._serve_ws(request, reader, writer)
            else:
                writer.write(http_response("404 Not Found", b'{"error":"not found"}'))
        except ResumeGone as exc:
            writer.write(
                http_response(
                    "410 Gone",
                    protocol.dumps({"error": str(exc)}).encode("utf-8"),
                )
            )
        except ValueError as exc:
            writer.write(
                http_response(
                    "400 Bad Request",
                    protocol.dumps({"error": str(exc)}).encode("utf-8"),
                )
            )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away: its subscriber was already removed
        finally:
            try:
                await writer.drain()
                writer.close()
            except (ConnectionError, RuntimeError):
                pass

    async def _serve_stats(self, writer: asyncio.StreamWriter) -> None:
        stats = self.hub.stats()
        stats["server"] = {
            "connections_served": self.connections_served,
            "sessions": len(self._sessions),
            "sessions_reaped": self.sessions_reaped,
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
            "session_detail": {
                session.id: {
                    "attached": session.attached,
                    "queued_windows": session.subscriber.ready_count,
                    "unacked_windows": session.subscriber.inflight_count,
                }
                for session in list(self._sessions.values())
            },
        }
        if profiling.counters is not None:
            decode = profiling.snapshot()
            stats["decode"] = {
                name: getattr(decode, name) for name in decode.__slots__
            }
        writer.write(
            http_response("200 OK", protocol.dumps(stats).encode("utf-8"))
        )

    async def _serve_metrics(self, writer: asyncio.StreamWriter) -> None:
        body = _metrics.exposition().encode("utf-8")
        writer.write(
            http_response(
                "200 OK",
                body,
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        )

    # -- subscription / session attach --------------------------------------

    def _attach(self, request) -> Tuple[Subscriber, Optional[_Session]]:
        """Resolve a request into a subscriber: fresh, durable, or resumed.

        ``session=`` opts into a durable (retaining) subscription;
        ``resume=<session>:<boundary>`` (or ``Last-Event-ID``) re-attaches
        one, acking through the boundary and replaying the rest.
        """
        query: List[Tuple[str, str]] = []
        session_id: Optional[str] = None
        resume_token: Optional[str] = None
        for name, value in request.query:
            if name == "session":
                session_id = value or uuid.uuid4().hex[:12]
            elif name == "resume":
                resume_token = value
            else:
                query.append((name, value))
        if resume_token is None:
            last_event_id = request.header("last-event-id")
            if last_event_id:
                resume_token = last_event_id
        if resume_token is not None:
            sid, _, boundary_text = resume_token.rpartition(":")
            if not sid:
                raise ValueError(f"malformed resume token {resume_token!r}")
            try:
                boundary = int(boundary_text)
            except ValueError:
                raise ValueError(f"malformed resume token {resume_token!r}")
            session = self._reattach(sid)
            session.subscriber.ack(boundary)
            session.subscriber.requeue_unacked()
            return session.subscriber, session
        if session_id is not None:
            if session_id in self._sessions:
                # Re-attach without an ack: everything unacked replays.
                session = self._reattach(session_id)
                session.subscriber.requeue_unacked()
                return session.subscriber, session
            filters, knobs = subscription_from_query(query)
            knobs["retain_unacked"] = True
            if knobs.get("name") is None:
                knobs["name"] = session_id
            subscriber = self.hub.subscribe(filters, **knobs)
            session = _Session(session_id, subscriber)
            self._sessions[session_id] = session
            return subscriber, session
        filters, knobs = subscription_from_query(query)
        return self.hub.subscribe(filters, **knobs), None

    def _reattach(self, session_id: str) -> _Session:
        session = self._sessions.get(session_id)
        if session is None:
            raise ResumeGone(f"unknown or expired session {session_id!r}")
        if session.attached:
            raise ResumeGone(f"session {session_id!r} is already attached")
        session.attached = True
        session.detached_at = None
        return session

    def _release(self, subscriber: Subscriber, session: Optional[_Session]) -> None:
        """Connection over: park a session (or drop a finished one), or
        unsubscribe an ephemeral subscriber."""
        if session is None:
            self.hub.unsubscribe(subscriber)
            return
        if subscriber.finished and subscriber.ready_count == 0:
            # The feed is over and the client saw everything — nothing a
            # reconnect could replay that it hasn't already received.
            self._drop_session(session)
            return
        session.attached = False
        session.detached_at = time.monotonic()

    def _resume_token(self, session: Optional[_Session], window) -> Optional[str]:
        if session is None:
            return None
        return f"{session.id}:{window.end}"

    def _final_frame(self, subscriber: Subscriber) -> dict:
        """The distinct stream-end frame: clean ``end`` or terminal error."""
        error = subscriber.error
        if error is not None:
            return {
                "type": "error",
                "error": type(error).__name__,
                "message": str(error),
                "crashes": self.hub.crashes,
                "restarts": self.hub.restarts,
            }
        body = {"type": "end"}
        if subscriber.crashes:
            body["crashes"] = subscriber.crashes
        return body

    async def _serve_sse(self, request, writer: asyncio.StreamWriter) -> None:
        subscriber, session = self._attach(request)
        ready = asyncio.Event()
        loop = asyncio.get_running_loop()
        subscriber.set_notifier(lambda: loop.call_soon_threadsafe(ready.set))
        writer.write(sse_preamble())
        try:
            async for window in self._windows(subscriber, ready):
                if window is None:
                    writer.write(sse_heartbeat())
                    await writer.drain()
                    continue
                token = self._resume_token(session, window)
                with _metrics.trace_span("deliver"):
                    body = window.payload()
                    if token is not None:
                        body["resume"] = token
                    writer.write(sse_event(body, event="window", event_id=token))
                    await writer.drain()
            final = self._final_frame(subscriber)
            writer.write(sse_event(final, event=final["type"]))
            await writer.drain()
        finally:
            self._release(subscriber, session)

    async def _serve_ws(self, request, reader, writer: asyncio.StreamWriter) -> None:
        if request.header("upgrade").lower() != "websocket":
            writer.write(http_response("400 Bad Request", b'{"error":"upgrade required"}'))
            return
        subscriber, session = self._attach(request)
        writer.write(websocket_handshake_response(request))
        await writer.drain()
        ready = asyncio.Event()
        loop = asyncio.get_running_loop()
        subscriber.set_notifier(lambda: loop.call_soon_threadsafe(ready.set))
        closed = asyncio.Event()
        receiver = asyncio.ensure_future(
            self._ws_receiver(subscriber, reader, writer, closed)
        )
        try:
            async for window in self._windows(subscriber, ready, closed):
                if window is None:
                    writer.write(encode_ws_frame(b"heartbeat", OP_PING))
                    await writer.drain()
                    continue
                token = self._resume_token(session, window)
                with _metrics.trace_span("deliver"):
                    body = window.payload()
                    if token is not None:
                        body["resume"] = token
                    writer.write(
                        encode_ws_frame(protocol.dumps(body).encode("utf-8"), OP_TEXT)
                    )
                    await writer.drain()
            if not closed.is_set():
                final = self._final_frame(subscriber)
                writer.write(
                    encode_ws_frame(protocol.dumps(final).encode("utf-8"), OP_TEXT)
                )
                writer.write(encode_ws_frame(b"", OP_CLOSE))
                await writer.drain()
        finally:
            self._release(subscriber, session)
            receiver.cancel()

    async def _ws_receiver(self, subscriber, reader, writer, closed) -> None:
        """Apply client control frames: subscription multiplexing."""
        parser = WSFrameParser()
        while not closed.is_set():
            data = await reader.read(4096)
            if not data:
                closed.set()
                return
            for opcode, payload in parser.feed(data):
                if opcode == OP_CLOSE:
                    closed.set()
                    return
                if opcode == OP_PING:
                    writer.write(encode_ws_frame(payload, OP_PONG))
                    continue
                if opcode != OP_TEXT:
                    continue
                response = self._apply_control(subscriber, payload)
                # No drain() here: the sender coroutine may be draining
                # concurrently and StreamWriter.drain is single-waiter.
                # Acks are tiny; the kernel buffer absorbs them.
                writer.write(
                    encode_ws_frame(protocol.dumps(response).encode("utf-8"), OP_TEXT)
                )

    @staticmethod
    def _apply_control(subscriber: Subscriber, payload: bytes) -> dict:
        try:
            message = json.loads(payload.decode("utf-8"))
            action = message["action"]
            if action == "add_filter":
                subscriber.add_filter(message["name"], message["value"])
            elif action == "remove_filter":
                subscriber.remove_filter(message["name"], message["value"])
            elif action == "set_interval":
                end = message.get("end")
                subscriber.set_interval(int(message["start"]), end)
            elif action == "ack":
                released = subscriber.ack(int(message["window_end"]))
                return {
                    "type": "ack",
                    "action": action,
                    "window_end": int(message["window_end"]),
                    "released": released,
                }
            else:
                raise ValueError(f"unknown action {action!r}")
        except (KeyError, ValueError, TypeError, json.JSONDecodeError) as exc:
            return {"type": "error", "error": str(exc)}
        return {
            "type": "ack",
            "action": action,
            "name": message.get("name"),
            "value": message.get("value"),
        }

    async def _windows(self, subscriber, ready, closed: Optional[asyncio.Event] = None):
        """Yield windows as they close; return when the feed (or client)
        finishes.  Clear-before-check ordering makes the notifier race-free:
        anything pushed after the pop loop re-sets the event.  With a
        ``heartbeat_interval``, a wait that times out yields ``None`` — the
        caller sends its transport's keepalive frame."""
        while closed is None or not closed.is_set():
            ready.clear()
            while (window := subscriber.pop_window()) is not None:
                yield window
                if closed is not None and closed.is_set():
                    return
            if subscriber.finished and subscriber.ready_count == 0:
                return
            if closed is None:
                if self.heartbeat_interval is None:
                    await ready.wait()
                else:
                    try:
                        await asyncio.wait_for(ready.wait(), self.heartbeat_interval)
                    except asyncio.TimeoutError:
                        yield None
            else:
                closed_wait = asyncio.ensure_future(closed.wait())
                ready_wait = asyncio.ensure_future(ready.wait())
                try:
                    done, _pending = await asyncio.wait(
                        [closed_wait, ready_wait],
                        return_when=asyncio.FIRST_COMPLETED,
                        timeout=self.heartbeat_interval,
                    )
                    if not done:
                        yield None
                finally:
                    closed_wait.cancel()
                    ready_wait.cancel()
