"""The fan-out hub: one decode loop, N filtered subscribers.

The :class:`StreamHub` owns a live :class:`~repro.core.stream.BGPStream`
(BMP-over-Kafka feed) and runs its decode loop in **one** bridge thread.
Every elem is decoded exactly once; each :class:`Subscriber` then sees the
shared elem objects through its own trie-backed
:class:`~repro.core.filters.FilterSet` and its own event-time window, so
the per-subscriber cost is ``match_elem`` — never a re-decode — and all
subscribers share the stream's intern pool.

Backpressure is per subscriber and never reaches the decode loop: closed
windows land in a bounded deque; when a slow consumer lets it fill, the
oldest two windows *coalesce* into one (elems concatenated, span widened)
up to an elem budget — and once the budget leaves no room for the oldest
window at all, that window is dropped wholly and its successor carries a
gap marker (``gap_before`` / ``dropped_elems``).  A fast subscriber on the
same feed stays gapless throughout.

The hub is asyncio-agnostic: the server layer bridges into an event loop by
registering a notifier callback per subscriber
(:meth:`Subscriber.set_notifier` → ``loop.call_soon_threadsafe``); a
benchmark or test can equally drive :meth:`StreamHub.run` synchronously and
pop windows directly.

Resilience: the decode loop runs under a
:class:`~repro.core.resilience.Supervisor`.  A bridge crash (a poll path
that exhausted its retries, a decode bug) is never silent: every
subscriber's next window carries a ``crash_before`` marker, the hub
rebuilds its stream through ``stream_factory`` and resumes from the
consumer group's committed offsets — the PR 5 window-holdback machinery
makes that boundary exact, so a crash can neither lose nor duplicate
elems (offsets commit inside successful polls only).  When the restart
budget is spent the hub *gives up cleanly*: subscribers finish with
``error`` set, so the server sends a distinct error frame instead of a
flush indistinguishable from end-of-stream.  Subscribers can additionally
retain delivered-but-unacked windows (``retain_unacked``) — the server's
reconnect-with-cursor resume tokens are built on :meth:`Subscriber.ack` /
:meth:`Subscriber.requeue_unacked`.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from repro import _metrics
from repro.core.elem import BGPElem
from repro.core.filters import FilterSet
from repro.core.resilience import RetryPolicy, Supervisor
from repro.core.stream import BGPStream
from repro.utils.timeutil import Clock, SystemClock

__all__ = ["GatewayWindow", "Subscriber", "StreamHub"]

#: Default width of a subscriber's event-time window, in feed seconds.
DEFAULT_WINDOW_SIZE = 1

#: Default bound on closed windows queued per subscriber.
DEFAULT_MAX_QUEUED_WINDOWS = 8

#: Default cap on elems a coalesced window may accumulate before the
#: oldest elems are dropped (the gap marker records how many).
DEFAULT_COALESCE_BUDGET = 4096

#: Default bridge restart budget when the hub can rebuild its stream.
DEFAULT_MAX_RESTARTS = 3

#: Telemetry (see docs/OBSERVABILITY.md).  The hub keeps its existing exact
#: per-instance counters (stats() and the tests read those); the registry
#: view is *bridged* — ``collected=True`` families are reset each scrape
#: and repopulated by a weakref-bound collector per live hub, summing over
#: hubs and their subscribers.  The hot path pays nothing for them.
_hub_records = _metrics.counter(
    "repro_hub_records_total",
    "Records the hub decode loop consumed, summed over live hubs.",
    collected=True,
)
_hub_elems = _metrics.counter(
    "repro_hub_elems_total",
    "Elems seen by the decode loop vs admitted into subscriber windows.",
    labelnames=("kind",),
    collected=True,
)
_hub_windows = _metrics.counter(
    "repro_hub_windows_total",
    "Subscriber window events (closed, coalesced, dropped), summed over "
    "every subscriber of every live hub.",
    labelnames=("event",),
    collected=True,
)
_hub_elems_dropped = _metrics.counter(
    "repro_hub_backpressure_dropped_elems_total",
    "Elems discarded by subscriber backpressure (coalesce-budget "
    "truncation and wholly dropped windows).",
    collected=True,
)
_hub_subscribers = _metrics.gauge(
    "repro_hub_subscribers",
    "Subscribers currently attached, summed over live hubs.",
    collected=True,
)
_hub_queue_depth = _metrics.gauge(
    "repro_hub_subscriber_queue_depth",
    "Ready (undelivered) windows queued per named subscriber; anonymous "
    "subscribers aggregate under 'anonymous'.",
    labelnames=("subscriber",),
    collected=True,
)


def _elem_payload(elem: BGPElem) -> Dict:
    fields = elem.field_dict()
    communities = fields.get("communities")
    if isinstance(communities, (set, frozenset)):
        fields["communities"] = sorted(communities)  # JSON has no sets
    return {
        "elem_type": str(elem.elem_type),
        "time": elem.time,
        "peer_address": elem.peer_address,
        "peer_asn": elem.peer_asn,
        "fields": fields,
    }


class GatewayWindow:
    """One closed event-time window of elems for one subscriber."""

    __slots__ = (
        "start",
        "end",
        "elems",
        "coalesced",
        "dropped_elems",
        "gap_before",
        "crash_before",
    )

    def __init__(self, start: int, end: int) -> None:
        self.start = start
        self.end = end  # exclusive
        self.elems: List[BGPElem] = []
        #: Number of older windows merged into this one under backpressure.
        self.coalesced = 0
        #: Elems discarded immediately before or within this window under
        #: backpressure (budget truncation + wholly dropped predecessors).
        self.dropped_elems = 0
        #: Whole windows discarded immediately before this one.
        self.gap_before = 0
        #: Bridge crashes (followed by a supervised restart) that occurred
        #: before this window was delivered — the explicit crash marker.
        self.crash_before = 0

    @property
    def has_gap(self) -> bool:
        return self.dropped_elems > 0 or self.gap_before > 0 or self.crash_before > 0

    def payload(self) -> Dict:
        """The JSON-ready wire form (elems as ``field_dict`` views)."""
        body = {
            "type": "window",
            "window_start": self.start,
            "window_end": self.end,
            "elems": [_elem_payload(elem) for elem in self.elems],
        }
        if self.coalesced:
            body["coalesced"] = self.coalesced
        if self.dropped_elems:
            body["dropped_elems"] = self.dropped_elems
        if self.gap_before:
            body["gap_before"] = self.gap_before
        if self.crash_before:
            body["crash_before"] = self.crash_before
        return body

    def __repr__(self) -> str:
        return (
            f"GatewayWindow([{self.start}, {self.end}), {len(self.elems)} elems"
            + (f", coalesced={self.coalesced}" if self.coalesced else "")
            + (f", gap_before={self.gap_before}" if self.gap_before else "")
            + ")"
        )


class Subscriber:
    """One consumer of the shared feed: filters + window + bounded queue.

    All mutable state is guarded by ``_lock`` — the bridge thread matches
    and windows elems under it, while connection handlers add/remove
    filters (subscription multiplexing) and pop closed windows from their
    own threads/tasks.  Every operation under the lock is small and
    allocation-light, so the decode loop never waits long.
    """

    def __init__(
        self,
        filters: Optional[FilterSet] = None,
        *,
        window_size: int = DEFAULT_WINDOW_SIZE,
        max_queued_windows: int = DEFAULT_MAX_QUEUED_WINDOWS,
        coalesce_budget: int = DEFAULT_COALESCE_BUDGET,
        retain_unacked: bool = False,
        name: Optional[str] = None,
    ) -> None:
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        if max_queued_windows <= 0:
            raise ValueError("max_queued_windows must be positive")
        self.name = name
        self.filters = filters if filters is not None else FilterSet()
        self.window_size = int(window_size)
        self.max_queued_windows = max_queued_windows
        self.coalesce_budget = coalesce_budget
        #: Keep popped windows until :meth:`ack` releases them, so a
        #: reconnecting client can replay what it never acknowledged.
        self.retain_unacked = retain_unacked
        self._lock = threading.Lock()
        self._current: Optional[GatewayWindow] = None
        self._ready: List[GatewayWindow] = []
        self._inflight: List[GatewayWindow] = []
        self._notifier: Optional[Callable[[], None]] = None
        self._pending_crash = 0
        self.finished = False
        #: The terminal bridge error, set only when the hub gave up (a
        #: recovered crash leaves markers, not an error).
        self.error: Optional[BaseException] = None
        #: Highest window boundary the client has acknowledged.
        self.acked_through: Optional[int] = None
        # Counters (read under the lock via snapshot()).
        self.elems_matched = 0
        self.windows_closed = 0
        self.windows_coalesced = 0
        self.windows_dropped = 0
        self.elems_dropped = 0
        self.crashes = 0

    # -- multiplexing (called from connection handlers) --------------------

    def add_filter(self, name: str, value: str) -> None:
        with self._lock:
            self.filters.add(name, value)

    def remove_filter(self, name: str, value: str) -> None:
        with self._lock:
            self.filters.remove(name, value)

    def set_interval(self, start: int, end: Optional[int]) -> None:
        with self._lock:
            self.filters.add_interval(start, end)

    def set_notifier(self, notifier: Optional[Callable[[], None]]) -> None:
        """Register a callback fired (from the bridge thread) whenever a
        window becomes ready or the feed finishes — the server layer passes
        ``lambda: loop.call_soon_threadsafe(event.set)``."""
        with self._lock:
            self._notifier = notifier
            pending = bool(self._ready) or self.finished
        if notifier is not None and pending:
            notifier()

    # -- the bridge-thread side --------------------------------------------

    def offer(self, elem: BGPElem) -> bool:
        """Match one shared elem; window it if admitted.  Returns whether
        the elem was admitted (the hub's fan-out statistics)."""
        notify = False
        with self._lock:
            filters = self.filters
            if filters.interval_start is not None and elem.time < filters.interval_start:
                return False
            if filters.interval_end is not None and elem.time > filters.interval_end:
                return False
            if not filters.match_elem(elem):
                return False
            self.elems_matched += 1
            index = int(elem.time) // self.window_size
            current = self._current
            if current is None:
                self._current = current = self._open(index)
            elif int(elem.time) >= current.end:
                notify = self._push(current)
                self._current = current = self._open(index)
            # Late elems (time before the open window) stay in the open
            # window: delivery beats strict binning on a live feed.
            current.elems.append(elem)
        if notify:
            self._fire()
        return True

    def flush(self, finished: bool = False, error: Optional[BaseException] = None) -> None:
        """Close the open window (end of feed / stop) and optionally mark
        the subscriber finished so drains terminate.  ``error`` marks a
        terminal bridge failure — consumers then surface a distinct error
        frame instead of a clean end-of-stream."""
        notify = False
        with self._lock:
            current = self._current
            if current is not None and current.elems:
                notify = self._push(current)
            self._current = None
            if finished:
                self.finished = True
                if error is not None:
                    self.error = error
                notify = True
        if notify:
            self._fire()

    def mark_crash(self) -> None:
        """Record a bridge crash: the next delivered window carries a
        ``crash_before`` marker.  The open window stays open — elems that
        arrive after the supervised restart keep filling it, so window
        spans never overlap and nothing is delivered twice."""
        with self._lock:
            self.crashes += 1
            self._pending_crash += 1

    def _open(self, index: int) -> GatewayWindow:
        start = index * self.window_size
        return GatewayWindow(start, start + self.window_size)

    def _push(self, window: GatewayWindow) -> bool:
        """Queue a closed window; coalesce/drop under backpressure.
        Returns True when the consumer should be notified.  Caller holds
        the lock."""
        self.windows_closed += 1
        if self._pending_crash:
            window.crash_before += self._pending_crash
            self._pending_crash = 0
        ready = self._ready
        ready.append(window)
        while len(ready) > self.max_queued_windows:
            oldest, second = ready[0], ready[1]
            overflow = len(oldest.elems) + len(second.elems) - self.coalesce_budget
            if overflow >= len(oldest.elems):
                # The budget leaves no room for any of the oldest window's
                # elems: drop it wholly, marking the gap on its successor.
                second.gap_before += oldest.gap_before + oldest.coalesced + 1
                second.dropped_elems += oldest.dropped_elems + len(oldest.elems)
                second.crash_before += oldest.crash_before
                self.windows_dropped += 1
                self.elems_dropped += len(oldest.elems)
                del ready[0]
                continue
            # Coalesce the two oldest into one wider window...
            merged = GatewayWindow(oldest.start, second.end)
            merged.elems = oldest.elems + second.elems
            merged.coalesced = oldest.coalesced + second.coalesced + 1
            merged.dropped_elems = oldest.dropped_elems + second.dropped_elems
            merged.gap_before = oldest.gap_before
            merged.crash_before = oldest.crash_before + second.crash_before
            self.windows_coalesced += 1
            # ...bounded by the elem budget: past it, the oldest elems go.
            if len(merged.elems) > self.coalesce_budget:
                overflow = len(merged.elems) - self.coalesce_budget
                del merged.elems[:overflow]
                merged.dropped_elems += overflow
                self.elems_dropped += overflow
            ready[:2] = [merged]
        return True

    def _fire(self) -> None:
        notifier = self._notifier
        if notifier is not None:
            try:
                notifier()
            except Exception:  # pragma: no cover - a dead loop must not
                pass  # kill the bridge thread

    # -- the consuming side ------------------------------------------------

    def pop_window(self) -> Optional[GatewayWindow]:
        """The oldest ready window, or None.

        With ``retain_unacked`` the popped window also enters the in-flight
        buffer, where it stays until :meth:`ack` covers its end boundary
        (or the buffer overflows — then the oldest unacked window sheds
        with the same gap accounting as queue backpressure)."""
        with self._lock:
            if not self._ready:
                return None
            window = self._ready.pop(0)
            if self.retain_unacked:
                self._inflight.append(window)
                self._shed_inflight_locked()
            return window

    def ack(self, boundary: int) -> int:
        """Release retained windows ending at or before ``boundary``.

        Returns how many windows the ack released.  ``boundary`` is the
        ``window_end`` the client last processed — exactly what its resume
        token names."""
        with self._lock:
            before = len(self._inflight)
            self._inflight = [w for w in self._inflight if w.end > boundary]
            if self.acked_through is None or boundary > self.acked_through:
                self.acked_through = boundary
            return before - len(self._inflight)

    def requeue_unacked(self) -> int:
        """Put every retained window back at the head of the ready queue.

        A reconnecting client calls this (after acking through its resume
        token) so windows it received but never acknowledged are delivered
        again, oldest first, ahead of anything that queued meanwhile.
        Returns how many windows were requeued."""
        with self._lock:
            count = len(self._inflight)
            if count:
                self._ready[:0] = self._inflight
                self._inflight = []
        if count:
            self._fire()
        return count

    def _shed_inflight_locked(self) -> None:
        # A client that never acks must not pin unbounded memory: past the
        # queue bound, the oldest unacked window sheds and its successor
        # (still retained, so a future reconnect sees it) carries the gap.
        while len(self._inflight) > self.max_queued_windows:
            oldest = self._inflight.pop(0)
            successor = self._inflight[0]
            successor.gap_before += oldest.gap_before + oldest.coalesced + 1
            successor.dropped_elems += oldest.dropped_elems + len(oldest.elems)
            successor.crash_before += oldest.crash_before
            self.windows_dropped += 1
            self.elems_dropped += len(oldest.elems)

    def drain(self) -> List[GatewayWindow]:
        """All ready windows at once (benchmark/test convenience)."""
        with self._lock:
            out, self._ready = self._ready, []
        return out

    @property
    def ready_count(self) -> int:
        with self._lock:
            return len(self._ready)

    @property
    def inflight_count(self) -> int:
        with self._lock:
            return len(self._inflight)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "elems_matched": self.elems_matched,
                "windows_closed": self.windows_closed,
                "windows_coalesced": self.windows_coalesced,
                "windows_dropped": self.windows_dropped,
                "elems_dropped": self.elems_dropped,
                "crashes": self.crashes,
                "ready": len(self._ready),
                "inflight": len(self._inflight),
            }


class StreamHub:
    """One decode loop fanning a live BGPStream out to N subscribers.

    With a ``stream_factory`` the decode loop is *supervised*: a bridge
    crash marks every subscriber (``crash_before``), the stream is rebuilt
    through the factory — the consumer group's committed offsets are the
    resume point, so nothing is lost or re-delivered — and the loop
    restarts, up to ``max_restarts`` times with ``restart_backoff``
    between attempts.  Without a factory the budget defaults to zero and
    the first crash is terminal, but still *surfaced*: subscribers finish
    with ``error`` set and :meth:`stats` reports the exception class.
    """

    def __init__(
        self,
        stream: Optional[BGPStream] = None,
        *,
        stream_factory: Optional[Callable[[], BGPStream]] = None,
        max_restarts: Optional[int] = None,
        restart_backoff: Optional[RetryPolicy] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        if stream is None:
            if stream_factory is None:
                raise ValueError("StreamHub needs a stream or a stream_factory")
            stream = stream_factory()
        if not stream.is_live:
            raise ValueError("StreamHub needs a live BGPStream (BGPStream(live=...))")
        self.stream = stream
        self._stream_factory = stream_factory
        if max_restarts is None:
            max_restarts = DEFAULT_MAX_RESTARTS if stream_factory is not None else 0
        if max_restarts > 0 and stream_factory is None:
            raise ValueError("a restart budget needs a stream_factory to rebuild with")
        self.max_restarts = max_restarts
        self.restart_backoff = restart_backoff
        self.clock = clock or SystemClock()
        self._supervisor: Optional[Supervisor] = None
        self._lock = threading.Lock()
        self._subscribers: List[Subscriber] = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.records_seen = 0
        self.elems_seen = 0
        self.elems_delivered = 0
        self.restarts = 0
        self.started = False
        self.finished = False
        self.gave_up = False
        self.error: Optional[BaseException] = None
        # Bridge this hub into the telemetry registry for as long as the
        # instance lives (weakref-owned — no deregistration needed).
        _metrics.default_registry().add_collector(StreamHub._collect_metrics, owner=self)

    def _collect_metrics(self) -> None:
        """Scrape-time bridge: fold this hub's exact counters in."""
        _hub_records.add_total(self.records_seen)
        _hub_elems.add_total(self.elems_seen, kind="seen")
        _hub_elems.add_total(self.elems_delivered, kind="delivered")
        with self._lock:
            subscribers = list(self._subscribers)
        _hub_subscribers.inc(len(subscribers))
        closed = coalesced = dropped = elems_dropped = 0
        for subscriber in subscribers:
            snap = subscriber.snapshot()
            closed += snap["windows_closed"]
            coalesced += snap["windows_coalesced"]
            dropped += snap["windows_dropped"]
            elems_dropped += snap["elems_dropped"]
            _hub_queue_depth.inc(snap["ready"], subscriber=subscriber.name or "anonymous")
        _hub_windows.add_total(closed, event="closed")
        _hub_windows.add_total(coalesced, event="coalesced")
        _hub_windows.add_total(dropped, event="dropped")
        _hub_elems_dropped.add_total(elems_dropped)

    # -- subscriptions ------------------------------------------------------

    def subscribe(
        self,
        filters: Optional[FilterSet] = None,
        *,
        window_size: int = DEFAULT_WINDOW_SIZE,
        max_queued_windows: int = DEFAULT_MAX_QUEUED_WINDOWS,
        coalesce_budget: int = DEFAULT_COALESCE_BUDGET,
        retain_unacked: bool = False,
        name: Optional[str] = None,
    ) -> Subscriber:
        subscriber = Subscriber(
            filters,
            window_size=window_size,
            max_queued_windows=max_queued_windows,
            coalesce_budget=coalesce_budget,
            retain_unacked=retain_unacked,
            name=name,
        )
        with self._lock:
            if self.finished:
                # A late joiner of a finished feed drains nothing but must
                # still terminate cleanly (and see the terminal error, if
                # the feed died rather than ended).
                subscriber.finished = True
                if self.gave_up:
                    subscriber.error = self.error
            self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: Subscriber) -> None:
        with self._lock:
            try:
                self._subscribers.remove(subscriber)
            except ValueError:
                pass

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)

    # -- the decode loop ----------------------------------------------------

    def run(self) -> None:
        """Consume the live stream until it ends (or :meth:`stop`).

        Every record decodes once; every elem extracts once; subscribers
        see the shared objects.  Runs in the caller's thread — use
        :meth:`start` for the background-thread form.  The loop runs under
        a :class:`~repro.core.resilience.Supervisor`; once the restart
        budget is spent the terminal exception is re-raised here (the
        threaded form records it instead — either way subscribers finish
        with ``error`` set, never with a clean-looking flush).
        """
        supervisor = Supervisor(
            self._run_once,
            max_restarts=self.max_restarts,
            backoff=self.restart_backoff,
            clock=self.clock,
            on_crash=self._handle_crash,
            name="gateway-bridge",
        )
        self._supervisor = supervisor
        try:
            supervisor.supervise()
        except BaseException as exc:
            self.error = exc
            self.gave_up = True
            self._finish(exc)
            raise
        else:
            self._finish(None)

    def _run_once(self) -> None:
        """One bridge attempt over the current stream (raises on error)."""
        self.started = True
        for record in self.stream.records():
            if self._stop.is_set():
                return
            self.records_seen += 1
            if not record.is_valid:
                continue
            # Snapshot the roster once per record: joins/leaves observed
            # at record granularity keep the per-elem loop copy-free.
            with self._lock:
                subscribers = list(self._subscribers)
            if _metrics.enabled:
                with _metrics.trace_span("fanout"):
                    self._fan_out(record, subscribers)
            else:
                self._fan_out(record, subscribers)

    def _fan_out(self, record, subscribers: List[Subscriber]) -> None:
        """Offer one record's elems to every subscriber."""
        for elem in record.elems():
            self.elems_seen += 1
            for subscriber in subscribers:
                if subscriber.offer(elem):
                    self.elems_delivered += 1

    def _handle_crash(self, exc: BaseException, crash_no: int) -> bool:
        """Supervisor hook: mark every subscriber, rebuild the stream.

        Returning False vetoes the restart (no factory, or the rebuild
        itself failed) and the supervisor gives up.
        """
        self.error = exc
        with self._lock:
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            subscriber.mark_crash()
        if self._stream_factory is None or self._stop.is_set():
            return False
        try:
            # The rebuilt stream's source joins the same broker + consumer
            # group: committed offsets survive the crash, so the new bridge
            # resumes exactly after the last successfully polled message.
            self.stream = self._stream_factory()
        except Exception:
            return False
        self.restarts += 1
        return True

    def _finish(self, error: Optional[BaseException]) -> None:
        with self._lock:
            self.finished = True
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            subscriber.flush(finished=True, error=error)

    def start(self) -> threading.Thread:
        """Run the (supervised) decode loop in a daemon bridge thread."""
        if self._thread is not None:
            raise RuntimeError("hub already started")
        self._thread = threading.Thread(target=self._guarded_run, daemon=True)
        self._thread.start()
        return self._thread

    def _guarded_run(self) -> None:
        try:
            self.run()
        except BaseException:  # noqa: BLE001 - recorded in self.error and
            pass  # surfaced through subscriber.error / stats()["error"]

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        """Ask the decode loop to stop and join the bridge thread."""
        self._stop.set()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=timeout)

    def join(self, timeout: Optional[float] = None) -> None:
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)

    @property
    def crashes(self) -> int:
        """Bridge crashes so far (terminal one included)."""
        supervisor = self._supervisor
        return supervisor.crashes if supervisor is not None else 0

    def stats(self) -> Dict:
        with self._lock:
            subscribers = list(self._subscribers)
        source = getattr(self.stream._interface, "source", None)
        error = self.error
        body = {
            "subscribers": len(subscribers),
            "records_seen": self.records_seen,
            "elems_seen": self.elems_seen,
            "elems_delivered": self.elems_delivered,
            "finished": self.finished,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "gave_up": self.gave_up,
            "error": type(error).__name__ if error is not None else None,
        }
        if source is not None:
            body["frames_decoded"] = getattr(source, "frames_decoded", None)
            body["corrupt_frames"] = getattr(source, "corrupt_frames", None)
        pool = self.stream.intern_pool
        if pool is not None:
            body["intern"] = {
                kind: counters["hits"] + counters["misses"] + counters["overflow"]
                for kind, counters in pool.stats().items()
            }
        return body
