"""Wire protocols of the streaming gateway (stdlib only).

Nothing installable is assumed: the WebSocket side is a hand-rolled
RFC 6455 subset (handshake via the SHA-1 accept key, text/close/ping
frames, client-to-server masking) and the SSE side is plain HTTP with
``text/event-stream`` framing.  Both carry the same JSON window payloads
produced by :meth:`repro.gateway.hub.GatewayWindow.payload`.
"""

from __future__ import annotations

import base64
import hashlib
import json
import struct
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

__all__ = [
    "parse_http_request",
    "http_response",
    "sse_preamble",
    "sse_event",
    "sse_heartbeat",
    "websocket_accept",
    "websocket_handshake_response",
    "encode_ws_frame",
    "WSFrameParser",
    "dumps",
]

#: RFC 6455 §1.3 — the fixed GUID appended to the client key.
_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA


def dumps(payload: Dict) -> str:
    """Compact JSON — one shape for both transports."""
    return json.dumps(payload, separators=(",", ":"), sort_keys=True)


# ---------------------------------------------------------------------------
# Minimal HTTP request head
# ---------------------------------------------------------------------------


class HTTPRequest:
    """The parsed head of one HTTP request: method, path, query pairs
    and headers — all the hand-rolled server needs to route it."""

    __slots__ = ("method", "path", "query", "headers")

    def __init__(
        self,
        method: str,
        path: str,
        query: List[Tuple[str, str]],
        headers: Dict[str, str],
    ) -> None:
        self.method = method
        self.path = path
        self.query = query  # ordered (name, value) pairs: repeats allowed
        self.headers = headers  # lower-cased names

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)


def parse_http_request(head: bytes) -> HTTPRequest:
    """Parse a request head (everything up to the blank line)."""
    text = head.decode("latin-1")
    lines = text.split("\r\n")
    try:
        method, target, _version = lines[0].split(" ", 2)
    except ValueError:
        raise ValueError(f"malformed request line: {lines[0]!r}")
    parts = urlsplit(target)
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return HTTPRequest(
        method.upper(),
        parts.path,
        parse_qsl(parts.query, keep_blank_values=True),
        headers,
    )


def http_response(
    status: str,
    body: bytes = b"",
    content_type: str = "application/json",
    extra_headers: Tuple[Tuple[str, str], ...] = (),
) -> bytes:
    lines = [f"HTTP/1.1 {status}", f"Content-Type: {content_type}",
             f"Content-Length: {len(body)}", "Connection: close"]
    for name, value in extra_headers:
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


# ---------------------------------------------------------------------------
# Server-Sent Events
# ---------------------------------------------------------------------------


def sse_preamble() -> bytes:
    return (
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: text/event-stream\r\n"
        b"Cache-Control: no-cache\r\n"
        b"Connection: close\r\n\r\n"
    )


def sse_event(
    payload: Dict, event: Optional[str] = None, event_id: Optional[str] = None
) -> bytes:
    """One SSE event frame carrying a JSON payload.

    ``event_id`` becomes the frame's ``id:`` line — browsers echo the last
    one back as ``Last-Event-ID`` on reconnect, which is exactly how the
    gateway's resume tokens ride the standard SSE reconnect machinery.
    """
    out = []
    if event:
        out.append(f"event: {event}")
    if event_id:
        out.append(f"id: {event_id}")
    out.append(f"data: {dumps(payload)}")
    return ("\n".join(out) + "\n\n").encode("utf-8")


def sse_heartbeat() -> bytes:
    """An SSE comment frame — keeps NATs/proxies open, carries no event."""
    return b": heartbeat\n\n"


# ---------------------------------------------------------------------------
# WebSocket (RFC 6455 subset)
# ---------------------------------------------------------------------------


def websocket_accept(key: str) -> str:
    """The Sec-WebSocket-Accept value for a client Sec-WebSocket-Key."""
    digest = hashlib.sha1((key + _WS_GUID).encode("latin-1")).digest()
    return base64.b64encode(digest).decode("latin-1")


def websocket_handshake_response(request: HTTPRequest) -> bytes:
    key = request.header("sec-websocket-key")
    if not key:
        raise ValueError("missing Sec-WebSocket-Key")
    return (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {websocket_accept(key)}\r\n\r\n"
    ).encode("latin-1")


def encode_ws_frame(payload: bytes, opcode: int = OP_TEXT, mask: bool = False) -> bytes:
    """One final (FIN=1) frame.  ``mask=True`` builds the client form."""
    head = bytearray([0x80 | opcode])
    mask_bit = 0x80 if mask else 0
    length = len(payload)
    if length < 126:
        head.append(mask_bit | length)
    elif length < 1 << 16:
        head.append(mask_bit | 126)
        head += struct.pack(">H", length)
    else:
        head.append(mask_bit | 127)
        head += struct.pack(">Q", length)
    if mask:
        # A fixed key keeps the codec deterministic; masking exists to
        # defeat proxy cache poisoning, not for secrecy.
        key = b"\x37\xfa\x21\x3d"
        head += key
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(head) + payload


class WSFrameParser:
    """Incremental decoder of (possibly masked) WebSocket frames.

    Feed raw socket bytes in; take complete ``(opcode, payload)`` frames
    out.  Fragmented messages are reassembled; control frames come through
    as-is between fragments.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._fragments: List[bytes] = []
        self._fragment_opcode: Optional[int] = None

    def feed(self, data: bytes) -> List[Tuple[int, bytes]]:
        self._buffer += data
        frames: List[Tuple[int, bytes]] = []
        while True:
            parsed = self._next_frame()
            if parsed is None:
                return frames
            fin, opcode, payload = parsed
            if opcode in (OP_CLOSE, OP_PING, OP_PONG):
                frames.append((opcode, payload))
                continue
            if opcode == 0x0:  # continuation
                self._fragments.append(payload)
                if fin and self._fragment_opcode is not None:
                    frames.append((self._fragment_opcode, b"".join(self._fragments)))
                    self._fragments = []
                    self._fragment_opcode = None
                continue
            if not fin:
                self._fragment_opcode = opcode
                self._fragments = [payload]
                continue
            frames.append((opcode, payload))

    def _next_frame(self) -> Optional[Tuple[bool, int, bytes]]:
        buffer = self._buffer
        if len(buffer) < 2:
            return None
        first, second = buffer[0], buffer[1]
        fin = bool(first & 0x80)
        opcode = first & 0x0F
        masked = bool(second & 0x80)
        length = second & 0x7F
        offset = 2
        if length == 126:
            if len(buffer) < 4:
                return None
            length = struct.unpack_from(">H", buffer, 2)[0]
            offset = 4
        elif length == 127:
            if len(buffer) < 10:
                return None
            length = struct.unpack_from(">Q", buffer, 2)[0]
            offset = 10
        if masked:
            if len(buffer) < offset + 4:
                return None
            key = bytes(buffer[offset : offset + 4])
            offset += 4
        if len(buffer) < offset + length:
            return None
        payload = bytes(buffer[offset : offset + length])
        del buffer[: offset + length]
        if masked:
            payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
        return fin, opcode, payload
