"""repro-gateway: serve a live BMP feed to many filtered subscribers.

Replays a recorded raw BMP frame stream (the ``bgpreader --live`` format)
through an in-memory Kafka broker, decodes it **once** in a bridge thread,
and fans the elems out over WebSocket (``/stream/ws``) and SSE
(``/stream/sse``) with per-client filters, event-time windows and
backpressure.  ``/stats`` reports the decode-once counters.

    python -m repro.gateway --live frames.bmp --port 8400 \
        --await-subscribers 1 --idle-polls 100

See ``examples/gateway_client.py`` for both client idioms.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
import threading
from typing import IO, List, Optional

from repro.core import profiling
from repro.core.interfaces import LiveDataInterface
from repro.core.stream import BGPStream
from repro.gateway.hub import StreamHub
from repro.gateway.server import GatewayServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gateway",
        description="Fan a live BMP feed out to filtered WebSocket/SSE subscribers.",
    )
    source = parser.add_argument_group("data source")
    source.add_argument(
        "--live",
        required=True,
        help="path to a recorded raw BMP frame stream, replayed through an "
             "in-memory Kafka broker (OpenBMP-style feed)",
    )
    source.add_argument("--bmp-topic", default=None,
                        help="Kafka topic for the BMP frames (default: openbmp.bmp_raw)")
    source.add_argument("--bmp-router", default=None,
                        help="router name keying the feed (default: the file name)")

    serving = parser.add_argument_group("serving")
    serving.add_argument("--host", default="127.0.0.1")
    serving.add_argument("--port", type=int, default=8400,
                         help="TCP port (0 picks an ephemeral port; default: 8400)")
    serving.add_argument(
        "--await-subscribers", type=int, default=0, metavar="N",
        help="hold the decode loop until N subscribers connected "
             "(default: 0 = start immediately)",
    )
    serving.add_argument(
        "--idle-polls", type=int, default=None, metavar="N",
        help="end the feed after N consecutive empty polls "
             "(default: poll forever; replay demos want a small number)",
    )
    serving.add_argument(
        "--poll-interval", type=float, default=0.05,
        help="seconds between feed polls when idle (default: 0.05)",
    )
    serving.add_argument(
        "--exit-when-drained", action="store_true",
        help="shut the server down once the feed finished and every "
             "subscriber drained (replay/benchmark mode)",
    )
    serving.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="additionally serve the Prometheus /metrics exposition on a "
             "standalone scrape port (the gateway itself always serves "
             "GET /metrics on its main port once metrics are enabled); "
             "implies enabling the telemetry registry and decode profiling",
    )
    serving.add_argument(
        "--metrics", action="store_true",
        help="enable the telemetry registry (and decode profiling) without "
             "a standalone scrape port; GET /metrics on the main port "
             "serves the exposition",
    )

    engine = parser.add_argument_group("engine")
    engine.add_argument("--eager-decode", action="store_true",
                        help="decode every path attribute at parse time")
    engine.add_argument("--no-intern", action="store_true",
                        help="disable flyweight interning of parsed BGP values")
    engine.add_argument("--decode-stats", action="store_true",
                        help="enable decode-tier counters (served under /stats; "
                             "printed as #-lines on exit)")

    resilience = parser.add_argument_group("resilience")
    resilience.add_argument(
        "--max-restarts", type=int, default=3, metavar="N",
        help="bridge crashes absorbed by supervised restart before the hub "
             "gives up and surfaces the error (default: 3)",
    )
    resilience.add_argument(
        "--heartbeat-interval", type=float, default=15.0, metavar="SECONDS",
        help="send-side silence before a keepalive frame (SSE comment / WS "
             "ping); 0 disables heartbeats (default: 15)",
    )
    resilience.add_argument(
        "--session-ttl", type=float, default=60.0, metavar="SECONDS",
        help="how long a disconnected session= subscription is retained for "
             "reconnect-with-cursor before it is reaped (default: 60)",
    )
    return parser


def build_hub(args: argparse.Namespace) -> StreamHub:
    """The live stream + hub for parsed CLI arguments (no sockets yet)."""
    from repro.bmp.source import DEFAULT_BMP_TOPIC, BMPFeedProducer
    from repro.kafka.broker import MessageBroker

    topic = args.bmp_topic or DEFAULT_BMP_TOPIC
    router = args.bmp_router or os.path.basename(args.live)
    broker = MessageBroker()
    producer = BMPFeedProducer(broker, topic=topic, router=router)
    try:
        with open(args.live, "rb") as handle:
            producer.publish(handle.read())
    except OSError as exc:
        raise SystemExit(f"repro-gateway: error: cannot read --live file: {exc}")

    def stream_factory() -> BGPStream:
        # Rebuilt after a bridge crash: the new source joins the same
        # broker + consumer group, so committed offsets are the resume
        # point and no message is lost or re-delivered.
        interface = LiveDataInterface(
            broker=broker,
            topics=[topic],
            max_empty_polls=args.idle_polls,
            poll_interval=args.poll_interval,
        )
        return BGPStream(
            data_interface=interface,
            interning=not args.no_intern,
            eager=True if args.eager_decode else None,
        )

    return StreamHub(
        stream_factory=stream_factory,
        max_restarts=max(args.max_restarts, 0),
    )


async def _amain(args: argparse.Namespace, out: IO[str]) -> int:
    hub = build_hub(args)
    heartbeat = args.heartbeat_interval if args.heartbeat_interval > 0 else None
    server = await GatewayServer(
        hub,
        host=args.host,
        port=args.port,
        heartbeat_interval=heartbeat,
        session_ttl=args.session_ttl,
    ).start()
    print(f"# repro-gateway serving on {args.host}:{server.port}", file=out, flush=True)

    def launch_decode() -> None:
        if args.await_subscribers > 0:
            while hub.subscriber_count < args.await_subscribers:
                if stop_waiting.wait(0.02):
                    return
        hub.start()

    stop_waiting = threading.Event()
    launcher = threading.Thread(target=launch_decode, daemon=True)
    launcher.start()
    try:
        if args.exit_when_drained:
            while not hub.finished:
                await asyncio.sleep(0.05)
            # Let connected subscribers drain their queues before closing.
            while any(
                s.ready_count for s in list(hub._subscribers)
            ):  # pragma: no cover - timing-dependent
                await asyncio.sleep(0.05)
        else:
            await server.serve_forever()
    except (KeyboardInterrupt, asyncio.CancelledError):
        pass
    finally:
        stop_waiting.set()
        hub.stop(timeout=2.0)
        await server.close()
    return 0


def run(args: argparse.Namespace, out: IO[str]) -> int:
    from repro import _metrics

    metrics_on = bool(getattr(args, "metrics", False)) or (
        getattr(args, "metrics_port", None) is not None
    )
    metrics_server = None
    if metrics_on:
        # Decode profiling feeds the registry's decode tier, so a metrics
        # gateway turns it on too (the counters are cheap per record).
        _metrics.enable()
        profiling.enable()
        if args.metrics_port is not None:
            metrics_server = _metrics.start_metrics_server(args.metrics_port)
    if args.decode_stats:
        profiling.enable()
    try:
        return asyncio.run(_amain(args, out))
    finally:
        if metrics_server is not None:
            metrics_server.close()
        if metrics_on:
            _metrics.disable()
            if not args.decode_stats:
                profiling.disable()
        if args.decode_stats:
            for line in profiling.snapshot().summary_lines():
                print(f"# {line}", file=out)
            profiling.disable()


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return run(args, sys.stdout)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
