import sys

from repro.gateway.cli import main

sys.exit(main())
