"""Entry point for ``python -m repro.gateway`` — runs the gateway CLI."""

import sys

from repro.gateway.cli import main

sys.exit(main())
