"""BGP UPDATE message wire encoding and decoding (RFC 4271 §4.3).

MRT BGP4MP_MESSAGE records embed a complete BGP message (including the
16-byte marker header); TABLE_DUMP_V2 RIB entries embed only the attribute
block.  This module provides the full-message codec used by the collector
simulation when writing Updates dumps and by the MRT parser when reading
them back.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import IntEnum
from typing import List

from repro.bgp.attributes import PathAttributes
from repro.bgp.prefix import Prefix

#: The BGP message marker: 16 bytes of 0xFF (RFC 4271 §4.1).
MARKER = b"\xff" * 16

#: Fixed BGP header size (marker + length + type).
HEADER_LEN = 19

#: Maximum BGP message size.
MAX_MESSAGE_LEN = 4096


class MessageType(IntEnum):
    OPEN = 1
    UPDATE = 2
    NOTIFICATION = 3
    KEEPALIVE = 4


class BGPDecodeError(ValueError):
    """Raised when a BGP message cannot be decoded (corrupt or truncated)."""


@dataclass(slots=True)
class BGPUpdate:
    """A decoded BGP UPDATE message.

    ``withdrawn`` and ``announced`` carry IPv4 prefixes from the classic
    NLRI fields; IPv6 prefixes travel inside ``attributes.mp_reach_nlri``
    and ``attributes.mp_unreach_nlri``.
    """

    withdrawn: List[Prefix] = field(default_factory=list)
    announced: List[Prefix] = field(default_factory=list)
    attributes: PathAttributes = field(default_factory=PathAttributes)

    @property
    def all_announced(self) -> List[Prefix]:
        """IPv4 and IPv6 prefixes announced by this message."""
        return list(self.announced) + list(self.attributes.mp_reach_nlri)

    @property
    def all_withdrawn(self) -> List[Prefix]:
        """IPv4 and IPv6 prefixes withdrawn by this message."""
        return list(self.withdrawn) + list(self.attributes.mp_unreach_nlri)

    def encode(self) -> bytes:
        """Encode as a complete BGP message (with marker header)."""
        withdrawn_block = b"".join(p.encode() for p in self.withdrawn)
        has_mp = self.attributes.mp_reach_nlri or self.attributes.mp_unreach_nlri
        attr_block = self.attributes.encode() if (self.announced or has_mp) else b""
        nlri_block = b"".join(p.encode() for p in self.announced)
        body = (
            struct.pack("!H", len(withdrawn_block))
            + withdrawn_block
            + struct.pack("!H", len(attr_block))
            + attr_block
            + nlri_block
        )
        total = HEADER_LEN + len(body)
        if total > MAX_MESSAGE_LEN:
            raise ValueError(f"BGP message too large ({total} bytes)")
        header = MARKER + struct.pack("!HB", total, int(MessageType.UPDATE))
        return header + body


def encode_update(update: BGPUpdate) -> bytes:
    """Functional alias for :meth:`BGPUpdate.encode`."""
    return update.encode()


def decode_update(data: bytes) -> BGPUpdate:
    """Decode a complete BGP UPDATE message (with marker header).

    Raises :class:`BGPDecodeError` on any structural problem; the MRT layer
    converts that into a corrupted-record signal, exactly as the extended
    libBGPdump in the paper signals corrupted reads to libBGPStream.
    """
    if len(data) < HEADER_LEN:
        raise BGPDecodeError("message shorter than BGP header")
    if data[:16] != MARKER:
        raise BGPDecodeError("bad BGP marker")
    (length, msg_type) = struct.unpack_from("!HB", data, 16)
    if length != len(data):
        raise BGPDecodeError(f"length field {length} does not match data size {len(data)}")
    if msg_type != MessageType.UPDATE:
        raise BGPDecodeError(f"not an UPDATE message (type {msg_type})")
    body = data[HEADER_LEN:]
    try:
        return _decode_update_body(body)
    except (ValueError, struct.error) as exc:
        raise BGPDecodeError(str(exc)) from exc


def _decode_update_body(body: bytes) -> BGPUpdate:
    if len(body) < 4:
        raise BGPDecodeError("UPDATE body too short")
    (withdrawn_len,) = struct.unpack_from("!H", body, 0)
    offset = 2
    withdrawn_end = offset + withdrawn_len
    if withdrawn_end + 2 > len(body):
        raise BGPDecodeError("withdrawn routes overrun message")
    withdrawn: List[Prefix] = []
    while offset < withdrawn_end:
        prefix, offset = Prefix.decode(body, offset, version=4)
        withdrawn.append(prefix)

    (attr_len,) = struct.unpack_from("!H", body, withdrawn_end)
    offset = withdrawn_end + 2
    attr_end = offset + attr_len
    if attr_end > len(body):
        raise BGPDecodeError("path attributes overrun message")
    attributes = (
        PathAttributes.decode(body[offset:attr_end]) if attr_len else PathAttributes()
    )

    announced: List[Prefix] = []
    offset = attr_end
    while offset < len(body):
        prefix, offset = Prefix.decode(body, offset, version=4)
        announced.append(prefix)
    return BGPUpdate(withdrawn=withdrawn, announced=announced, attributes=attributes)
