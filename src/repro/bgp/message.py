"""BGP UPDATE message wire encoding and decoding (RFC 4271 §4.3).

MRT BGP4MP_MESSAGE records embed a complete BGP message (including the
16-byte marker header); TABLE_DUMP_V2 RIB entries embed only the attribute
block.  This module provides the full-message codec used by the collector
simulation when writing Updates dumps and by the MRT parser when reading
them back.
"""

from __future__ import annotations

import ipaddress
import struct
from dataclasses import dataclass, field
from enum import IntEnum
from typing import List

from typing import Optional

from repro.bgp.attributes import PathAttributes, decode_attributes
from repro.bgp.prefix import Prefix

#: The BGP message marker: 16 bytes of 0xFF (RFC 4271 §4.1).
MARKER = b"\xff" * 16

#: Fixed BGP header size (marker + length + type).
HEADER_LEN = 19

#: Maximum BGP message size.
MAX_MESSAGE_LEN = 4096


class MessageType(IntEnum):
    """The BGP message type codes of RFC 4271 §4.1."""

    OPEN = 1
    UPDATE = 2
    NOTIFICATION = 3
    KEEPALIVE = 4


class BGPDecodeError(ValueError):
    """Raised when a BGP message cannot be decoded (corrupt or truncated)."""


@dataclass(slots=True)
class BGPUpdate:
    """A decoded BGP UPDATE message.

    ``withdrawn`` and ``announced`` carry IPv4 prefixes from the classic
    NLRI fields; IPv6 prefixes travel inside ``attributes.mp_reach_nlri``
    and ``attributes.mp_unreach_nlri``.
    """

    withdrawn: List[Prefix] = field(default_factory=list)
    announced: List[Prefix] = field(default_factory=list)
    attributes: PathAttributes = field(default_factory=PathAttributes)

    @property
    def all_announced(self) -> List[Prefix]:
        """IPv4 and IPv6 prefixes announced by this message."""
        return list(self.announced) + list(self.attributes.mp_reach_nlri)

    @property
    def all_withdrawn(self) -> List[Prefix]:
        """IPv4 and IPv6 prefixes withdrawn by this message."""
        return list(self.withdrawn) + list(self.attributes.mp_unreach_nlri)

    def encode(self) -> bytes:
        """Encode as a complete BGP message (with marker header)."""
        withdrawn_block = b"".join(p.encode() for p in self.withdrawn)
        has_mp = self.attributes.mp_reach_nlri or self.attributes.mp_unreach_nlri
        attr_block = self.attributes.encode() if (self.announced or has_mp) else b""
        nlri_block = b"".join(p.encode() for p in self.announced)
        body = (
            struct.pack("!H", len(withdrawn_block))
            + withdrawn_block
            + struct.pack("!H", len(attr_block))
            + attr_block
            + nlri_block
        )
        total = HEADER_LEN + len(body)
        if total > MAX_MESSAGE_LEN:
            raise ValueError(f"BGP message too large ({total} bytes)")
        header = MARKER + struct.pack("!HB", total, int(MessageType.UPDATE))
        return header + body


@dataclass(slots=True)
class BGPOpen:
    """A BGP OPEN message (RFC 4271 §4.2).

    Carried verbatim inside BMP Peer Up notifications (the sent and received
    OPENs of the monitored session).  ``asn`` is the 2-byte My-AS field;
    4-byte AS speakers put AS_TRANS (23456) here and negotiate the real ASN
    through a capability, which travels opaquely in ``opt_params``.
    """

    version: int = 4
    asn: int = 0
    hold_time: int = 180
    bgp_id: str = "0.0.0.0"
    opt_params: bytes = b""

    def encode(self) -> bytes:
        """Encode as a complete BGP message (with marker header)."""
        body = (
            struct.pack("!BHH", self.version, self.asn, self.hold_time)
            + ipaddress.IPv4Address(self.bgp_id).packed
            + bytes([len(self.opt_params)])
            + self.opt_params
        )
        total = HEADER_LEN + len(body)
        header = MARKER + struct.pack("!HB", total, int(MessageType.OPEN))
        return header + body

    @classmethod
    def decode(cls, data: bytes) -> "BGPOpen":
        """Decode a complete OPEN message; raises :class:`BGPDecodeError`."""
        body = _decode_header(data, MessageType.OPEN)
        if len(body) < 10:
            raise BGPDecodeError("OPEN body too short")
        version, asn, hold_time = struct.unpack_from("!BHH", body, 0)
        bgp_id = str(ipaddress.IPv4Address(bytes(body[5:9])))
        opt_len = body[9]
        if 10 + opt_len != len(body):
            raise BGPDecodeError("OPEN optional-parameters length mismatch")
        return cls(version, asn, hold_time, bgp_id, bytes(body[10 : 10 + opt_len]))


def _decode_header(data: bytes, expected_type: "MessageType") -> bytes:
    """Validate the marker header of one complete message; return the body.

    Raises :class:`BGPDecodeError` on a short buffer, bad marker, length
    mismatch, or unexpected message type.
    """
    if len(data) < HEADER_LEN:
        raise BGPDecodeError("message shorter than BGP header")
    if data[:16] != MARKER:
        raise BGPDecodeError("bad BGP marker")
    (length, msg_type) = struct.unpack_from("!HB", data, 16)
    if length != len(data):
        raise BGPDecodeError(f"length field {length} does not match data size {len(data)}")
    if msg_type != expected_type:
        raise BGPDecodeError(f"not an {expected_type.name} message (type {msg_type})")
    return data[HEADER_LEN:]


def message_length(data: bytes, offset: int = 0) -> int:
    """The total length of the BGP message starting at ``offset``.

    Used to split back-to-back BGP messages (a BMP Peer Up carries two OPENs
    head to tail).  Raises :class:`BGPDecodeError` on a bad header.
    """
    if offset + HEADER_LEN > len(data):
        raise BGPDecodeError("message shorter than BGP header")
    if data[offset : offset + 16] != MARKER:
        raise BGPDecodeError("bad BGP marker")
    (length,) = struct.unpack_from("!H", data, offset + 16)
    if length < HEADER_LEN:
        raise BGPDecodeError(f"implausible BGP message length {length}")
    return length


def encode_update(update: BGPUpdate) -> bytes:
    """Functional alias for :meth:`BGPUpdate.encode`."""
    return update.encode()


def decode_update(data: bytes, lazy: Optional[bool] = None, pool=None) -> BGPUpdate:
    """Decode a complete BGP UPDATE message (with marker header).

    Raises :class:`BGPDecodeError` on any structural problem; the MRT layer
    converts that into a corrupted-record signal, exactly as the extended
    libBGPdump in the paper signals corrupted reads to libBGPStream.

    ``data`` may be a ``memoryview`` (the zero-copy readers pass views of
    the dump/frame buffer straight through).  ``lazy=None`` follows the
    global lazy-decode switch; lazy mode records zero-copy slices of the
    attribute block and defers value construction to first read, while
    structural corruption still raises here, identically to eager mode.
    """
    body = _decode_header(data, MessageType.UPDATE)
    try:
        return _decode_update_body(body, lazy=lazy, pool=pool)
    except (ValueError, struct.error) as exc:
        raise BGPDecodeError(str(exc)) from exc


def _decode_update_body(body: bytes, lazy: Optional[bool] = None, pool=None) -> BGPUpdate:
    if len(body) < 4:
        raise BGPDecodeError("UPDATE body too short")
    (withdrawn_len,) = struct.unpack_from("!H", body, 0)
    offset = 2
    withdrawn_end = offset + withdrawn_len
    if withdrawn_end + 2 > len(body):
        raise BGPDecodeError("withdrawn routes overrun message")
    withdrawn: List[Prefix] = []
    while offset < withdrawn_end:
        prefix, offset = Prefix.decode(body, offset, version=4)
        withdrawn.append(prefix)

    (attr_len,) = struct.unpack_from("!H", body, withdrawn_end)
    offset = withdrawn_end + 2
    attr_end = offset + attr_len
    if attr_end > len(body):
        raise BGPDecodeError("path attributes overrun message")
    attributes = (
        decode_attributes(body[offset:attr_end], lazy=lazy, pool=pool)
        if attr_len
        else PathAttributes()
    )

    announced: List[Prefix] = []
    offset = attr_end
    while offset < len(body):
        prefix, offset = Prefix.decode(body, offset, version=4)
        announced.append(prefix)
    return BGPUpdate(withdrawn=withdrawn, announced=announced, attributes=attributes)
