"""IP prefixes (IPv4 and IPv6) with the wire encoding used by BGP NLRI.

A BGP NLRI entry is a one-byte prefix length followed by the minimum number
of bytes needed to hold the masked network address (RFC 4271 §4.3).  The
same truncated encoding is used inside MRT TABLE_DUMP_V2 RIB entries, so the
codec lives here and is shared by the message and MRT layers.
"""

from __future__ import annotations

import ipaddress
from typing import Tuple, Union

_IPNetwork = Union[ipaddress.IPv4Network, ipaddress.IPv6Network]
_IPAddress = Union[ipaddress.IPv4Address, ipaddress.IPv6Address]

# Decode-level flyweight cache: exact wire bytes -> Prefix.  Update churn
# concentrates on a small fraction of the table, so NLRI entries repeat
# heavily and the ipaddress construction (the hottest part of decode) can be
# skipped for every repeat.  Prefix is frozen, so sharing one object across
# streams and threads is safe.  Bounded by wholesale clearing: the real
# working set sits far below the cap.  See repro.bgp.wirecache.
_DECODE_CACHE_MAX = 1 << 16
_decode_cache: dict = {}


class Prefix:
    """An IP prefix such as ``192.0.2.0/24`` or ``2001:db8::/32``.

    The single hottest value type of the pipeline: every elem, trie node,
    routing-table key and filter carries one.  It is a slotted, frozen
    flyweight — no per-instance dict, identity-first equality, and the hash
    and string form (``ipaddress`` recomputes both on every call) are
    computed once and cached (see :mod:`repro.core.intern`).
    """

    __slots__ = ("network", "_hash", "_str")

    def __init__(self, network: _IPNetwork) -> None:
        object.__setattr__(self, "network", network)
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_str", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Prefix is immutable")

    def __delattr__(self, name: str) -> None:
        raise AttributeError("Prefix is immutable")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Prefix):
            return NotImplemented
        return self.network == other.network

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = hash(self.network)
            object.__setattr__(self, "_hash", value)
        return value

    def __repr__(self) -> str:
        return f"Prefix(network={self.network!r})"

    def __getstate__(self) -> Tuple[_IPNetwork]:
        return (self.network,)

    def __setstate__(self, state: Tuple[_IPNetwork]) -> None:
        object.__setattr__(self, "network", state[0])
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_str", None)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_string(cls, text: str) -> "Prefix":
        """Parse ``a.b.c.d/len`` or an IPv6 equivalent.

        Host bits set beyond the mask are tolerated (``strict=False``) --
        real BGP data occasionally carries such prefixes and collectors
        propagate them unchanged.
        """
        return cls(ipaddress.ip_network(text, strict=False))

    @classmethod
    def from_address(cls, address: str, length: int) -> "Prefix":
        return cls(ipaddress.ip_network(f"{address}/{length}", strict=False))

    # -- basic properties --------------------------------------------------

    @property
    def version(self) -> int:
        """IP version, 4 or 6."""
        return self.network.version

    @property
    def length(self) -> int:
        """The prefix length in bits."""
        return self.network.prefixlen

    @property
    def address(self) -> _IPAddress:
        """The (masked) network address."""
        return self.network.network_address

    @property
    def max_length(self) -> int:
        return 32 if self.version == 4 else 128

    def __str__(self) -> str:
        text = self._str
        if text is None:
            text = str(self.network)
            object.__setattr__(self, "_str", text)
        return text

    def __lt__(self, other: "Prefix") -> bool:
        return (self.version, int(self.address), self.length) < (
            other.version,
            int(other.address),
            other.length,
        )

    # -- relationships -----------------------------------------------------

    def contains(self, other: "Prefix") -> bool:
        """True if ``other`` is equal to or more specific than this prefix."""
        if self.version != other.version:
            return False
        return other.network.subnet_of(self.network)

    def overlaps(self, other: "Prefix") -> bool:
        """True if the two prefixes share any address."""
        if self.version != other.version:
            return False
        return self.network.overlaps(other.network)

    def is_host(self) -> bool:
        """True for /32 (IPv4) or /128 (IPv6) prefixes."""
        return self.length == self.max_length

    # -- wire codec --------------------------------------------------------

    def encode(self) -> bytes:
        """Encode as BGP NLRI: length byte + truncated network address."""
        nbytes = (self.length + 7) // 8
        addr_bytes = self.address.packed[:nbytes]
        return bytes([self.length]) + addr_bytes

    @classmethod
    def decode(cls, data: bytes, offset: int, version: int = 4) -> Tuple["Prefix", int]:
        """Decode one NLRI entry starting at ``offset``.

        Returns the prefix and the offset just past it.  Raises ``ValueError``
        on truncated input or an impossible prefix length.
        """
        if offset >= len(data):
            raise ValueError("truncated NLRI: missing length byte")
        length = data[offset]
        max_len = 32 if version == 4 else 128
        if length > max_len:
            raise ValueError(f"invalid prefix length {length} for IPv{version}")
        nbytes = (length + 7) // 8
        end = offset + 1 + nbytes
        if end > len(data):
            raise ValueError("truncated NLRI: missing address bytes")
        # bytes() also accepts memoryview slices from the zero-copy readers.
        raw = bytes(data[offset + 1 : end])
        key = (version, length, raw)
        prefix = _decode_cache.get(key)
        if prefix is None:
            addr_len = 4 if version == 4 else 16
            padded = raw + b"\x00" * (addr_len - nbytes)
            # strict=False masks host bits set beyond the prefix length --
            # real BGP data occasionally carries such prefixes.
            network = ipaddress.ip_network((padded, length), strict=False)
            prefix = cls(network)
            if len(_decode_cache) >= _DECODE_CACHE_MAX:
                _decode_cache.clear()
            _decode_cache[key] = prefix
        return prefix, end
