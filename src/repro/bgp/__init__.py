"""BGP protocol substrate.

Implements the pieces of RFC 4271 (and the communities attribute of RFC 1997)
that BGP measurement data carries: IP prefixes, AS paths with SEQUENCE and
SET segments, communities, path attributes, UPDATE message wire encoding and
decoding, and the session finite-state-machine states that RIPE RIS state
messages report.
"""

from repro.bgp.prefix import Prefix
from repro.bgp.trie import PrefixTrie
from repro.bgp.aspath import ASPath, ASPathSegment, SegmentType
from repro.bgp.community import Community, CommunitySet
from repro.bgp.attributes import (
    Origin,
    PathAttributes,
)
from repro.bgp.message import BGPUpdate, decode_update, encode_update
from repro.bgp.fsm import SessionState

__all__ = [
    "Prefix",
    "PrefixTrie",
    "ASPath",
    "ASPathSegment",
    "SegmentType",
    "Community",
    "CommunitySet",
    "Origin",
    "PathAttributes",
    "BGPUpdate",
    "decode_update",
    "encode_update",
    "SessionState",
]
