"""Bounded flyweight caches for hot wire-decoded values.

The ``ipaddress`` constructors dominate the per-record decode floor: every
BGP4MP record parses two peer addresses and every NLRI entry builds a
network object, yet real BGP feeds draw both from tiny working sets (a
collector has a few hundred peers; update churn concentrates on a small
fraction of the table).  These caches memoise the wire-bytes → value step so
repeats skip ``ipaddress`` entirely.  They complement the intern pool
(:mod:`repro.core.intern`), which deduplicates *after* construction — the
caches avoid constructing the throwaway in the first place.

Both caches are process-wide and bounded: on reaching the cap they are
cleared wholesale (the working sets they model are far below the cap, so a
full clear is a once-in-a-blue-moon event and cheaper than LRU bookkeeping).
Values are immutable (``str`` / frozen :class:`~repro.bgp.prefix.Prefix`),
so sharing across streams, pools and threads is safe; under races the worst
case is a duplicated construction.
"""

from __future__ import annotations

import ipaddress
from typing import Dict

_CACHE_MAX = 1 << 16

_addr_cache: Dict[bytes, str] = {}


def address_str(packed: bytes) -> str:
    """The canonical string for a packed 4-byte IPv4 / 16-byte IPv6 address."""
    text = _addr_cache.get(packed)
    if text is None:
        text = str(ipaddress.ip_address(packed))
        if len(_addr_cache) >= _CACHE_MAX:
            _addr_cache.clear()
        _addr_cache[packed] = text
    return text


def clear_wire_caches() -> None:
    """Drop all wire-value caches (the prefix cache lives in repro.bgp.prefix)."""
    from repro.bgp import prefix as _prefix

    _addr_cache.clear()
    _prefix._decode_cache.clear()
