"""Patricia (radix) trie over IP prefixes.

libBGPStream delegates every prefix-matching decision — the ``prefix``
filter family of the filtering interface (§3.1), the pfxmonitor watchlist
(§6.1) and the routing-tables lookups (§6.2) — to a patricia trie, so that
matching an address against *n* watched prefixes costs O(prefix length)
instead of O(n).  This module is the equivalent subsystem: a binary
path-compressed trie keyed by ``(network address, prefix length)`` with an
optional value attached to every stored prefix.

:class:`PrefixTrie` is the public facade; it keeps one trie per IP version
behind a single mapping-like interface, so mixed IPv4/IPv6 prefix sets (the
normal case for BGP data) need no special handling by callers.

Supported queries, mirroring the BGPStream filter language:

* exact lookup (``get`` / ``__contains__``),
* longest-prefix match (:meth:`PrefixTrie.longest_match`,
  :meth:`PrefixTrie.lookup` for bare addresses),
* covering prefixes — the stored prefixes that contain a query, i.e. the
  walk towards the root (:meth:`PrefixTrie.covering`),
* covered prefixes — the stored prefixes contained in a query, i.e. a
  subtree walk (:meth:`PrefixTrie.covered`),
* overlap test — either direction (:meth:`PrefixTrie.overlaps`).

Internal nodes created by path compression ("glue" nodes) carry no entry
and always have two children; removal splices them out again, so the trie
never degenerates as prefixes churn.
"""

from __future__ import annotations

import ipaddress
from typing import Generic, Iterable, Iterator, List, Optional, Tuple, TypeVar, Union

from repro.bgp.prefix import Prefix

V = TypeVar("V")

#: Accepted address forms for :meth:`PrefixTrie.lookup`.
AddressLike = Union[str, int, ipaddress.IPv4Address, ipaddress.IPv6Address]


class _Node:
    """One trie node: a (bits, length) key, an optional entry, two children.

    ``prefix is None`` marks a glue node (no entry).  ``bits`` is the
    network address as an integer over the full address width with host
    bits zero.
    """

    __slots__ = ("bits", "length", "prefix", "value", "left", "right")

    def __init__(
        self,
        bits: int,
        length: int,
        prefix: Optional[Prefix] = None,
        value: Optional[object] = None,
    ) -> None:
        self.bits = bits
        self.length = length
        self.prefix = prefix
        self.value = value
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None


class _VersionTrie(Generic[V]):
    """A patricia trie for one IP version (fixed address width)."""

    def __init__(self, max_length: int) -> None:
        self.max_length = max_length
        # The root is a permanent glue node for the zero-length prefix; a
        # stored default route (/0) turns it into an entry node.
        self._root = _Node(0, 0)
        self._size = 0

    # -- bit helpers -------------------------------------------------------

    def _bit(self, bits: int, position: int) -> int:
        """The bit at ``position`` (0 = most significant)."""
        return (bits >> (self.max_length - 1 - position)) & 1

    def _mask(self, bits: int, length: int) -> int:
        """``bits`` truncated to its first ``length`` bits (host bits zeroed)."""
        if length == 0:
            return 0
        shift = self.max_length - length
        return (bits >> shift) << shift

    def _common_length(self, a: int, b: int, limit: int) -> int:
        """Length of the common prefix of ``a`` and ``b``, capped at ``limit``."""
        if limit == 0:
            return 0
        diff = (a ^ b) >> (self.max_length - limit)
        if diff == 0:
            return limit
        return limit - diff.bit_length()

    def _covers(self, node: _Node, bits: int, length: int) -> bool:
        """True if ``node``'s key is a (non-strict) prefix of ``(bits, length)``."""
        return node.length <= length and self._mask(bits, node.length) == node.bits

    # -- mutation ----------------------------------------------------------

    def insert(self, prefix: Prefix, value: V) -> bool:
        """Store ``prefix`` -> ``value``; True if the prefix was new."""
        bits = int(prefix.network.network_address)
        length = prefix.length
        node = self._root
        while True:
            if length == node.length:
                # Descent guarantees node.bits == bits here.
                is_new = node.prefix is None
                node.prefix = prefix
                node.value = value
                if is_new:
                    self._size += 1
                return is_new
            branch = self._bit(bits, node.length)
            child = node.right if branch else node.left
            if child is None:
                self._set_child(node, branch, _Node(bits, length, prefix, value))
                self._size += 1
                return True
            common = self._common_length(bits, child.bits, min(length, child.length))
            if common == child.length:
                node = child
                continue
            if common == length:
                # The new prefix sits between node and child.
                new_node = _Node(bits, length, prefix, value)
                self._set_child(new_node, self._bit(child.bits, length), child)
                self._set_child(node, branch, new_node)
                self._size += 1
                return True
            # The new prefix and child diverge: split with a glue node.
            glue = _Node(self._mask(bits, common), common)
            self._set_child(glue, self._bit(child.bits, common), child)
            self._set_child(glue, self._bit(bits, common), _Node(bits, length, prefix, value))
            self._set_child(node, branch, glue)
            self._size += 1
            return True

    def remove(self, prefix: Prefix) -> V:
        """Remove ``prefix`` and return its value; KeyError if absent."""
        bits = int(prefix.network.network_address)
        length = prefix.length
        path: List[Tuple[_Node, int]] = []
        node = self._root
        while node.length < length:
            branch = self._bit(bits, node.length)
            child = node.right if branch else node.left
            if child is None or not self._covers(child, bits, length):
                raise KeyError(prefix)
            path.append((node, branch))
            node = child
        if node.length != length or node.bits != bits or node.prefix is None:
            raise KeyError(prefix)
        value = node.value
        node.prefix = None
        node.value = None
        self._size -= 1
        self._prune(node, path)
        return value  # type: ignore[return-value]

    def _set_child(self, node: _Node, branch: int, child: Optional[_Node]) -> None:
        if branch:
            node.right = child
        else:
            node.left = child

    def _prune(self, node: _Node, path: List[Tuple[_Node, int]]) -> None:
        """Splice out empty glue nodes along ``path`` after a removal."""
        while node is not self._root and node.prefix is None:
            children = [c for c in (node.left, node.right) if c is not None]
            if len(children) >= 2:
                return  # a real glue node: keep it
            parent, branch = path.pop()
            self._set_child(parent, branch, children[0] if children else None)
            node = parent

    # -- queries -----------------------------------------------------------

    def find(self, prefix: Prefix) -> Optional[_Node]:
        """The entry node exactly matching ``prefix``, if stored."""
        bits = int(prefix.network.network_address)
        length = prefix.length
        node = self._root
        while node.length < length:
            branch = self._bit(bits, node.length)
            child = node.right if branch else node.left
            if child is None or not self._covers(child, bits, length):
                return None
            node = child
        if node.length == length and node.bits == bits and node.prefix is not None:
            return node
        return None

    def covering_nodes(self, bits: int, length: int) -> Iterator[_Node]:
        """Entry nodes whose prefix contains ``(bits, length)``, root first."""
        node: Optional[_Node] = self._root
        while node is not None and self._covers(node, bits, length):
            if node.prefix is not None:
                yield node
            if node.length == length:
                return
            branch = self._bit(bits, node.length)
            node = node.right if branch else node.left

    def _subtree_root(self, bits: int, length: int) -> Optional[_Node]:
        """The highest node whose key extends ``(bits, length)``, if any."""
        node = self._root
        while node.length < length:
            branch = self._bit(bits, node.length)
            child = node.right if branch else node.left
            if child is None:
                return None
            if child.length >= length:
                if self._mask(child.bits, length) == bits:
                    return child
                return None
            if not self._covers(child, bits, length):
                return None
            node = child
        return node if node.bits == bits else None

    def covered_nodes(self, bits: int, length: int) -> Iterator[_Node]:
        """Entry nodes whose prefix is contained in ``(bits, length)``."""
        top = self._subtree_root(bits, length)
        if top is None:
            return
        stack = [top]
        while stack:
            node = stack.pop()
            if node.prefix is not None:
                yield node
            # Right pushed first so the left (lower-address) side pops first.
            if node.right is not None:
                stack.append(node.right)
            if node.left is not None:
                stack.append(node.left)

    def has_covered(self, bits: int, length: int) -> bool:
        """True if any stored prefix is contained in ``(bits, length)``.

        After pruning every non-root node either carries an entry or has
        two children, so any subtree below the root contains at least one
        entry and the test stays O(W).  Only the permanent root can be an
        empty subtree (an empty or entry-less trie).
        """
        top = self._subtree_root(bits, length)
        if top is None:
            return False
        return top.prefix is not None or top.left is not None or top.right is not None

    def nodes(self) -> Iterator[_Node]:
        """All entry nodes in (address, length) order."""
        yield from self.covered_nodes(0, 0)

    def __len__(self) -> int:
        return self._size


class PrefixTrie(Generic[V]):
    """A mapping from :class:`Prefix` to values with prefix-tree queries.

    One patricia trie per IP version behind a single interface; iteration
    yields IPv4 prefixes (in address order) before IPv6 ones.
    """

    def __init__(self, items: Optional[Iterable[Tuple[Prefix, V]]] = None) -> None:
        self._tries = {4: _VersionTrie[V](32), 6: _VersionTrie[V](128)}
        if items is not None:
            for prefix, value in items:
                self.insert(prefix, value)

    # -- mutation ----------------------------------------------------------

    def insert(self, prefix: Prefix, value: V = None) -> bool:  # type: ignore[assignment]
        """Store ``prefix`` -> ``value``; True if the prefix was new."""
        return self._tries[prefix.version].insert(prefix, value)

    def remove(self, prefix: Prefix) -> V:
        """Remove ``prefix``, returning its value; KeyError if absent."""
        return self._tries[prefix.version].remove(prefix)

    def discard(self, prefix: Prefix) -> bool:
        """Remove ``prefix`` if present; True if it was stored."""
        try:
            self._tries[prefix.version].remove(prefix)
        except KeyError:
            return False
        return True

    def clear(self) -> None:
        self._tries = {4: _VersionTrie[V](32), 6: _VersionTrie[V](128)}

    # -- mapping surface ---------------------------------------------------

    def get(self, prefix: Prefix, default: Optional[V] = None) -> Optional[V]:
        node = self._tries[prefix.version].find(prefix)
        return default if node is None else node.value  # type: ignore[return-value]

    def __getitem__(self, prefix: Prefix) -> V:
        node = self._tries[prefix.version].find(prefix)
        if node is None:
            raise KeyError(prefix)
        return node.value  # type: ignore[return-value]

    def __setitem__(self, prefix: Prefix, value: V) -> None:
        self.insert(prefix, value)

    def __delitem__(self, prefix: Prefix) -> None:
        self.remove(prefix)

    def __contains__(self, prefix: object) -> bool:
        if not isinstance(prefix, Prefix):
            return False
        return self._tries[prefix.version].find(prefix) is not None

    def __len__(self) -> int:
        return sum(len(trie) for trie in self._tries.values())

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self) -> Iterator[Prefix]:
        for prefix, _value in self.items():
            yield prefix

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        for version in (4, 6):
            for node in self._tries[version].nodes():
                yield node.prefix, node.value  # type: ignore[misc]

    def __repr__(self) -> str:
        return f"PrefixTrie({len(self)} prefixes)"

    # -- prefix-tree queries ----------------------------------------------

    def longest_match(self, query: Union[Prefix, AddressLike]) -> Optional[Tuple[Prefix, V]]:
        """The most specific stored prefix containing ``query``, with value."""
        prefix = self._as_prefix(query)
        trie = self._tries[prefix.version]
        best: Optional[_Node] = None
        for node in trie.covering_nodes(int(prefix.network.network_address), prefix.length):
            best = node
        if best is None:
            return None
        return best.prefix, best.value  # type: ignore[return-value]

    def lookup(self, address: AddressLike) -> Optional[Tuple[Prefix, V]]:
        """Longest-prefix match for a bare host address (routing lookup)."""
        return self.longest_match(address)

    def covering(
        self, prefix: Prefix, include_exact: bool = True
    ) -> Iterator[Tuple[Prefix, V]]:
        """Stored prefixes containing ``prefix``, most specific first."""
        trie = self._tries[prefix.version]
        nodes = list(
            trie.covering_nodes(int(prefix.network.network_address), prefix.length)
        )
        for node in reversed(nodes):
            if not include_exact and node.length == prefix.length:
                continue
            yield node.prefix, node.value  # type: ignore[misc]

    def covered(
        self, prefix: Prefix, include_exact: bool = True
    ) -> Iterator[Tuple[Prefix, V]]:
        """Stored prefixes contained in ``prefix``, in address order."""
        trie = self._tries[prefix.version]
        for node in trie.covered_nodes(int(prefix.network.network_address), prefix.length):
            if not include_exact and node.length == prefix.length:
                continue
            yield node.prefix, node.value  # type: ignore[misc]

    def overlaps(self, prefix: Prefix) -> bool:
        """True if any stored prefix shares addresses with ``prefix``."""
        trie = self._tries[prefix.version]
        bits = int(prefix.network.network_address)
        for _node in trie.covering_nodes(bits, prefix.length):
            return True
        return trie.has_covered(bits, prefix.length)

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _as_prefix(query: Union[Prefix, AddressLike]) -> Prefix:
        if isinstance(query, Prefix):
            return query
        address = ipaddress.ip_address(query)
        return Prefix.from_address(str(address), 32 if address.version == 4 else 128)
