"""BGP path attributes (RFC 4271 §4.3, RFC 1997, RFC 4760).

The attributes carried in UPDATE messages and in TABLE_DUMP_V2 RIB entries.
We implement the attributes BGPStream exposes in its elem (Table 1 of the
paper) plus the ones needed to round-trip realistic data: ORIGIN, AS_PATH,
NEXT_HOP, MULTI_EXIT_DISC, LOCAL_PREF, ATOMIC_AGGREGATE, AGGREGATOR,
COMMUNITIES, and MP_REACH/MP_UNREACH_NLRI for IPv6.
"""

from __future__ import annotations

import ipaddress
import struct
from dataclasses import dataclass, field
from enum import IntEnum
from typing import List, Optional, Tuple

from repro import _profiling as profiling
from repro.bgp.aspath import ASPath, SegmentType
from repro.bgp.community import CommunitySet
from repro.bgp.prefix import Prefix


class Origin(IntEnum):
    """ORIGIN attribute values."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2

    def __str__(self) -> str:
        return self.name


class AttrType(IntEnum):
    """Path attribute type codes."""

    ORIGIN = 1
    AS_PATH = 2
    NEXT_HOP = 3
    MULTI_EXIT_DISC = 4
    LOCAL_PREF = 5
    ATOMIC_AGGREGATE = 6
    AGGREGATOR = 7
    COMMUNITIES = 8
    MP_REACH_NLRI = 14
    MP_UNREACH_NLRI = 15


#: Attribute flag bits.
FLAG_OPTIONAL = 0x80
FLAG_TRANSITIVE = 0x40
FLAG_PARTIAL = 0x20
FLAG_EXTENDED_LENGTH = 0x10

#: AFI/SAFI values used by MP_REACH/MP_UNREACH.
AFI_IPV4 = 1
AFI_IPV6 = 2
SAFI_UNICAST = 1

#: The dataclass fields of :class:`PathAttributes`, in declaration order
#: (used by pickling and the lazy layer; excludes the canonicalisation
#: marker, which is transient state).
_ATTR_FIELDS = (
    "origin",
    "as_path",
    "next_hop",
    "med",
    "local_pref",
    "atomic_aggregate",
    "aggregator",
    "communities",
    "mp_next_hop",
    "mp_reach_nlri",
    "mp_unreach_nlri",
)


@dataclass(slots=True)
class PathAttributes:
    """The decoded attribute set of a route.

    ``mp_reach_nlri`` / ``mp_unreach_nlri`` hold IPv6 prefixes announced or
    withdrawn through the multi-protocol attributes; ``mp_next_hop`` is the
    IPv6 next hop carried inside MP_REACH.

    Slotted: one attribute set is shared by every elem a record fans out
    into, and the intern layer writes canonical path/community/next-hop
    objects back into it so repeated extraction takes identity fast paths.
    """

    origin: Origin = Origin.IGP
    as_path: ASPath = field(default_factory=ASPath)
    next_hop: Optional[str] = None
    med: Optional[int] = None
    local_pref: Optional[int] = None
    atomic_aggregate: bool = False
    aggregator: Optional[Tuple[int, str]] = None
    communities: CommunitySet = field(default_factory=CommunitySet)
    mp_next_hop: Optional[str] = None
    mp_reach_nlri: List[Prefix] = field(default_factory=list)
    mp_unreach_nlri: List[Prefix] = field(default_factory=list)
    #: Elem-time canonicalisation marker: the intern pool this attribute set
    #: was last written back through (see ``repro.core.record``), so repeated
    #: ``elems()`` calls on a shared set skip the write-back pass.
    _canonical_for: Optional[object] = field(default=None, init=False, repr=False, compare=False)

    # -- value semantics ---------------------------------------------------

    # Defined explicitly (the dataclass machinery skips fields it finds in
    # the class body) because the generated __eq__ requires both operands to
    # be of the *same class*, which would make a lazy attribute set compare
    # unequal to its eager equivalent.  Reading through ``self.<field>``
    # lets the lazy subclass materialise deferred attributes on demand.
    def __eq__(self, other: object):
        if other is self:
            return True
        if not isinstance(other, PathAttributes):
            return NotImplemented
        return (
            self.origin == other.origin
            and self.next_hop == other.next_hop
            and self.med == other.med
            and self.local_pref == other.local_pref
            and self.atomic_aggregate == other.atomic_aggregate
            and self.aggregator == other.aggregator
            and self.as_path == other.as_path
            and self.communities == other.communities
            and self.mp_next_hop == other.mp_next_hop
            and self.mp_reach_nlri == other.mp_reach_nlri
            and self.mp_unreach_nlri == other.mp_unreach_nlri
        )

    # -- pickling (the canonicalisation marker does not travel) ------------

    def __getstate__(self) -> Tuple:
        return tuple(getattr(self, name) for name in _ATTR_FIELDS)

    def __setstate__(self, state: Tuple) -> None:
        for name, value in zip(_ATTR_FIELDS, state):
            setattr(self, name, value)
        self._canonical_for = None

    # -- helpers -----------------------------------------------------------

    def effective_next_hop(self, version: int = 4) -> Optional[str]:
        """The next hop relevant for ``version`` (MP_REACH wins for IPv6)."""
        if version == 6:
            return self.mp_next_hop or self.next_hop
        return self.next_hop

    # -- wire codec --------------------------------------------------------

    def encode(self) -> bytes:
        """Encode to the path-attributes byte string of an UPDATE message."""
        out = bytearray()
        out += _encode_attr(AttrType.ORIGIN, bytes([int(self.origin)]))
        out += _encode_attr(AttrType.AS_PATH, self.as_path.encode())
        if self.next_hop is not None:
            out += _encode_attr(
                AttrType.NEXT_HOP, ipaddress.IPv4Address(self.next_hop).packed
            )
        if self.med is not None:
            out += _encode_attr(
                AttrType.MULTI_EXIT_DISC, struct.pack("!I", self.med), optional=True
            )
        if self.local_pref is not None:
            out += _encode_attr(AttrType.LOCAL_PREF, struct.pack("!I", self.local_pref))
        if self.atomic_aggregate:
            out += _encode_attr(AttrType.ATOMIC_AGGREGATE, b"")
        if self.aggregator is not None:
            asn, address = self.aggregator
            out += _encode_attr(
                AttrType.AGGREGATOR,
                struct.pack("!I", asn) + ipaddress.IPv4Address(address).packed,
                optional=True,
            )
        if self.communities:
            out += _encode_attr(
                AttrType.COMMUNITIES, self.communities.encode(), optional=True
            )
        if self.mp_reach_nlri or self.mp_next_hop is not None:
            # RFC 6396 §4.3.4: TABLE_DUMP_V2 RIB entries carry the IPv6 next
            # hop in an MP_REACH_NLRI attribute with no NLRI of its own.
            out += _encode_attr(
                AttrType.MP_REACH_NLRI,
                _encode_mp_reach(self.mp_next_hop or "::", self.mp_reach_nlri),
                optional=True,
            )
        if self.mp_unreach_nlri:
            out += _encode_attr(
                AttrType.MP_UNREACH_NLRI,
                _encode_mp_unreach(self.mp_unreach_nlri),
                optional=True,
            )
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "PathAttributes":
        """Decode a path-attributes byte string.

        Unknown attribute types are skipped (they are preserved on the wire
        by real routers but BGPStream does not expose them either).
        """
        if profiling.counters is not None:
            profiling.counters.attr_blocks_eager += 1
        attrs = cls()
        offset = 0
        while offset < len(data):
            if offset + 2 > len(data):
                raise ValueError("truncated attribute header")
            flags = data[offset]
            attr_type = data[offset + 1]
            offset += 2
            if flags & FLAG_EXTENDED_LENGTH:
                if offset + 2 > len(data):
                    raise ValueError("truncated extended attribute length")
                (length,) = struct.unpack_from("!H", data, offset)
                offset += 2
            else:
                if offset + 1 > len(data):
                    raise ValueError("truncated attribute length")
                length = data[offset]
                offset += 1
            end = offset + length
            if end > len(data):
                raise ValueError("truncated attribute body")
            body = data[offset:end]
            offset = end
            attrs._apply(attr_type, body)
        return attrs

    def _apply(self, attr_type: int, body: bytes) -> None:
        if attr_type == AttrType.ORIGIN:
            self.origin = Origin(body[0])
        elif attr_type == AttrType.AS_PATH:
            self.as_path = ASPath.decode(body)
        elif attr_type == AttrType.NEXT_HOP:
            self.next_hop = str(ipaddress.IPv4Address(bytes(body)))
        elif attr_type == AttrType.MULTI_EXIT_DISC:
            (self.med,) = struct.unpack("!I", body)
        elif attr_type == AttrType.LOCAL_PREF:
            (self.local_pref,) = struct.unpack("!I", body)
        elif attr_type == AttrType.ATOMIC_AGGREGATE:
            self.atomic_aggregate = True
        elif attr_type == AttrType.AGGREGATOR:
            asn, raw_addr = struct.unpack("!I4s", body)
            self.aggregator = (asn, str(ipaddress.IPv4Address(raw_addr)))
        elif attr_type == AttrType.COMMUNITIES:
            self.communities = CommunitySet.decode(body)
        elif attr_type == AttrType.MP_REACH_NLRI:
            next_hop, prefixes = _decode_mp_reach(body)
            self.mp_next_hop = next_hop
            self.mp_reach_nlri = prefixes
        elif attr_type == AttrType.MP_UNREACH_NLRI:
            self.mp_unreach_nlri = _decode_mp_unreach(body)
        # other attribute types are ignored


def _encode_attr(attr_type: AttrType, body: bytes, optional: bool = False) -> bytes:
    flags = FLAG_TRANSITIVE
    if optional:
        flags |= FLAG_OPTIONAL
    if attr_type in (AttrType.MP_REACH_NLRI, AttrType.MP_UNREACH_NLRI):
        flags = FLAG_OPTIONAL  # non-transitive per RFC 4760
    if len(body) > 255:
        flags |= FLAG_EXTENDED_LENGTH
        header = struct.pack("!BBH", flags, int(attr_type), len(body))
    else:
        header = struct.pack("!BBB", flags, int(attr_type), len(body))
    return header + body


def _encode_mp_reach(next_hop: str, prefixes: List[Prefix]) -> bytes:
    nh = ipaddress.IPv6Address(next_hop).packed
    out = bytearray(struct.pack("!HBB", AFI_IPV6, SAFI_UNICAST, len(nh)))
    out += nh
    out.append(0)  # reserved / SNPA count
    for prefix in prefixes:
        out += prefix.encode()
    return bytes(out)


def _decode_mp_reach(body: bytes) -> Tuple[str, List[Prefix]]:
    afi, safi, nh_len = struct.unpack_from("!HBB", body, 0)
    offset = 4
    nh_raw = body[offset : offset + nh_len]
    offset += nh_len
    offset += 1  # reserved
    # A link-local second next hop may be present; use the first 16 bytes.
    next_hop = str(ipaddress.IPv6Address(bytes(nh_raw[:16]))) if nh_len >= 16 else None
    version = 6 if afi == AFI_IPV6 else 4
    prefixes: List[Prefix] = []
    while offset < len(body):
        prefix, offset = Prefix.decode(body, offset, version=version)
        prefixes.append(prefix)
    return next_hop or "::", prefixes


def _encode_mp_unreach(prefixes: List[Prefix]) -> bytes:
    out = bytearray(struct.pack("!HB", AFI_IPV6, SAFI_UNICAST))
    for prefix in prefixes:
        out += prefix.encode()
    return bytes(out)


def _decode_mp_unreach(body: bytes) -> List[Prefix]:
    afi, _safi = struct.unpack_from("!HB", body, 0)
    version = 6 if afi == AFI_IPV6 else 4
    offset = 3
    prefixes: List[Prefix] = []
    while offset < len(body):
        prefix, offset = Prefix.decode(body, offset, version=version)
        prefixes.append(prefix)
    return prefixes


# ---------------------------------------------------------------------------
# Lazy decode tier (PR 6)
# ---------------------------------------------------------------------------

#: Attribute types whose parse is deferred until first read.  MP_REACH /
#: MP_UNREACH stay eager: their NLRI are gate fields (the filter's prefix
#: trie reads them), and ATOMIC_AGGREGATE is a single flag.
_T_ORIGIN = int(AttrType.ORIGIN)
_T_AS_PATH = int(AttrType.AS_PATH)
_T_NEXT_HOP = int(AttrType.NEXT_HOP)
_T_MED = int(AttrType.MULTI_EXIT_DISC)
_T_LOCAL_PREF = int(AttrType.LOCAL_PREF)
_T_AGGREGATOR = int(AttrType.AGGREGATOR)
_T_COMMUNITIES = int(AttrType.COMMUNITIES)

_DEFERRABLE_TYPES = frozenset(
    {_T_ORIGIN, _T_AS_PATH, _T_NEXT_HOP, _T_MED, _T_LOCAL_PREF, _T_AGGREGATOR, _T_COMMUNITIES}
)

_SEGMENT_TYPE_VALUES = frozenset(int(t) for t in SegmentType)

#: Shared empty defaults for the lazy constructor (both classes are frozen
#: flyweights, so one instance can back every attribute set).
_EMPTY_PATH = ASPath()
_EMPTY_COMMUNITIES = CommunitySet()


def _validate_deferred_attr(attr_type: int, body) -> None:
    """Structurally validate a deferred attribute body without building values.

    A malformed deferred attribute must surface the **same corruption
    signal at decode time** as the eager path, so this raises the exact
    exception class (and message, where the check is cheap) that
    :meth:`PathAttributes._apply` would raise — the expensive value
    construction is all that gets deferred.
    """
    if attr_type == _T_ORIGIN:
        value = body[0]  # IndexError on an empty body, like Origin(body[0])
        if value > 2:
            Origin(value)  # raises the eager enum ValueError
    elif attr_type == _T_AS_PATH:
        size = len(body)
        offset = 0
        while offset < size:
            if offset + 2 > size:
                raise ValueError("truncated AS path segment header")
            if body[offset] not in _SEGMENT_TYPE_VALUES:
                SegmentType(body[offset])  # raises the eager enum ValueError
            offset += 2 + 4 * body[offset + 1]
            if offset > size:
                raise ValueError("truncated AS path segment body")
    elif attr_type == _T_NEXT_HOP:
        if len(body) != 4:
            ipaddress.IPv4Address(bytes(body))  # raises AddressValueError
    elif attr_type == _T_MED or attr_type == _T_LOCAL_PREF:
        if len(body) != 4:
            struct.unpack("!I", bytes(body))  # raises struct.error
    elif attr_type == _T_AGGREGATOR:
        if len(body) != 8:
            struct.unpack("!I4s", bytes(body))  # raises struct.error
    elif attr_type == _T_COMMUNITIES:
        if len(body) % 4:
            raise ValueError("communities attribute length must be a multiple of 4")


class LazyPathAttributes(PathAttributes):
    """A :class:`PathAttributes` that parses deferred attributes on first read.

    The constructor walks the attribute TLV block exactly like
    :meth:`PathAttributes.decode` but only *validates* the deferrable
    attribute bodies (keeping zero-copy slices of the wire buffer); gate
    attributes the filter layer needs cheaply — MP_REACH/MP_UNREACH NLRI
    and ATOMIC_AGGREGATE — are applied eagerly.  Reading a deferred field
    (``attrs.as_path`` …) materialises just that attribute, interning the
    value through the bound pool so only filter survivors pay the
    flyweight lookup.

    Semantics are observably identical to the eager class: corruption
    raises at construction time with the same exception classes, equality
    and ``encode()`` work against eager sets, and pickling materialises
    into a plain :class:`PathAttributes` (deferred slices must not cross
    process boundaries).
    """

    __slots__ = ("_deferred", "_pool")

    def __init__(self, data=b"", pool=None) -> None:
        set_field = _SLOT_SETTERS
        set_field["origin"](self, Origin.IGP)
        set_field["as_path"](self, _EMPTY_PATH)
        set_field["next_hop"](self, None)
        set_field["med"](self, None)
        set_field["local_pref"](self, None)
        set_field["aggregator"](self, None)
        set_field["communities"](self, _EMPTY_COMMUNITIES)
        self.atomic_aggregate = False
        self.mp_next_hop = None
        self.mp_reach_nlri = []
        self.mp_unreach_nlri = []
        self._canonical_for = None
        deferred = {}
        self._deferred = deferred
        self._pool = pool
        size = len(data)
        offset = 0
        while offset < size:
            if offset + 2 > size:
                raise ValueError("truncated attribute header")
            flags = data[offset]
            attr_type = data[offset + 1]
            offset += 2
            if flags & FLAG_EXTENDED_LENGTH:
                if offset + 2 > size:
                    raise ValueError("truncated extended attribute length")
                (length,) = struct.unpack_from("!H", data, offset)
                offset += 2
            else:
                if offset + 1 > size:
                    raise ValueError("truncated attribute length")
                length = data[offset]
                offset += 1
            end = offset + length
            if end > size:
                raise ValueError("truncated attribute body")
            body = data[offset:end]
            offset = end
            if attr_type in _DEFERRABLE_TYPES:
                _validate_deferred_attr(attr_type, body)
                deferred[attr_type] = body
            else:
                self._apply(attr_type, body)
        if profiling.counters is not None:
            profiling.counters.attr_blocks_deferred += 1

    # -- lazy machinery ----------------------------------------------------

    def bind_pool(self, pool) -> None:
        """Intern materialised values through ``pool`` from now on."""
        self._pool = pool

    @property
    def deferred_types(self) -> frozenset:
        """The attribute type codes still awaiting materialisation."""
        return frozenset(self._deferred)

    def _materialise(self, attr_type: int) -> None:
        body = self._deferred.get(attr_type)
        if body is None:
            return
        # _apply stores through the shadowing property setters, which write
        # the slot *before* popping the deferred entry — a concurrent reader
        # at worst repeats the (idempotent) parse, never sees a half state.
        self._apply(attr_type, body)
        pool = self._pool
        if pool is not None:
            if attr_type == _T_AS_PATH:
                _set_as_path(self, pool.path(_get_as_path(self)))
            elif attr_type == _T_COMMUNITIES:
                _set_communities(self, pool.communities(_get_communities(self)))
            elif attr_type == _T_NEXT_HOP:
                value = _get_next_hop(self)
                if value is not None:
                    _set_next_hop(self, pool.string(value))
        if profiling.counters is not None:
            profiling.counters.attr_fields_materialised += 1

    def materialise_all(self) -> None:
        """Force-parse every remaining deferred attribute."""
        for attr_type in tuple(self._deferred):
            self._materialise(attr_type)

    # -- pickling ----------------------------------------------------------

    def __reduce__(self):
        # Deferred wire slices (memoryviews into a dump buffer) and the
        # bound pool must not travel; an unpickled lazy set is just eager.
        self.materialise_all()
        return (
            PathAttributes,
            (
                self.origin,
                self.as_path,
                self.next_hop,
                self.med,
                self.local_pref,
                self.atomic_aggregate,
                self.aggregator,
                self.communities,
                self.mp_next_hop,
                self.mp_reach_nlri,
                self.mp_unreach_nlri,
            ),
        )


def _lazy_field(name: str, attr_type: int) -> property:
    """A property shadowing a parent slot, materialising on first read."""
    slot = PathAttributes.__dict__[name]
    slot_get = slot.__get__
    slot_set = slot.__set__

    def fget(self):
        if attr_type in self._deferred:
            self._materialise(attr_type)
        return slot_get(self)

    def fset(self, value):
        slot_set(self, value)
        self._deferred.pop(attr_type, None)

    return property(fget, fset)


_SLOT_SETTERS = {
    name: PathAttributes.__dict__[name].__set__
    for name in ("origin", "as_path", "next_hop", "med", "local_pref", "aggregator", "communities")
}
_get_as_path = PathAttributes.__dict__["as_path"].__get__
_set_as_path = PathAttributes.__dict__["as_path"].__set__
_get_communities = PathAttributes.__dict__["communities"].__get__
_set_communities = PathAttributes.__dict__["communities"].__set__
_get_next_hop = PathAttributes.__dict__["next_hop"].__get__
_set_next_hop = PathAttributes.__dict__["next_hop"].__set__

for _name, _attr_type in (
    ("origin", _T_ORIGIN),
    ("as_path", _T_AS_PATH),
    ("next_hop", _T_NEXT_HOP),
    ("med", _T_MED),
    ("local_pref", _T_LOCAL_PREF),
    ("aggregator", _T_AGGREGATOR),
    ("communities", _T_COMMUNITIES),
):
    setattr(LazyPathAttributes, _name, _lazy_field(_name, _attr_type))
del _name, _attr_type


# ---------------------------------------------------------------------------
# The global lazy-decode switch and the decode entry point
# ---------------------------------------------------------------------------

_lazy_decode = True


def lazy_decode_enabled() -> bool:
    return _lazy_decode


def set_lazy_decode(enabled: bool) -> bool:
    """Globally enable/disable lazy attribute decoding; returns the previous
    setting (so callers can restore it)."""
    global _lazy_decode
    previous = _lazy_decode
    _lazy_decode = bool(enabled)
    return previous


def resolve_lazy(lazy: Optional[bool] = None) -> bool:
    """Resolve a per-call ``lazy=`` knob against the global switch."""
    return _lazy_decode if lazy is None else bool(lazy)


class lazy_decoding:
    """Context manager scoping the global lazy-decode switch::

        with lazy_decoding(False):
            update = decode_update(raw)   # fully-materialised attributes
    """

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled
        self._previous: Optional[bool] = None

    def __enter__(self) -> "lazy_decoding":
        self._previous = set_lazy_decode(self.enabled)
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._previous is not None:
            set_lazy_decode(self._previous)


def decode_attributes(data, lazy: Optional[bool] = None, pool=None) -> PathAttributes:
    """Decode an attribute TLV block, lazily or eagerly.

    ``lazy=None`` follows the global switch; ``pool`` (lazy mode only)
    interns values as they materialise.  Either way corruption raises here,
    with identical exception classes.
    """
    if resolve_lazy(lazy):
        return LazyPathAttributes(data, pool)
    return PathAttributes.decode(data)
