"""BGP path attributes (RFC 4271 §4.3, RFC 1997, RFC 4760).

The attributes carried in UPDATE messages and in TABLE_DUMP_V2 RIB entries.
We implement the attributes BGPStream exposes in its elem (Table 1 of the
paper) plus the ones needed to round-trip realistic data: ORIGIN, AS_PATH,
NEXT_HOP, MULTI_EXIT_DISC, LOCAL_PREF, ATOMIC_AGGREGATE, AGGREGATOR,
COMMUNITIES, and MP_REACH/MP_UNREACH_NLRI for IPv6.
"""

from __future__ import annotations

import ipaddress
import struct
from dataclasses import dataclass, field
from enum import IntEnum
from typing import List, Optional, Tuple

from repro.bgp.aspath import ASPath
from repro.bgp.community import CommunitySet
from repro.bgp.prefix import Prefix


class Origin(IntEnum):
    """ORIGIN attribute values."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2

    def __str__(self) -> str:
        return self.name


class AttrType(IntEnum):
    """Path attribute type codes."""

    ORIGIN = 1
    AS_PATH = 2
    NEXT_HOP = 3
    MULTI_EXIT_DISC = 4
    LOCAL_PREF = 5
    ATOMIC_AGGREGATE = 6
    AGGREGATOR = 7
    COMMUNITIES = 8
    MP_REACH_NLRI = 14
    MP_UNREACH_NLRI = 15


#: Attribute flag bits.
FLAG_OPTIONAL = 0x80
FLAG_TRANSITIVE = 0x40
FLAG_PARTIAL = 0x20
FLAG_EXTENDED_LENGTH = 0x10

#: AFI/SAFI values used by MP_REACH/MP_UNREACH.
AFI_IPV4 = 1
AFI_IPV6 = 2
SAFI_UNICAST = 1


@dataclass(slots=True)
class PathAttributes:
    """The decoded attribute set of a route.

    ``mp_reach_nlri`` / ``mp_unreach_nlri`` hold IPv6 prefixes announced or
    withdrawn through the multi-protocol attributes; ``mp_next_hop`` is the
    IPv6 next hop carried inside MP_REACH.

    Slotted: one attribute set is shared by every elem a record fans out
    into, and the intern layer writes canonical path/community/next-hop
    objects back into it so repeated extraction takes identity fast paths.
    """

    origin: Origin = Origin.IGP
    as_path: ASPath = field(default_factory=ASPath)
    next_hop: Optional[str] = None
    med: Optional[int] = None
    local_pref: Optional[int] = None
    atomic_aggregate: bool = False
    aggregator: Optional[Tuple[int, str]] = None
    communities: CommunitySet = field(default_factory=CommunitySet)
    mp_next_hop: Optional[str] = None
    mp_reach_nlri: List[Prefix] = field(default_factory=list)
    mp_unreach_nlri: List[Prefix] = field(default_factory=list)

    # -- helpers -----------------------------------------------------------

    def effective_next_hop(self, version: int = 4) -> Optional[str]:
        """The next hop relevant for ``version`` (MP_REACH wins for IPv6)."""
        if version == 6:
            return self.mp_next_hop or self.next_hop
        return self.next_hop

    # -- wire codec --------------------------------------------------------

    def encode(self) -> bytes:
        """Encode to the path-attributes byte string of an UPDATE message."""
        out = bytearray()
        out += _encode_attr(AttrType.ORIGIN, bytes([int(self.origin)]))
        out += _encode_attr(AttrType.AS_PATH, self.as_path.encode())
        if self.next_hop is not None:
            out += _encode_attr(
                AttrType.NEXT_HOP, ipaddress.IPv4Address(self.next_hop).packed
            )
        if self.med is not None:
            out += _encode_attr(
                AttrType.MULTI_EXIT_DISC, struct.pack("!I", self.med), optional=True
            )
        if self.local_pref is not None:
            out += _encode_attr(AttrType.LOCAL_PREF, struct.pack("!I", self.local_pref))
        if self.atomic_aggregate:
            out += _encode_attr(AttrType.ATOMIC_AGGREGATE, b"")
        if self.aggregator is not None:
            asn, address = self.aggregator
            out += _encode_attr(
                AttrType.AGGREGATOR,
                struct.pack("!I", asn) + ipaddress.IPv4Address(address).packed,
                optional=True,
            )
        if self.communities:
            out += _encode_attr(
                AttrType.COMMUNITIES, self.communities.encode(), optional=True
            )
        if self.mp_reach_nlri or self.mp_next_hop is not None:
            # RFC 6396 §4.3.4: TABLE_DUMP_V2 RIB entries carry the IPv6 next
            # hop in an MP_REACH_NLRI attribute with no NLRI of its own.
            out += _encode_attr(
                AttrType.MP_REACH_NLRI,
                _encode_mp_reach(self.mp_next_hop or "::", self.mp_reach_nlri),
                optional=True,
            )
        if self.mp_unreach_nlri:
            out += _encode_attr(
                AttrType.MP_UNREACH_NLRI,
                _encode_mp_unreach(self.mp_unreach_nlri),
                optional=True,
            )
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "PathAttributes":
        """Decode a path-attributes byte string.

        Unknown attribute types are skipped (they are preserved on the wire
        by real routers but BGPStream does not expose them either).
        """
        attrs = cls()
        offset = 0
        while offset < len(data):
            if offset + 2 > len(data):
                raise ValueError("truncated attribute header")
            flags = data[offset]
            attr_type = data[offset + 1]
            offset += 2
            if flags & FLAG_EXTENDED_LENGTH:
                if offset + 2 > len(data):
                    raise ValueError("truncated extended attribute length")
                (length,) = struct.unpack_from("!H", data, offset)
                offset += 2
            else:
                if offset + 1 > len(data):
                    raise ValueError("truncated attribute length")
                length = data[offset]
                offset += 1
            end = offset + length
            if end > len(data):
                raise ValueError("truncated attribute body")
            body = data[offset:end]
            offset = end
            attrs._apply(attr_type, body)
        return attrs

    def _apply(self, attr_type: int, body: bytes) -> None:
        if attr_type == AttrType.ORIGIN:
            self.origin = Origin(body[0])
        elif attr_type == AttrType.AS_PATH:
            self.as_path = ASPath.decode(body)
        elif attr_type == AttrType.NEXT_HOP:
            self.next_hop = str(ipaddress.IPv4Address(body))
        elif attr_type == AttrType.MULTI_EXIT_DISC:
            (self.med,) = struct.unpack("!I", body)
        elif attr_type == AttrType.LOCAL_PREF:
            (self.local_pref,) = struct.unpack("!I", body)
        elif attr_type == AttrType.ATOMIC_AGGREGATE:
            self.atomic_aggregate = True
        elif attr_type == AttrType.AGGREGATOR:
            asn, raw_addr = struct.unpack("!I4s", body)
            self.aggregator = (asn, str(ipaddress.IPv4Address(raw_addr)))
        elif attr_type == AttrType.COMMUNITIES:
            self.communities = CommunitySet.decode(body)
        elif attr_type == AttrType.MP_REACH_NLRI:
            next_hop, prefixes = _decode_mp_reach(body)
            self.mp_next_hop = next_hop
            self.mp_reach_nlri = prefixes
        elif attr_type == AttrType.MP_UNREACH_NLRI:
            self.mp_unreach_nlri = _decode_mp_unreach(body)
        # other attribute types are ignored


def _encode_attr(attr_type: AttrType, body: bytes, optional: bool = False) -> bytes:
    flags = FLAG_TRANSITIVE
    if optional:
        flags |= FLAG_OPTIONAL
    if attr_type in (AttrType.MP_REACH_NLRI, AttrType.MP_UNREACH_NLRI):
        flags = FLAG_OPTIONAL  # non-transitive per RFC 4760
    if len(body) > 255:
        flags |= FLAG_EXTENDED_LENGTH
        header = struct.pack("!BBH", flags, int(attr_type), len(body))
    else:
        header = struct.pack("!BBB", flags, int(attr_type), len(body))
    return header + body


def _encode_mp_reach(next_hop: str, prefixes: List[Prefix]) -> bytes:
    nh = ipaddress.IPv6Address(next_hop).packed
    out = bytearray(struct.pack("!HBB", AFI_IPV6, SAFI_UNICAST, len(nh)))
    out += nh
    out.append(0)  # reserved / SNPA count
    for prefix in prefixes:
        out += prefix.encode()
    return bytes(out)


def _decode_mp_reach(body: bytes) -> Tuple[str, List[Prefix]]:
    afi, safi, nh_len = struct.unpack_from("!HBB", body, 0)
    offset = 4
    nh_raw = body[offset : offset + nh_len]
    offset += nh_len
    offset += 1  # reserved
    # A link-local second next hop may be present; use the first 16 bytes.
    next_hop = str(ipaddress.IPv6Address(nh_raw[:16])) if nh_len >= 16 else None
    version = 6 if afi == AFI_IPV6 else 4
    prefixes: List[Prefix] = []
    while offset < len(body):
        prefix, offset = Prefix.decode(body, offset, version=version)
        prefixes.append(prefix)
    return next_hop or "::", prefixes


def _encode_mp_unreach(prefixes: List[Prefix]) -> bytes:
    out = bytearray(struct.pack("!HB", AFI_IPV6, SAFI_UNICAST))
    for prefix in prefixes:
        out += prefix.encode()
    return bytes(out)


def _decode_mp_unreach(body: bytes) -> List[Prefix]:
    afi, _safi = struct.unpack_from("!HB", body, 0)
    version = 6 if afi == AFI_IPV6 else 4
    offset = 3
    prefixes: List[Prefix] = []
    while offset < len(body):
        prefix, offset = Prefix.decode(body, offset, version=version)
        prefixes.append(prefix)
    return prefixes
