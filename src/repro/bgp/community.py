"""BGP communities attribute (RFC 1997).

A community is a 32-bit value conventionally written ``ASN:value`` where the
two most-significant bytes carry the AS identifier of the network defining
the community (the paper uses exactly this convention in §5 when measuring
community diversity, and in §4.3 when matching black-holing communities).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, Tuple

#: Well-known community used as the conventional black-hole signal
#: (RFC 7999 assigns 65535:666).
BLACKHOLE = (65535, 666)

#: RFC 1997 well-known communities.
NO_EXPORT = (65535, 65281)
NO_ADVERTISE = (65535, 65282)
NO_EXPORT_SUBCONFED = (65535, 65283)


@dataclass(frozen=True, order=True)
class Community:
    """A single ``asn:value`` community."""

    asn: int
    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.asn <= 0xFFFF:
            raise ValueError(f"community AS identifier {self.asn} out of 16-bit range")
        if not 0 <= self.value <= 0xFFFF:
            raise ValueError(f"community value {self.value} out of 16-bit range")

    @classmethod
    def from_string(cls, text: str) -> "Community":
        asn_text, _, value_text = text.partition(":")
        return cls(int(asn_text), int(value_text))

    @classmethod
    def from_int(cls, raw: int) -> "Community":
        return cls((raw >> 16) & 0xFFFF, raw & 0xFFFF)

    def to_int(self) -> int:
        return (self.asn << 16) | self.value

    def __str__(self) -> str:
        return f"{self.asn}:{self.value}"


class CommunitySet:
    """An immutable set of communities attached to a route."""

    __slots__ = ("_communities",)

    def __init__(self, communities: Iterable[Community] = ()) -> None:
        self._communities: FrozenSet[Community] = frozenset(communities)

    @classmethod
    def from_strings(cls, texts: Iterable[str]) -> "CommunitySet":
        return cls(Community.from_string(t) for t in texts)

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, int]]) -> "CommunitySet":
        return cls(Community(a, v) for a, v in pairs)

    def __iter__(self) -> Iterator[Community]:
        return iter(sorted(self._communities))

    def __len__(self) -> int:
        return len(self._communities)

    def __bool__(self) -> bool:
        return bool(self._communities)

    def __contains__(self, item: object) -> bool:
        if isinstance(item, str):
            item = Community.from_string(item)
        if isinstance(item, tuple):
            item = Community(*item)
        return item in self._communities

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CommunitySet):
            return NotImplemented
        return self._communities == other._communities

    def __hash__(self) -> int:
        return hash(self._communities)

    def __str__(self) -> str:
        return " ".join(str(c) for c in self)

    def __repr__(self) -> str:
        return f"CommunitySet({sorted(self._communities)!r})"

    # -- set operations ----------------------------------------------------

    def add(self, community: Community) -> "CommunitySet":
        return CommunitySet(self._communities | {community})

    def union(self, other: "CommunitySet") -> "CommunitySet":
        return CommunitySet(self._communities | other._communities)

    def remove(self, community: Community) -> "CommunitySet":
        return CommunitySet(self._communities - {community})

    def asn_identifiers(self) -> FrozenSet[int]:
        """The distinct AS identifiers (high 16 bits) across the set.

        This is the quantity Figure 5d plots per vantage point.
        """
        return frozenset(c.asn for c in self._communities)

    def matches_any(self, targets: Iterable[Community]) -> bool:
        return any(t in self._communities for t in targets)

    # -- wire codec --------------------------------------------------------

    def encode(self) -> bytes:
        out = bytearray()
        for community in sorted(self._communities):
            out += struct.pack("!HH", community.asn, community.value)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "CommunitySet":
        if len(data) % 4:
            raise ValueError("communities attribute length must be a multiple of 4")
        communities = []
        for offset in range(0, len(data), 4):
            asn, value = struct.unpack_from("!HH", data, offset)
            communities.append(Community(asn, value))
        return cls(communities)
