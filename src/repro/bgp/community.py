"""BGP communities attribute (RFC 1997).

A community is a 32-bit value conventionally written ``ASN:value`` where the
two most-significant bytes carry the AS identifier of the network defining
the community (the paper uses exactly this convention in §5 when measuring
community diversity, and in §4.3 when matching black-holing communities).
"""

from __future__ import annotations

import struct
from typing import FrozenSet, Iterable, Iterator, Tuple

#: Well-known community used as the conventional black-hole signal
#: (RFC 7999 assigns 65535:666).
BLACKHOLE = (65535, 666)

#: RFC 1997 well-known communities.
NO_EXPORT = (65535, 65281)
NO_ADVERTISE = (65535, 65282)
NO_EXPORT_SUBCONFED = (65535, 65283)


class Community:
    """A single ``asn:value`` community.

    A slotted, frozen, orderable flyweight value object with a cached hash
    and an identity-first equality check (see :mod:`repro.core.intern`).
    """

    __slots__ = ("asn", "value", "_hash")

    def __init__(self, asn: int, value: int) -> None:
        if not 0 <= asn <= 0xFFFF:
            raise ValueError(f"community AS identifier {asn} out of 16-bit range")
        if not 0 <= value <= 0xFFFF:
            raise ValueError(f"community value {value} out of 16-bit range")
        object.__setattr__(self, "asn", asn)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Community is immutable")

    def __delattr__(self, name: str) -> None:
        raise AttributeError("Community is immutable")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Community):
            return NotImplemented
        return self.asn == other.asn and self.value == other.value

    def __lt__(self, other: "Community") -> bool:
        if not isinstance(other, Community):
            return NotImplemented
        return (self.asn, self.value) < (other.asn, other.value)

    def __le__(self, other: "Community") -> bool:
        if not isinstance(other, Community):
            return NotImplemented
        return (self.asn, self.value) <= (other.asn, other.value)

    def __gt__(self, other: "Community") -> bool:
        if not isinstance(other, Community):
            return NotImplemented
        return (self.asn, self.value) > (other.asn, other.value)

    def __ge__(self, other: "Community") -> bool:
        if not isinstance(other, Community):
            return NotImplemented
        return (self.asn, self.value) >= (other.asn, other.value)

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = hash((self.asn, self.value))
            object.__setattr__(self, "_hash", value)
        return value

    def __repr__(self) -> str:
        return f"Community(asn={self.asn!r}, value={self.value!r})"

    def __getstate__(self) -> Tuple[int, int]:
        return (self.asn, self.value)

    def __setstate__(self, state: Tuple[int, int]) -> None:
        object.__setattr__(self, "asn", state[0])
        object.__setattr__(self, "value", state[1])
        object.__setattr__(self, "_hash", None)

    @classmethod
    def from_string(cls, text: str) -> "Community":
        asn_text, _, value_text = text.partition(":")
        return cls(int(asn_text), int(value_text))

    @classmethod
    def from_int(cls, raw: int) -> "Community":
        return cls((raw >> 16) & 0xFFFF, raw & 0xFFFF)

    def to_int(self) -> int:
        return (self.asn << 16) | self.value

    def __str__(self) -> str:
        return f"{self.asn}:{self.value}"


class CommunitySet:
    """An immutable set of communities attached to a route.

    A frozen flyweight like its members: the hash, the sorted view and the
    string form are computed once per canonical object and cached, and
    equality short-circuits on identity (interned sets compare in O(1)).
    """

    __slots__ = ("_communities", "_hash", "_sorted", "_str", "_packed")

    def __init__(self, communities: Iterable[Community] = ()) -> None:
        object.__setattr__(self, "_communities", frozenset(communities))
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_sorted", None)
        object.__setattr__(self, "_str", None)
        object.__setattr__(self, "_packed", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("CommunitySet is immutable")

    def __delattr__(self, name: str) -> None:
        raise AttributeError("CommunitySet is immutable")

    def _sorted_view(self) -> Tuple[Community, ...]:
        view = self._sorted
        if view is None:
            view = tuple(sorted(self._communities))
            object.__setattr__(self, "_sorted", view)
        return view

    @classmethod
    def from_strings(cls, texts: Iterable[str]) -> "CommunitySet":
        return cls(Community.from_string(t) for t in texts)

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, int]]) -> "CommunitySet":
        return cls(Community(a, v) for a, v in pairs)

    def __iter__(self) -> Iterator[Community]:
        return iter(self._sorted_view())

    def __len__(self) -> int:
        return len(self._communities)

    def __bool__(self) -> bool:
        return bool(self._communities)

    def __contains__(self, item: object) -> bool:
        if isinstance(item, str):
            item = Community.from_string(item)
        if isinstance(item, tuple):
            item = Community(*item)
        return item in self._communities

    def _packed_view(self) -> Tuple[int, ...]:
        packed = self._packed
        if packed is None:
            packed = tuple(sorted(c.to_int() for c in self._communities))
            object.__setattr__(self, "_packed", packed)
        return packed

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, CommunitySet):
            return NotImplemented
        if len(self._communities) != len(other._communities):
            return False
        # Equality runs hot inside intern-pool lookups, where distinct but
        # equal sets are the norm: comparing the cached packed-int views
        # stays in C instead of one Community.__eq__ call per member.
        return self._packed_view() == other._packed_view()

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = hash(self._communities)
            object.__setattr__(self, "_hash", value)
        return value

    def __str__(self) -> str:
        text = self._str
        if text is None:
            text = " ".join(str(c) for c in self)
            object.__setattr__(self, "_str", text)
        return text

    def __repr__(self) -> str:
        return f"CommunitySet({list(self._sorted_view())!r})"

    def __getstate__(self) -> Tuple[FrozenSet[Community]]:
        return (self._communities,)

    def __setstate__(self, state: Tuple[FrozenSet[Community]]) -> None:
        object.__setattr__(self, "_communities", state[0])
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_sorted", None)
        object.__setattr__(self, "_str", None)
        object.__setattr__(self, "_packed", None)

    # -- set operations ----------------------------------------------------

    def add(self, community: Community) -> "CommunitySet":
        return CommunitySet(self._communities | {community})

    def union(self, other: "CommunitySet") -> "CommunitySet":
        return CommunitySet(self._communities | other._communities)

    def remove(self, community: Community) -> "CommunitySet":
        return CommunitySet(self._communities - {community})

    def asn_identifiers(self) -> FrozenSet[int]:
        """The distinct AS identifiers (high 16 bits) across the set.

        This is the quantity Figure 5d plots per vantage point.
        """
        return frozenset(c.asn for c in self._communities)

    def matches_any(self, targets: Iterable[Community]) -> bool:
        return any(t in self._communities for t in targets)

    # -- wire codec --------------------------------------------------------

    def encode(self) -> bytes:
        out = bytearray()
        for community in self._sorted_view():
            out += struct.pack("!HH", community.asn, community.value)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "CommunitySet":
        if len(data) % 4:
            raise ValueError("communities attribute length must be a multiple of 4")
        communities = []
        for offset in range(0, len(data), 4):
            asn, value = struct.unpack_from("!HH", data, offset)
            communities.append(Community(asn, value))
        return cls(communities)
