"""AS paths with AS_SEQUENCE and AS_SET segments (RFC 4271 §4.3, §5.1.2).

The paper's Table 1 notes that the BGPStream elem AS-path field carries all
the information of the underlying BGP message, including AS_SET and
AS_SEQUENCE segments, plus convenience functions for iterating segments and
converting paths to the ``bgpdump`` string format.  This module provides
those structures and codecs (4-byte ASNs, as modern MRT data uses).
"""

from __future__ import annotations

import struct
from enum import IntEnum
from typing import Iterator, List, Sequence, Tuple


class SegmentType(IntEnum):
    """AS path segment types from RFC 4271 (plus RFC 5065 confed types)."""

    AS_SET = 1
    AS_SEQUENCE = 2
    AS_CONFED_SEQUENCE = 3
    AS_CONFED_SET = 4


class ASPathSegment:
    """One AS path segment: a type plus an ordered tuple of ASNs.

    A flyweight value object: ``__slots__`` (no per-instance dict), frozen
    (mutation raises — canonical instances are shared process-wide by the
    intern layer), equality takes the identity fast path first and the hash
    is computed once and cached — interned segments make downstream dict and
    set operations cheap (see :mod:`repro.core.intern`).
    """

    __slots__ = ("segment_type", "asns", "_hash")

    def __init__(self, segment_type: SegmentType, asns: Tuple[int, ...]) -> None:
        for asn in asns:
            if not 0 <= asn <= 0xFFFFFFFF:
                raise ValueError(f"ASN {asn} out of 32-bit range")
        object.__setattr__(self, "segment_type", segment_type)
        object.__setattr__(self, "asns", asns)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ASPathSegment is immutable")

    def __delattr__(self, name: str) -> None:
        raise AttributeError("ASPathSegment is immutable")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, ASPathSegment):
            return NotImplemented
        return self.segment_type == other.segment_type and self.asns == other.asns

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = hash((self.segment_type, self.asns))
            object.__setattr__(self, "_hash", value)
        return value

    def __repr__(self) -> str:
        return f"ASPathSegment(segment_type={self.segment_type!r}, asns={self.asns!r})"

    def __getstate__(self) -> Tuple[SegmentType, Tuple[int, ...]]:
        return (self.segment_type, self.asns)

    def __setstate__(self, state: Tuple[SegmentType, Tuple[int, ...]]) -> None:
        object.__setattr__(self, "segment_type", state[0])
        object.__setattr__(self, "asns", state[1])
        object.__setattr__(self, "_hash", None)

    def __str__(self) -> str:
        if self.segment_type in (SegmentType.AS_SET, SegmentType.AS_CONFED_SET):
            return "{" + ",".join(str(a) for a in self.asns) + "}"
        return " ".join(str(a) for a in self.asns)

    def __len__(self) -> int:
        return len(self.asns)


class ASPath:
    """A full AS path: an ordered sequence of segments.

    Like :class:`ASPathSegment` this is a slotted, frozen flyweight: hash
    and the bgpdump string form are computed once per canonical object, and
    equality between interned paths short-circuits on identity.
    """

    __slots__ = ("segments", "_hash", "_str")

    def __init__(self, segments: Tuple[ASPathSegment, ...] = ()) -> None:
        object.__setattr__(self, "segments", segments)
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_str", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ASPath is immutable")

    def __delattr__(self, name: str) -> None:
        raise AttributeError("ASPath is immutable")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, ASPath):
            return NotImplemented
        return self.segments == other.segments

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = hash(self.segments)
            object.__setattr__(self, "_hash", value)
        return value

    def __repr__(self) -> str:
        return f"ASPath(segments={self.segments!r})"

    def __getstate__(self) -> Tuple[Tuple[ASPathSegment, ...]]:
        # Always-truthy 1-tuple: a falsy state would skip __setstate__.
        return (self.segments,)

    def __setstate__(self, state: Tuple[Tuple[ASPathSegment, ...]]) -> None:
        object.__setattr__(self, "segments", state[0])
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_str", None)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_asns(cls, asns: Sequence[int]) -> "ASPath":
        """Build a path made of a single AS_SEQUENCE segment."""
        if not asns:
            return cls(())
        return cls((ASPathSegment(SegmentType.AS_SEQUENCE, tuple(asns)),))

    @classmethod
    def from_string(cls, text: str) -> "ASPath":
        """Parse the bgpdump-style string form, e.g. ``"701 3356 {64512,64513}"``."""
        text = text.strip()
        if not text:
            return cls(())
        segments: List[ASPathSegment] = []
        sequence: List[int] = []
        for token in text.split():
            if token.startswith("{"):
                if sequence:
                    segments.append(
                        ASPathSegment(SegmentType.AS_SEQUENCE, tuple(sequence))
                    )
                    sequence = []
                inner = token.strip("{}")
                members = tuple(int(a) for a in inner.split(",") if a)
                segments.append(ASPathSegment(SegmentType.AS_SET, members))
            else:
                sequence.append(int(token))
        if sequence:
            segments.append(ASPathSegment(SegmentType.AS_SEQUENCE, tuple(sequence)))
        return cls(tuple(segments))

    # -- views -------------------------------------------------------------

    def __str__(self) -> str:
        text = self._str
        if text is None:
            text = " ".join(str(segment) for segment in self.segments)
            object.__setattr__(self, "_str", text)
        return text

    def __len__(self) -> int:
        """Path length as used in BGP best-path selection.

        Each ASN in a SEQUENCE counts 1; an entire AS_SET counts 1
        (RFC 4271 §9.1.2.2).
        """
        total = 0
        for segment in self.segments:
            if segment.segment_type == SegmentType.AS_SEQUENCE:
                total += len(segment.asns)
            elif segment.segment_type == SegmentType.AS_SET:
                total += 1
        return total

    def __bool__(self) -> bool:
        return bool(self.segments)

    def iter_asns(self) -> Iterator[int]:
        """Yield every ASN appearing anywhere in the path, in order."""
        for segment in self.segments:
            yield from segment.asns

    @property
    def hops(self) -> List[int]:
        """The ASNs of the path with consecutive duplicates (prepending) removed.

        This mirrors the ``groupby`` idiom of the paper's Listing 1.
        """
        result: List[int] = []
        for asn in self.iter_asns():
            if not result or result[-1] != asn:
                result.append(asn)
        return result

    @property
    def origin_asn(self) -> int | None:
        """The last ASN of the path (the origin), or None for an empty path."""
        last_segment = self.segments[-1] if self.segments else None
        if last_segment is None or not last_segment.asns:
            return None
        return last_segment.asns[-1]

    @property
    def peer_asn(self) -> int | None:
        """The first ASN of the path (the neighbour of the vantage point)."""
        first_segment = self.segments[0] if self.segments else None
        if first_segment is None or not first_segment.asns:
            return None
        return first_segment.asns[0]

    def contains_asn(self, asn: int) -> bool:
        return any(a == asn for a in self.iter_asns())

    def adjacencies(self) -> List[Tuple[int, int]]:
        """AS-level links implied by the SEQUENCE portions of the path."""
        hops = self.hops
        return [(hops[i], hops[i + 1]) for i in range(len(hops) - 1)]

    def prepend(self, asn: int, count: int = 1) -> "ASPath":
        """Return a new path with ``asn`` prepended ``count`` times."""
        if count < 1:
            raise ValueError("count must be >= 1")
        prefix = ASPathSegment(SegmentType.AS_SEQUENCE, (asn,) * count)
        if self.segments and self.segments[0].segment_type == SegmentType.AS_SEQUENCE:
            merged = ASPathSegment(
                SegmentType.AS_SEQUENCE, (asn,) * count + self.segments[0].asns
            )
            return ASPath((merged,) + self.segments[1:])
        return ASPath((prefix,) + self.segments)

    # -- wire codec (always 4-byte ASNs, per RFC 6793 collectors) ----------

    def encode(self) -> bytes:
        out = bytearray()
        for segment in self.segments:
            out.append(int(segment.segment_type))
            out.append(len(segment.asns))
            for asn in segment.asns:
                out += struct.pack("!I", asn)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "ASPath":
        segments: List[ASPathSegment] = []
        offset = 0
        while offset < len(data):
            if offset + 2 > len(data):
                raise ValueError("truncated AS path segment header")
            seg_type = SegmentType(data[offset])
            count = data[offset + 1]
            offset += 2
            end = offset + 4 * count
            if end > len(data):
                raise ValueError("truncated AS path segment body")
            asns = struct.unpack(f"!{count}I", data[offset:end]) if count else ()
            segments.append(ASPathSegment(seg_type, tuple(asns)))
            offset = end
        return cls(tuple(segments))


def path_inflation(observed: "ASPath", shortest_hops: int) -> int:
    """Extra hops of an observed path relative to a shortest-path hop count.

    ``shortest_hops`` counts nodes on the shortest path (as
    ``networkx.shortest_path`` returns); the observed path contributes
    ``len(hops)``.  Negative inflation is clamped to zero (it can only arise
    from AS_SET compression artefacts).
    """
    return max(0, len(observed.hops) - shortest_hops)
