"""BGP session finite-state-machine states (RFC 4271 §8).

RIPE RIS collectors dump a *state message* whenever the FSM of a session
with a vantage point changes state; BGPStream exposes the old and new state
in the elem (Table 1).  The paper's RT plugin (§6.2.1) also forces routing
table state transitions on receipt of these messages (event E4).
"""

from __future__ import annotations

from enum import IntEnum


class SessionState(IntEnum):
    """BGP FSM states, numbered as MRT BGP4MP_STATE_CHANGE encodes them."""

    UNKNOWN = 0
    IDLE = 1
    CONNECT = 2
    ACTIVE = 3
    OPENSENT = 4
    OPENCONFIRM = 5
    ESTABLISHED = 6

    @property
    def is_established(self) -> bool:
        return self is SessionState.ESTABLISHED

    def __str__(self) -> str:  # bgpdump-compatible rendering
        return self.name


def is_session_up(state: SessionState) -> bool:
    """A vantage point is feeding data only when its session is ESTABLISHED."""
    return state is SessionState.ESTABLISHED
