"""Plugin base classes for BGPCorsaro."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.core.elem import BGPElem
from repro.core.record import BGPStreamRecord


@dataclass
class TaggedRecord:
    """A record travelling through the pipeline, plus tags added by plugins.

    Stateless plugins annotate ``tags``; plugins later in the pipeline can
    read those tags to inform their processing (§6.1).  Elems are extracted
    once by the pipeline and shared by all plugins.
    """

    record: BGPStreamRecord
    elems: List[BGPElem] = field(default_factory=list)
    tags: Dict[str, Any] = field(default_factory=dict)

    @property
    def time(self) -> int:
        return self.record.time

    def tag(self, key: str, value: Any) -> None:
        self.tags[key] = value

    def has_tag(self, key: str) -> bool:
        return key in self.tags


class Plugin:
    """A stateful plugin: aggregates data and emits output per time bin."""

    #: Short name used in output and the CLI.
    name: str = "plugin"

    def start_interval(self, interval_start: int) -> None:
        """Called when a new time bin begins."""

    def process_record(self, tagged: TaggedRecord) -> None:
        """Called once per record (in stream order) within the current bin."""
        raise NotImplementedError

    def end_interval(self, interval_start: int) -> Any:
        """Called when the bin ends; the return value is collected as output."""
        return None

    def finish(self) -> Any:
        """Called after the stream ends (after the last ``end_interval``)."""
        return None


class StatelessPlugin(Plugin):
    """A stateless plugin: tags records; produces no per-bin output."""

    def process_record(self, tagged: TaggedRecord) -> None:
        raise NotImplementedError

    def end_interval(self, interval_start: int) -> Any:
        return None
