"""Prefix-visibility plugin: per-origin and per-country visible prefixes.

This is the per-bin aggregation behind the Figure 10 style of analysis: how
many prefixes geolocated to a country (or originated by an AS) are visible
from the stream's vantage points.  A prefix counts as visible when at least
``min_vps`` full-feed VPs currently have a route to it, which protects the
signal from single-VP routing failures (§6.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.bgp.prefix import Prefix
from repro.core.elem import ElemType
from repro.corsaro.plugin import Plugin, TaggedRecord


@dataclass(frozen=True)
class VisibilityOutput:
    """Per-bin visibility summary."""

    interval_start: int
    visible_prefixes: int
    per_origin: Tuple[Tuple[int, int], ...]  # (origin ASN, visible prefix count)
    per_country: Tuple[Tuple[str, int], ...]  # (country, visible prefix count)

    def origin_count(self, asn: int) -> int:
        return dict(self.per_origin).get(asn, 0)

    def country_count(self, country: str) -> int:
        return dict(self.per_country).get(country, 0)


class VisibilityPlugin(Plugin):
    """Track per-prefix visibility across VPs (§5 outage analysis): how
    many vantage points currently see each prefix, aggregated by country
    when a prefix→country mapping is supplied."""

    name = "visibility"

    def __init__(
        self,
        prefix_countries: Optional[Mapping[Prefix, str]] = None,
        min_vps: int = 1,
        full_feed_vps: Optional[Iterable[Tuple[str, int]]] = None,
    ) -> None:
        self.prefix_countries = dict(prefix_countries or {})
        self.min_vps = max(1, min_vps)
        #: Restrict the VP set considered (collector, peer ASN); None = all VPs.
        self.full_feed_vps = set(full_feed_vps) if full_feed_vps is not None else None
        #: prefix -> {vp: origin ASN or None}
        self._routes: Dict[Prefix, Dict[Tuple[str, int], Optional[int]]] = {}

    def _vp_allowed(self, collector: str, peer_asn: int) -> bool:
        if self.full_feed_vps is None:
            return True
        return (collector, peer_asn) in self.full_feed_vps

    def process_record(self, tagged: TaggedRecord) -> None:
        collector = tagged.record.collector
        for elem in tagged.elems:
            if elem.prefix is None:
                continue
            if not self._vp_allowed(collector, elem.peer_asn):
                continue
            vp = (collector, elem.peer_asn)
            if elem.elem_type in (ElemType.RIB, ElemType.ANNOUNCEMENT):
                self._routes.setdefault(elem.prefix, {})[vp] = elem.origin_asn
            elif elem.elem_type == ElemType.WITHDRAWAL:
                self._routes.setdefault(elem.prefix, {})[vp] = None

    def end_interval(self, interval_start: int) -> VisibilityOutput:
        per_origin: Dict[int, int] = {}
        per_country: Dict[str, int] = {}
        visible = 0
        for prefix, per_vp in self._routes.items():
            holders = [origin for origin in per_vp.values() if origin is not None]
            if len(holders) < self.min_vps:
                continue
            visible += 1
            # Attribute the prefix to its (majority) origin.
            origin = max(set(holders), key=holders.count)
            per_origin[origin] = per_origin.get(origin, 0) + 1
            country = self.prefix_countries.get(prefix)
            if country is not None:
                per_country[country] = per_country.get(country, 0) + 1
        return VisibilityOutput(
            interval_start=interval_start,
            visible_prefixes=visible,
            per_origin=tuple(sorted(per_origin.items())),
            per_country=tuple(sorted(per_country.items())),
        )
