"""A generic per-bin statistics plugin.

Counts records and elems per collector and per type in each time bin —
roughly the behaviour of the original ``bgpcorsaro`` stats plugin, and a
useful smoke test that the pipeline and bin cutting work.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

from repro.core.record import RecordStatus
from repro.corsaro.plugin import Plugin, TaggedRecord


@dataclass
class BinStats:
    """Counters for one time bin."""

    records: int = 0
    invalid_records: int = 0
    elems: int = 0
    records_per_collector: Counter = field(default_factory=Counter)
    elems_per_type: Counter = field(default_factory=Counter)

    def as_dict(self) -> Dict[str, object]:
        return {
            "records": self.records,
            "invalid_records": self.invalid_records,
            "elems": self.elems,
            "records_per_collector": dict(self.records_per_collector),
            "elems_per_type": {str(k): v for k, v in self.elems_per_type.items()},
        }


class StatsPlugin(Plugin):
    """Per-bin stream accounting: record/elem counts by collector and
    elem type — BGPCorsaro's basic observability plugin."""

    name = "stats"

    def __init__(self) -> None:
        self._current = BinStats()

    def start_interval(self, interval_start: int) -> None:
        self._current = BinStats()

    def process_record(self, tagged: TaggedRecord) -> None:
        stats = self._current
        stats.records += 1
        if tagged.record.status != RecordStatus.VALID:
            stats.invalid_records += 1
            return
        stats.records_per_collector[tagged.record.collector] += 1
        stats.elems += len(tagged.elems)
        for elem in tagged.elems:
            stats.elems_per_type[elem.elem_type] += 1

    def end_interval(self, interval_start: int) -> BinStats:
        return self._current
