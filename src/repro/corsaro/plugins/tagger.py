"""A stateless classification/tagging plugin (§6.1).

Tags each record with the set of elem types it contains and with whether any
elem carries one of a configurable set of "interesting" communities.
Plugins later in the pipeline can consult these tags instead of re-scanning
the elems.
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.bgp.community import Community
from repro.corsaro.plugin import StatelessPlugin, TaggedRecord


class ElemTypeTagger(StatelessPlugin):
    """Tag each record with the elem types it contains and whether any
    elem carries a watched community — cheap routing for later plugins."""

    name = "elem-type-tagger"

    #: Tag keys written by this plugin.
    TYPES_TAG = "elem-types"
    COMMUNITY_TAG = "has-watched-community"

    def __init__(self, watched_communities: Iterable[Community] = ()) -> None:
        self.watched: Set[Community] = set(watched_communities)

    def process_record(self, tagged: TaggedRecord) -> None:
        types = {str(elem.elem_type) for elem in tagged.elems}
        tagged.tag(self.TYPES_TAG, types)
        if self.watched:
            flagged = any(
                elem.communities is not None and elem.communities.matches_any(self.watched)
                for elem in tagged.elems
            )
            tagged.tag(self.COMMUNITY_TAG, flagged)
