"""The ``pfxmonitor`` plugin (§6.1, Figure 6).

Monitors prefixes overlapping a given set of IP address ranges.  For each
BGPStream record it (1) selects only the RIB/Updates elems related to
prefixes overlapping the configured ranges, and (2) tracks, for each
``<prefix, VP>`` pair, the origin ASN of the route.  At the end of each time
bin it outputs the timestamp, the number of unique prefixes identified and
the number of unique origin ASNs observed across all VPs — the two
time-series plotted in Figure 6, where origin-count spikes expose hijacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.bgp.prefix import Prefix
from repro.bgp.trie import PrefixTrie
from repro.core.elem import ElemType
from repro.corsaro.plugin import Plugin, TaggedRecord


@dataclass(frozen=True)
class PrefixMonitorOutput:
    """One output row of the pfxmonitor plugin."""

    interval_start: int
    unique_prefixes: int
    unique_origin_asns: int
    origin_asns: Tuple[int, ...] = ()


class PrefixMonitorPlugin(Plugin):
    """The paper's pfxmonitor (§4.4): watch a set of IP ranges through a
    patricia trie and report per-bin prefix/origin activity inside them."""

    name = "pfxmonitor"

    def __init__(self, ranges: Iterable[Prefix]) -> None:
        self.ranges: List[Prefix] = list(ranges)
        if not self.ranges:
            raise ValueError("pfxmonitor requires at least one IP range to watch")
        #: The watched ranges indexed as a patricia trie, so the per-elem
        #: overlap test costs O(prefix length) rather than O(len(ranges)).
        self._watchlist: PrefixTrie[None] = PrefixTrie((r, None) for r in self.ranges)
        #: (prefix, peer) -> origin ASN of the current route (None = withdrawn).
        self._origin: Dict[Tuple[Prefix, Tuple[str, int]], Optional[int]] = {}

    # -- helpers ----------------------------------------------------------------

    def _watched(self, prefix: Optional[Prefix]) -> bool:
        if prefix is None:
            return False
        return self._watchlist.overlaps(prefix)

    # -- plugin API ----------------------------------------------------------------

    def process_record(self, tagged: TaggedRecord) -> None:
        for elem in tagged.elems:
            if not self._watched(elem.prefix):
                continue
            key = (elem.prefix, (elem.collector, elem.peer_asn))
            if elem.elem_type in (ElemType.RIB, ElemType.ANNOUNCEMENT):
                self._origin[key] = elem.origin_asn
            elif elem.elem_type == ElemType.WITHDRAWAL:
                self._origin[key] = None

    def end_interval(self, interval_start: int) -> PrefixMonitorOutput:
        prefixes: Set[Prefix] = set()
        origins: Set[int] = set()
        for (prefix, _peer), origin in self._origin.items():
            if origin is None:
                continue
            prefixes.add(prefix)
            origins.add(origin)
        return PrefixMonitorOutput(
            interval_start=interval_start,
            unique_prefixes=len(prefixes),
            unique_origin_asns=len(origins),
            origin_asns=tuple(sorted(origins)),
        )
