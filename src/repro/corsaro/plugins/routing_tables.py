"""The routing-tables (RT) plugin (§6.2.1–6.2.2, Figures 8 and 9).

Reconstructs, for every vantage point of the stream, the *observable
Loc-RIB* (routing table) with fine time granularity: a RIB dump is used as
the starting reference, Updates dumps drive the evolution of the table, and
subsequent RIB dumps are used for sanity checking and correction.

State is modelled per VP with the finite state machine of Figure 8
(``down``, ``down-RIB-application``, ``up``, ``up-RIB-application``) plus
the four special events the paper lists:

* **E1** — if any record of a RIB dump is corrupted, the whole dump is
  ignored (the shadow cells are discarded instead of merged).
* **E2** — RIB-dump information is applied to a cell only if the RIB
  record's timestamp is newer than the cell's last modification.
* **E3** — a corrupted Updates record stops Updates application for the
  collector's VPs until the next (complete) RIB dump.
* **E4** — session state messages force transitions: an Established message
  moves the VP up, any other state message moves it down.

Each cell of the (prefix × VP) table stores the route's reachability
attributes, the timestamp of the last modification and an A/W flag; a
*shadow* cell buffers information from an in-progress RIB dump until its
last record is seen.  At the end of each time bin the plugin emits the
cells that changed during the bin (*diff cells*), plus the counters Figure 9
compares (elems processed vs. diff cells), and periodically a full snapshot
consumers can synchronise on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

from repro.bgp.aspath import ASPath
from repro.bgp.community import CommunitySet
from repro.bgp.prefix import Prefix
from repro.bgp.trie import AddressLike, PrefixTrie
from repro.core.elem import BGPElem, ElemType
from repro.core.record import DumpPosition, RecordStatus
from repro.corsaro.plugin import Plugin, TaggedRecord

#: A vantage point is identified by (collector, peer ASN, peer address).
VPKey = Tuple[str, int, str]


class VPState(Enum):
    """The Figure 8 FSM states."""

    DOWN = "down"
    DOWN_RIB_APPLICATION = "down-rib-application"
    UP = "up"
    UP_RIB_APPLICATION = "up-rib-application"

    @property
    def table_consistent(self) -> bool:
        """True in the macro-state where the routing table is usable."""
        return self in (VPState.UP, VPState.UP_RIB_APPLICATION)


@dataclass(slots=True)
class Cell:
    """One (prefix, VP) cell of the routing-table matrix.

    Slotted: the RT consumer keeps one cell per (VP × prefix) resident for
    hours, and with the intern layer upstream the ``as_path`` /
    ``communities`` references point at shared canonical objects, so the
    matrix costs per-cell slots plus *one* copy of each distinct value.
    """

    as_path: Optional[ASPath]
    next_hop: Optional[str]
    communities: Optional[CommunitySet]
    last_modified: int
    announced: bool  # the A/W flag

    def same_route(self, other: "Cell") -> bool:
        # Communities are part of the route: a community-only change (e.g.
        # a black-holing tag appearing) must surface as a diff cell.  The
        # equality checks take the interned identity fast path.
        return (
            self.announced == other.announced
            and self.as_path == other.as_path
            and self.next_hop == other.next_hop
            and self.communities == other.communities
        )


@dataclass(slots=True)
class DiffCell:
    """One changed cell, as published to consumers at the end of a bin."""

    vp: VPKey
    prefix: Prefix
    announced: bool
    as_path: Optional[ASPath]
    next_hop: Optional[str]
    communities: Optional[CommunitySet] = None


@dataclass(slots=True)
class VPTable:
    """Per-VP state: FSM state, main cells, shadow cells."""

    state: VPState = VPState.DOWN
    cells: Dict[Prefix, Cell] = field(default_factory=dict)
    shadow: Dict[Prefix, Cell] = field(default_factory=dict)
    #: Prefixes whose main cell changed in the current bin.
    dirty: Set[Prefix] = field(default_factory=set)
    #: True when a corrupted Updates record froze updates (E3).
    updates_frozen: bool = False
    #: Announced cells, maintained incrementally by :meth:`store_cell` (the
    #: per-bin table_sizes used to rescan every cell of every VP).
    announced_count: int = 0

    def store_cell(self, prefix: Prefix, cell: Cell) -> None:
        """Write a main-table cell, keeping ``announced_count`` in step.

        All main-table writes must go through here (shadow cells are
        buffered separately and only counted when merged).
        """
        existing = self.cells.get(prefix)
        if existing is None:
            if cell.announced:
                self.announced_count += 1
        elif existing.announced != cell.announced:
            self.announced_count += 1 if cell.announced else -1
        self.cells[prefix] = cell

    def active_prefix_count(self) -> int:
        return self.announced_count


@dataclass(frozen=True, slots=True)
class RouteEntry:
    """One (VP, prefix) route returned by snapshot queries."""

    vp: VPKey
    prefix: Prefix
    cell: Cell


class SnapshotIndex:
    """Trie-indexed query interface over a (prefix × VP) snapshot.

    Wraps per-VP routing tables (as emitted in :attr:`RTBinOutput.snapshots`
    or reconstructed by :meth:`RoutingTablesPlugin.vp_table`) with one
    patricia trie per VP, giving longest-prefix-match address lookups and
    more-specific enumeration without scanning the tables.
    """

    def __init__(self, snapshots: Dict[VPKey, Dict[Prefix, Cell]]) -> None:
        self._tries: Dict[VPKey, PrefixTrie] = {
            vp: PrefixTrie(cells.items()) for vp, cells in snapshots.items()
        }

    def vps(self) -> List[VPKey]:
        return sorted(self._tries)

    def lookup(self, address: AddressLike, vp: Optional[VPKey] = None) -> List[RouteEntry]:
        """Longest-prefix-match ``address`` in each VP's table.

        Returns one :class:`RouteEntry` per VP that has a matching route
        (restricted to ``vp`` when given), i.e. "how does each vantage
        point reach this address right now".
        """
        result: List[RouteEntry] = []
        for key, trie in self._iter_tries(vp):
            match = trie.lookup(address)
            if match is not None:
                result.append(RouteEntry(vp=key, prefix=match[0], cell=match[1]))
        return result

    def covered(self, prefix: Prefix, vp: Optional[VPKey] = None) -> List[RouteEntry]:
        """Every route equal to or more specific than ``prefix``, per VP."""
        result: List[RouteEntry] = []
        for key, trie in self._iter_tries(vp):
            for covered_prefix, cell in trie.covered(prefix):
                result.append(RouteEntry(vp=key, prefix=covered_prefix, cell=cell))
        return result

    def covering(self, prefix: Prefix, vp: Optional[VPKey] = None) -> List[RouteEntry]:
        """Every route containing ``prefix``, most specific first, per VP."""
        result: List[RouteEntry] = []
        for key, trie in self._iter_tries(vp):
            for covering_prefix, cell in trie.covering(prefix):
                result.append(RouteEntry(vp=key, prefix=covering_prefix, cell=cell))
        return result

    def _iter_tries(self, vp: Optional[VPKey]):
        if vp is not None:
            trie = self._tries.get(vp)
            return [(vp, trie)] if trie is not None else []
        return sorted(self._tries.items())


@dataclass
class RTBinOutput:
    """The per-bin output of the RT plugin."""

    interval_start: int
    #: Number of BGP elems (from Updates dumps) processed in the bin.
    elems_processed: int
    #: Diff cells across all VPs.
    diffs: List[DiffCell]
    #: VPs whose table is currently consistent (usable by consumers).
    consistent_vps: Tuple[VPKey, ...]
    #: Per-VP announced-prefix counts (routing table sizes).
    table_sizes: Dict[VPKey, int]
    #: Full snapshots, present only on synchronisation bins.
    snapshots: Optional[Dict[VPKey, Dict[Prefix, Cell]]] = None

    @property
    def diff_count(self) -> int:
        return len(self.diffs)

    def index(self) -> SnapshotIndex:
        """A trie-indexed query interface over this bin's snapshots.

        Only synchronisation bins carry snapshots; other bins yield an
        empty index.
        """
        return SnapshotIndex(self.snapshots or {})


class RoutingTablesPlugin(Plugin):
    """Reconstruct per-(VP × prefix) routing tables from the stream (§6):
    RIB snapshots seed the matrix, updates mutate it, and periodic
    snapshots expose a queryable index with optional accuracy tracking."""

    name = "routing-tables"

    def __init__(
        self,
        snapshot_interval: Optional[int] = 3600,
        track_accuracy: bool = True,
    ) -> None:
        #: Seconds between full-table snapshots (None = never emit snapshots).
        self.snapshot_interval = snapshot_interval
        self.track_accuracy = track_accuracy
        self._tables: Dict[VPKey, VPTable] = {}
        self._elems_in_bin = 0
        self._last_snapshot: Optional[int] = None
        #: Per-collector set of VPs that appeared in the current RIB dump
        #: plus the corruption flag of that dump (E1).
        self._rib_in_progress: Dict[str, Set[VPKey]] = {}
        self._rib_corrupted: Dict[str, bool] = {}
        #: Accuracy accounting (§6.2.1): mismatching vs compared prefixes.
        self.compared_prefixes = 0
        self.mismatched_prefixes = 0

    # -- plugin API ------------------------------------------------------------------

    def start_interval(self, interval_start: int) -> None:
        self._elems_in_bin = 0

    def process_record(self, tagged: TaggedRecord) -> None:
        record = tagged.record

        if record.status != RecordStatus.VALID:
            self._handle_invalid(record)
            return

        if record.dump_type == "ribs":
            self._process_rib_record(tagged)
        else:
            self._process_updates_record(tagged)

    def end_interval(self, interval_start: int) -> RTBinOutput:
        diffs: List[DiffCell] = []
        table_sizes: Dict[VPKey, int] = {}
        consistent: List[VPKey] = []
        for vp, table in sorted(self._tables.items()):
            table_sizes[vp] = table.active_prefix_count()
            if table.state.table_consistent:
                consistent.append(vp)
            for prefix in sorted(table.dirty):
                cell = table.cells.get(prefix)
                if cell is None:
                    continue
                diffs.append(
                    DiffCell(
                        vp=vp,
                        prefix=prefix,
                        announced=cell.announced,
                        as_path=cell.as_path,
                        next_hop=cell.next_hop,
                        communities=cell.communities,
                    )
                )
            table.dirty = set()

        snapshots = None
        if self.snapshot_interval is not None:
            due = (
                self._last_snapshot is None
                or interval_start - self._last_snapshot >= self.snapshot_interval
            )
            if due:
                snapshots = {
                    vp: {p: c for p, c in table.cells.items() if c.announced}
                    for vp, table in self._tables.items()
                    if table.state.table_consistent
                }
                self._last_snapshot = interval_start

        output = RTBinOutput(
            interval_start=interval_start,
            elems_processed=self._elems_in_bin,
            diffs=diffs,
            consistent_vps=tuple(consistent),
            table_sizes=table_sizes,
            snapshots=snapshots,
        )
        return output

    # -- state accessors (used by consumers and tests) ----------------------------------

    def vp_state(self, vp: VPKey) -> VPState:
        return self._tables.get(vp, VPTable()).state

    def vp_table(self, vp: VPKey) -> Dict[Prefix, Cell]:
        """The reconstructed table of ``vp`` (empty while it is not consistent)."""
        table = self._tables.get(vp, VPTable())
        if not table.state.table_consistent:
            return {}
        return {prefix: cell for prefix, cell in table.cells.items() if cell.announced}

    def vps(self) -> List[VPKey]:
        return sorted(self._tables)

    def index(self, vp: Optional[VPKey] = None) -> SnapshotIndex:
        """A trie-indexed view of the current consistent routing tables.

        Covers every consistent VP (or just ``vp``), answering
        ``lookup(address)`` / ``covered(prefix)`` / ``covering(prefix)``
        against the reconstructed (prefix × VP) table.
        """
        vps = [vp] if vp is not None else self.vps()
        return SnapshotIndex({key: self.vp_table(key) for key in vps})

    @property
    def error_probability(self) -> float:
        """Mismatching prefixes over compared prefixes (the §6.2.1 metric)."""
        if self.compared_prefixes == 0:
            return 0.0
        return self.mismatched_prefixes / self.compared_prefixes

    # -- RIB dump handling -------------------------------------------------------------

    def _process_rib_record(self, tagged: TaggedRecord) -> None:
        record = tagged.record
        collector = record.collector

        if record.dump_position == DumpPosition.START:
            self._rib_in_progress[collector] = set()
            self._rib_corrupted[collector] = False

        if self._rib_corrupted.get(collector):
            pass  # E1: dump already known corrupted; keep consuming records.
        else:
            for elem in tagged.elems:
                if elem.elem_type != ElemType.RIB:
                    continue
                vp = (collector, elem.peer_asn, elem.peer_address)
                table = self._table(vp)
                self._enter_rib_application(table)
                self._rib_in_progress.setdefault(collector, set()).add(vp)
                cell = Cell(
                    as_path=elem.as_path,
                    next_hop=elem.next_hop,
                    communities=elem.communities,
                    last_modified=elem.time,
                    announced=True,
                )
                # E2: only apply RIB information newer than what updates
                # already wrote into the main cell.
                main = table.cells.get(elem.prefix)
                if main is not None and main.last_modified > elem.time:
                    continue
                table.shadow[elem.prefix] = cell

        if record.dump_position == DumpPosition.END:
            self._finish_rib_dump(collector)

    def _finish_rib_dump(self, collector: str) -> None:
        vps = self._rib_in_progress.pop(collector, set())
        corrupted = self._rib_corrupted.pop(collector, False)
        for vp in vps:
            table = self._table(vp)
            if corrupted:
                # E1: ignore the whole dump.
                table.shadow = {}
                self._exit_rib_application(table)
                continue
            if self.track_accuracy and table.state == VPState.UP_RIB_APPLICATION:
                self._compare_accuracy(table)
            self._merge_shadow(table)
            table.updates_frozen = False
            table.state = VPState.UP

    def _merge_shadow(self, table: VPTable) -> None:
        for prefix, shadow_cell in table.shadow.items():
            main = table.cells.get(prefix)
            # E2 (again, at merge time): never overwrite newer information.
            if main is not None and main.last_modified > shadow_cell.last_modified:
                continue
            if main is None or not main.same_route(shadow_cell):
                table.dirty.add(prefix)
            table.store_cell(prefix, shadow_cell)
        # Prefixes absent from the RIB dump but marked announced are stale
        # (e.g. a missed withdrawal): mark them withdrawn.  The newest shadow
        # timestamp is loop-invariant — hoist it (the merge used to rescan
        # every shadow cell per main cell, O(|cells| x |shadow|)).
        newest_shadow = max(
            (c.last_modified for c in table.shadow.values()), default=None
        )
        for prefix, cell in list(table.cells.items()):
            if prefix not in table.shadow and cell.announced:
                if newest_shadow is None or cell.last_modified <= newest_shadow:
                    table.store_cell(
                        prefix,
                        Cell(
                            as_path=None,
                            next_hop=None,
                            communities=None,
                            last_modified=cell.last_modified,
                            announced=False,
                        ),
                    )
                    table.dirty.add(prefix)
        table.shadow = {}

    def _compare_accuracy(self, table: VPTable) -> None:
        """Periodically compare main vs shadow cells (§6.2.1 error probability)."""
        announced_main = {p for p, c in table.cells.items() if c.announced}
        announced_shadow = set(table.shadow)
        universe = announced_main | announced_shadow
        self.compared_prefixes += len(universe)
        for prefix in universe:
            main = table.cells.get(prefix)
            shadow = table.shadow.get(prefix)
            if main is None or shadow is None or not main.announced:
                self.mismatched_prefixes += 1
            elif main.as_path != shadow.as_path:
                self.mismatched_prefixes += 1

    def _enter_rib_application(self, table: VPTable) -> None:
        if table.state == VPState.DOWN:
            table.state = VPState.DOWN_RIB_APPLICATION
        elif table.state == VPState.UP:
            table.state = VPState.UP_RIB_APPLICATION

    def _exit_rib_application(self, table: VPTable) -> None:
        if table.state == VPState.DOWN_RIB_APPLICATION:
            table.state = VPState.DOWN
        elif table.state == VPState.UP_RIB_APPLICATION:
            table.state = VPState.UP

    # -- Updates handling -----------------------------------------------------------------

    def _process_updates_record(self, tagged: TaggedRecord) -> None:
        record = tagged.record
        collector = record.collector
        for elem in tagged.elems:
            vp = (collector, elem.peer_asn, elem.peer_address)
            table = self._table(vp)
            if elem.elem_type == ElemType.STATE:
                self._apply_state_message(table, elem)
                continue
            self._elems_in_bin += 1
            if table.updates_frozen:
                continue  # E3: waiting for the next RIB dump.
            if elem.elem_type == ElemType.ANNOUNCEMENT:
                self._apply_change(table, elem, announced=True)
            elif elem.elem_type == ElemType.WITHDRAWAL:
                self._apply_change(table, elem, announced=False)

    def _apply_change(self, table: VPTable, elem: BGPElem, announced: bool) -> None:
        cell = Cell(
            as_path=elem.as_path if announced else None,
            next_hop=elem.next_hop if announced else None,
            communities=elem.communities if announced else None,
            last_modified=elem.time,
            announced=announced,
        )
        existing = table.cells.get(elem.prefix)
        if existing is None or not existing.same_route(cell):
            table.dirty.add(elem.prefix)
        table.store_cell(elem.prefix, cell)

    def _apply_state_message(self, table: VPTable, elem: BGPElem) -> None:
        # E4: force transitions based on the session FSM.  A down transition
        # marks the table unavailable (consumers must ignore it) but does not
        # rewrite the cells: the VP will refresh them when it comes back up.
        if elem.new_state is not None and elem.new_state.is_established:
            if table.state in (VPState.DOWN, VPState.DOWN_RIB_APPLICATION):
                table.state = VPState.UP
        else:
            table.state = VPState.DOWN

    # -- invalid records -----------------------------------------------------------------

    def _handle_invalid(self, record) -> None:
        collector = record.collector
        if record.dump_type == "ribs":
            # E1: any corrupted record invalidates the in-progress RIB dump.
            self._rib_corrupted[collector] = True
        else:
            # E3: freeze updates for every VP of this collector until the
            # next complete RIB dump.
            for vp, table in self._tables.items():
                if vp[0] == collector:
                    table.updates_frozen = True
                    table.state = VPState.DOWN

    # -- internals ---------------------------------------------------------------------

    def _table(self, vp: VPKey) -> VPTable:
        if vp not in self._tables:
            self._tables[vp] = VPTable()
        return self._tables[vp]
