"""Multi-Origin-AS (MOAS) detection plugin (§5, Figure 5b; §6.2).

Tracks, for every prefix, the set of origin ASes observed announcing it
(across all VPs of the stream).  A prefix announced by more than one origin
at the same time is a MOAS prefix; the set of origins is a *MOAS set*.
Study and detection of MOAS prefixes underpins BGP-hijacking detection: most
common hijacks manifest as two or more ASes announcing exactly the same
prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.bgp.prefix import Prefix
from repro.core.elem import ElemType
from repro.corsaro.plugin import Plugin, TaggedRecord


@dataclass(frozen=True)
class MOASOutput:
    """Per-bin MOAS summary."""

    interval_start: int
    moas_prefix_count: int
    moas_sets: FrozenSet[FrozenSet[int]]
    #: prefix -> origin set, for MOAS prefixes only.
    moas_prefixes: Tuple[Tuple[Prefix, FrozenSet[int]], ...]

    @property
    def moas_set_count(self) -> int:
        return len(self.moas_sets)


class MOASPlugin(Plugin):
    """Detect Multi-Origin AS prefixes: a per-bin report of every prefix
    announced with more than one origin AS across the tracked VPs."""

    name = "moas"

    def __init__(self, per_collector: bool = False) -> None:
        #: Track origins per (collector?, prefix, VP): the VP dimension lets a
        #: withdrawal from one VP not erase what other VPs still announce.
        self.per_collector = per_collector
        self._origins: Dict[Tuple[str, Prefix], Dict[Tuple[str, int], Optional[int]]] = {}

    def _scope(self, collector: str) -> str:
        return collector if self.per_collector else "*"

    def process_record(self, tagged: TaggedRecord) -> None:
        collector = tagged.record.collector
        for elem in tagged.elems:
            if elem.prefix is None:
                continue
            scope = self._scope(collector)
            key = (scope, elem.prefix)
            vp = (collector, elem.peer_asn)
            if elem.elem_type in (ElemType.RIB, ElemType.ANNOUNCEMENT):
                self._origins.setdefault(key, {})[vp] = elem.origin_asn
            elif elem.elem_type == ElemType.WITHDRAWAL:
                self._origins.setdefault(key, {})[vp] = None

    def end_interval(self, interval_start: int) -> MOASOutput:
        return self.summary(interval_start)

    def summary(self, interval_start: int, scope: str = "*") -> MOASOutput:
        """MOAS summary for one scope ('*' = all collectors together)."""
        moas_prefixes = []
        moas_sets: Set[FrozenSet[int]] = set()
        for (key_scope, prefix), per_vp in self._origins.items():
            if key_scope != scope:
                continue
            origins = frozenset(o for o in per_vp.values() if o is not None)
            if len(origins) > 1:
                moas_prefixes.append((prefix, origins))
                moas_sets.add(origins)
        return MOASOutput(
            interval_start=interval_start,
            moas_prefix_count=len(moas_prefixes),
            moas_sets=frozenset(moas_sets),
            moas_prefixes=tuple(sorted(moas_prefixes, key=lambda item: item[0])),
        )

    def collector_scopes(self) -> Set[str]:
        return {scope for scope, _ in self._origins}
