"""BGPCorsaro plugins.

* :class:`~repro.corsaro.plugins.stats.StatsPlugin` — per-bin record/elem
  counters (per collector and per type).
* :class:`~repro.corsaro.plugins.tagger.ElemTypeTagger` — a stateless
  tagging plugin (classification example of §6.1).
* :class:`~repro.corsaro.plugins.pfxmonitor.PrefixMonitorPlugin` — the
  ``pfxmonitor`` plugin used for the GARR hijack case study (Figure 6).
* :class:`~repro.corsaro.plugins.routing_tables.RoutingTablesPlugin` — the
  RT plugin reconstructing per-VP routing tables (Figures 8 and 9).
* :class:`~repro.corsaro.plugins.moas.MOASPlugin` — multi-origin-AS
  detection (Figure 5b / hijack detection).
* :class:`~repro.corsaro.plugins.visibility.VisibilityPlugin` — per-origin,
  per-country prefix visibility counts (Figure 10 input).
* :class:`~repro.corsaro.plugins.communities.CommunityDiversityPlugin` —
  distinct communities per VP (Figure 5d input).
"""

from repro.corsaro.plugins.stats import StatsPlugin
from repro.corsaro.plugins.tagger import ElemTypeTagger
from repro.corsaro.plugins.pfxmonitor import PrefixMonitorPlugin
from repro.corsaro.plugins.routing_tables import (
    RouteEntry,
    RoutingTablesPlugin,
    SnapshotIndex,
    VPState,
)
from repro.corsaro.plugins.moas import MOASPlugin
from repro.corsaro.plugins.visibility import VisibilityPlugin
from repro.corsaro.plugins.communities import CommunityDiversityPlugin

__all__ = [
    "StatsPlugin",
    "ElemTypeTagger",
    "PrefixMonitorPlugin",
    "RouteEntry",
    "RoutingTablesPlugin",
    "SnapshotIndex",
    "VPState",
    "MOASPlugin",
    "VisibilityPlugin",
    "CommunityDiversityPlugin",
]
