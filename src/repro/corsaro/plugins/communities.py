"""Community-diversity plugin (Figure 5d input).

Counts, per vantage point, the distinct BGP communities (and the distinct AS
identifiers inferred from the two most-significant bytes of each community)
observed in the stream.  The paper uses this to pick which collectors
observe the most heterogeneous set of communities — many BGP speakers strip
communities before propagating them, so the choice of VP matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set, Tuple

from repro.bgp.community import Community
from repro.corsaro.plugin import Plugin, TaggedRecord


@dataclass(frozen=True)
class CommunityDiversityOutput:
    """Per-bin community-diversity summary."""

    interval_start: int
    total_distinct_communities: int
    #: (collector, peer ASN) -> number of distinct community AS identifiers.
    per_vp_asn_identifiers: Tuple[Tuple[Tuple[str, int], int], ...]
    #: collector -> number of distinct community AS identifiers.
    per_collector_asn_identifiers: Tuple[Tuple[str, int], ...]
    #: Fraction of VPs that observed at least one community.
    vps_observing_fraction: float


class CommunityDiversityPlugin(Plugin):
    """Per-bin community diversity: distinct communities, the AS
    identifiers they carry, and the fraction of VPs observing any."""

    name = "community-diversity"

    def __init__(self) -> None:
        self._per_vp: Dict[Tuple[str, int], Set[Community]] = {}
        self._all: Set[Community] = set()

    def process_record(self, tagged: TaggedRecord) -> None:
        collector = tagged.record.collector
        for elem in tagged.elems:
            vp = (collector, elem.peer_asn)
            self._per_vp.setdefault(vp, set())
            if elem.communities is None:
                continue
            for community in elem.communities:
                self._per_vp[vp].add(community)
                self._all.add(community)

    def end_interval(self, interval_start: int) -> CommunityDiversityOutput:
        per_vp = {
            vp: len({c.asn for c in communities})
            for vp, communities in self._per_vp.items()
        }
        per_collector: Dict[str, Set[int]] = {}
        for (collector, _asn), communities in self._per_vp.items():
            per_collector.setdefault(collector, set()).update(c.asn for c in communities)
        observing = sum(1 for count in per_vp.values() if count > 0)
        fraction = observing / len(per_vp) if per_vp else 0.0
        return CommunityDiversityOutput(
            interval_start=interval_start,
            total_distinct_communities=len(self._all),
            per_vp_asn_identifiers=tuple(sorted(per_vp.items())),
            per_collector_asn_identifiers=tuple(
                sorted((c, len(asns)) for c, asns in per_collector.items())
            ),
            vps_observing_fraction=fraction,
        )
