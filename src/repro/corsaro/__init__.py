"""BGPCorsaro: continuous extraction of derived data from a BGP stream (§6.1).

BGPCorsaro pipes a sorted BGPStream through a pipeline of plugins and cuts
the output into regular time bins.  Plugins are either *stateless*
(classifying / tagging records so later plugins can use the tags) or
*stateful* (aggregating data that is emitted at the end of each bin).

* :class:`~repro.corsaro.pipeline.BGPCorsaro` — the pipeline driver.
* :class:`~repro.corsaro.plugin.Plugin` /
  :class:`~repro.corsaro.plugin.StatelessPlugin` — plugin base classes.
* :mod:`repro.corsaro.plugins` — the plugins used in the paper's case
  studies, most importantly ``pfxmonitor`` (Figure 6) and the
  ``routing-tables`` (RT) plugin of the global-monitoring architecture
  (Figures 8 and 9).
"""

from repro.corsaro.pipeline import BGPCorsaro, BinOutput
from repro.corsaro.plugin import Plugin, StatelessPlugin, TaggedRecord

__all__ = [
    "BGPCorsaro",
    "BinOutput",
    "Plugin",
    "StatelessPlugin",
    "TaggedRecord",
]
