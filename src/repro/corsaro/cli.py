"""``bgpcorsaro``: run a plugin pipeline over a stream from the command line.

Mirrors the original tool: pick a data source, a time interval, a bin size
and a list of plugins; the per-bin outputs are printed as pipe-separated
lines (one line per plugin per bin).
"""

from __future__ import annotations

import argparse
import sys
from typing import IO, List, Optional

from repro.bgp.prefix import Prefix
from repro.broker.broker import Broker
from repro.collectors.archive import Archive
from repro.core.interfaces import BrokerDataInterface
from repro.core.stream import BGPStream
from repro.corsaro.pipeline import BGPCorsaro
from repro.corsaro.plugin import Plugin
from repro.corsaro.plugins import (
    CommunityDiversityPlugin,
    MOASPlugin,
    PrefixMonitorPlugin,
    RoutingTablesPlugin,
    StatsPlugin,
    VisibilityPlugin,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bgpcorsaro",
        description="Continuously extract derived data from a BGP stream in regular time bins.",
    )
    parser.add_argument("--archive", required=True, help="path to a simulated archive directory")
    parser.add_argument("-w", "--window", required=True, help="time interval START,END")
    parser.add_argument("-b", "--bin-size", type=int, default=300, help="bin size in seconds")
    parser.add_argument("-p", "--project", action="append", default=[])
    parser.add_argument("-c", "--collector", action="append", default=[])
    parser.add_argument("-t", "--type", action="append", default=[], choices=["ribs", "updates"])
    parser.add_argument(
        "--plugin",
        action="append",
        default=[],
        help=(
            "plugin to run: stats, moas, visibility, community-diversity, "
            "routing-tables, or pfxmonitor:<prefix>[+<prefix>...]"
        ),
    )
    return parser


def build_plugins(specs: List[str]) -> List[Plugin]:
    plugins: List[Plugin] = []
    for spec in specs or ["stats"]:
        name, _, argument = spec.partition(":")
        if name == "stats":
            plugins.append(StatsPlugin())
        elif name == "moas":
            plugins.append(MOASPlugin())
        elif name == "visibility":
            plugins.append(VisibilityPlugin())
        elif name == "community-diversity":
            plugins.append(CommunityDiversityPlugin())
        elif name == "routing-tables":
            plugins.append(RoutingTablesPlugin())
        elif name == "pfxmonitor":
            if not argument:
                raise SystemExit("pfxmonitor requires prefixes, e.g. pfxmonitor:10.0.0.0/8")
            ranges = [Prefix.from_string(p) for p in argument.split("+")]
            plugins.append(PrefixMonitorPlugin(ranges))
        else:
            raise SystemExit(f"unknown plugin {name!r}")
    return plugins


def run(args: argparse.Namespace, out: IO[str]) -> int:
    start_text, _, end_text = args.window.partition(",")
    start = int(start_text)
    end: Optional[int] = int(end_text) if end_text else None

    broker = Broker(archives=[Archive(args.archive)])
    stream = BGPStream(data_interface=BrokerDataInterface(broker, max_empty_polls=1))
    stream.add_interval_filter(start, end)
    for project in args.project:
        stream.add_filter("project", project)
    for collector in args.collector:
        stream.add_filter("collector", collector)
    for dump_type in args.type:
        stream.add_filter("record-type", dump_type)

    plugins = build_plugins(args.plugin)
    corsaro = BGPCorsaro(stream, plugins, bin_size=args.bin_size)
    for output in corsaro.process():
        print(f"{output.plugin}|{output.interval_start}|{_render(output.value)}", file=out)
    return 0


def _render(value: object) -> str:
    if hasattr(value, "unique_prefixes"):
        return f"{value.unique_prefixes}|{value.unique_origin_asns}"
    if hasattr(value, "moas_prefix_count"):
        return f"{value.moas_prefix_count}|{value.moas_set_count}"
    if hasattr(value, "visible_prefixes"):
        return str(value.visible_prefixes)
    if hasattr(value, "elems_processed"):
        return f"{value.elems_processed}|{value.diff_count}"
    if hasattr(value, "total_distinct_communities"):
        return str(value.total_distinct_communities)
    if hasattr(value, "as_dict"):
        stats = value.as_dict()
        return f"{stats['records']}|{stats['elems']}"
    return str(value)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return run(args, sys.stdout)


if __name__ == "__main__":
    sys.exit(main())
