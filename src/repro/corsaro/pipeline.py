"""The BGPCorsaro pipeline driver.

Consumes a (time-sorted) BGPStream record by record, pushes every record
through the plugin pipeline, and closes the current time bin whenever a
valid record's timestamp crosses the bin boundary.  Because libBGPStream
already provides a sorted stream, recognising the end of a bin is trivial
even when the stream mixes many collectors (§6.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.core.record import RecordStatus
from repro.core.stream import BGPStream
from repro.corsaro.plugin import Plugin, StatelessPlugin, TaggedRecord
from repro.utils.timeutil import bin_start


@dataclass
class BinOutput:
    """The output of one plugin for one time bin."""

    plugin: str
    interval_start: int
    value: Any


class BGPCorsaro:
    """Run a plugin pipeline over a stream with a fixed bin size."""

    def __init__(
        self,
        stream: BGPStream,
        plugins: Sequence[Plugin],
        bin_size: int = 300,
        batch_size: Optional[int] = None,
    ) -> None:
        """``batch_size`` switches the driver to consuming the stream through
        ``BGPStream.records_batched()`` — the plugin pipeline then rides the
        batched (and, when the stream is configured with a
        :class:`~repro.core.parallel.ParallelConfig`, parallel) engine while
        seeing the exact same record sequence and bin boundaries."""
        if bin_size <= 0:
            raise ValueError("bin_size must be positive")
        if batch_size is not None and batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.stream = stream
        self.plugins = list(plugins)
        self.bin_size = bin_size
        self.batch_size = batch_size
        self.outputs: List[BinOutput] = []
        self.records_processed = 0
        self.invalid_records = 0
        self._current_bin: Optional[int] = None

    # -- runtime -----------------------------------------------------------------

    def run(self) -> List[BinOutput]:
        """Process the whole stream; returns every per-bin output collected."""
        for _ in self.process():
            pass
        return self.outputs

    def _record_source(self) -> Iterator:
        """Records either one at a time or flattened from engine batches."""
        if self.batch_size is not None:
            for batch in self.stream.records_batched(self.batch_size):
                yield from batch
        else:
            yield from self.stream.records()

    def process(self) -> Iterator[BinOutput]:
        """Incremental driver: yields outputs as bins close (live friendly)."""
        for record in self._record_source():
            self.records_processed += 1
            if record.status != RecordStatus.VALID:
                self.invalid_records += 1
                # Invalid records are still forwarded: plugins such as RT
                # need to react to corrupted dumps (E1/E3).
                tagged = TaggedRecord(record=record, elems=[])
            else:
                tagged = TaggedRecord(record=record, elems=list(record.elems()))

            record_bin = bin_start(record.time, self.bin_size)
            if self._current_bin is None:
                self._start_bin(record_bin)
            elif record_bin > self._current_bin:
                yield from self._close_bins_up_to(record_bin)

            for plugin in self.plugins:
                plugin.process_record(tagged)

        if self._current_bin is not None:
            yield from self._emit_bin(self._current_bin)
            self._current_bin = None
        for plugin in self.plugins:
            final = plugin.finish()
            if final is not None:
                output = BinOutput(plugin.name, -1, final)
                self.outputs.append(output)
                yield output

    # -- helpers ------------------------------------------------------------------

    def _start_bin(self, interval_start: int) -> None:
        self._current_bin = interval_start
        for plugin in self.plugins:
            plugin.start_interval(interval_start)

    def _close_bins_up_to(self, new_bin: int) -> Iterator[BinOutput]:
        """Close the current bin and any empty bins before ``new_bin``."""
        assert self._current_bin is not None
        while self._current_bin < new_bin:
            yield from self._emit_bin(self._current_bin)
            self._start_bin(self._current_bin + self.bin_size)

    def _emit_bin(self, interval_start: int) -> Iterator[BinOutput]:
        for plugin in self.plugins:
            if isinstance(plugin, StatelessPlugin):
                continue
            value = plugin.end_interval(interval_start)
            if value is not None:
                output = BinOutput(plugin.name, interval_start, value)
                self.outputs.append(output)
                yield output

    # -- output helpers -----------------------------------------------------------

    def outputs_for(self, plugin_name: str) -> List[BinOutput]:
        return [o for o in self.outputs if o.plugin == plugin_name]

    def series_for(self, plugin_name: str) -> Dict[int, Any]:
        """Outputs of one plugin keyed by bin start (drops the finish() entry)."""
        return {
            o.interval_start: o.value
            for o in self.outputs
            if o.plugin == plugin_name and o.interval_start >= 0
        }
