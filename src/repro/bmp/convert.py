"""Converting live BMP messages into BGPStream records (paper §6).

The live path must hand the downstream pipeline (filters, interning,
BGPCorsaro plugins) the *exact* record/elem model the historical MRT path
produces, so a converted Route Monitoring message becomes an ordinary
``updates`` record wrapping a BGP4MP message — the same UPDATE sequence
delivered over BMP or replayed from an MRT dump file yields identical elem
streams.

Session-state reconstruction follows §6 of the paper:

* **Peer Up** resets the per-peer routing state (the router re-announces its
  Adj-RIB-In as Route Monitoring messages right after — the RIB-in
  snapshot) and surfaces as a state-change elem to ESTABLISHED;
* **Peer Down** synthesises explicit withdrawals for every prefix the peer
  had announced (consumers like the routing-tables plugin must not keep
  routes from a dead session) followed by a state-change elem to IDLE;
* a **Termination** message tears down every peer of that router the same
  way.

Corrupt BMP messages convert into not-valid records, so live corruption is
signalled to the user exactly like a corrupted dump file read.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.bgp.fsm import SessionState
from repro.bgp.message import BGPUpdate
from repro.bgp.prefix import Prefix
from repro.bmp.constants import BMPMessageType
from repro.bmp.messages import (
    BMPMessage,
    BMPPeerHeader,
    PeerDownNotification,
    PeerUpNotification,
    RouteMonitoringMessage,
    TerminationMessage,
)
from repro.core.record import BGPStreamRecord, RecordStatus
from repro.mrt.records import BGP4MPMessage, BGP4MPStateChange, MRTRecord

#: The project annotation live records carry (the paper's data-provider slot).
LIVE_PROJECT = "bmp"

#: A peer is identified within a router by address, ASN and distinguisher.
PeerKey = Tuple[str, str, int, int]


class BMPRecordConverter:
    """Stateful converter from a router-keyed BMP feed to BGPStream records.

    ``track_state=True`` (the default) maintains the per-peer announced
    prefix set needed to synthesise withdrawals on Peer Down; switch it off
    for stateless tailing (Peer Down then yields only the state-change
    record).
    """

    def __init__(self, project: str = LIVE_PROJECT, track_state: bool = True) -> None:
        self.project = project
        self.track_state = track_state
        #: (router, address, asn, distinguisher) -> prefixes currently announced.
        self._announced: Dict[PeerKey, Set[Prefix]] = {}
        #: router -> timestamp of the last message seen (fallback for corrupt ones).
        self._last_time: Dict[str, int] = {}
        self.messages_converted = 0
        self.corrupt_messages = 0
        self.withdrawals_synthesised = 0

    # -- public API --------------------------------------------------------

    def convert(self, router: str, message: BMPMessage) -> List[BGPStreamRecord]:
        """Convert one BMP message into zero or more stream records.

        Initiation and Statistics Report messages carry no routing
        information and produce no records (they still advance the
        router's last-seen time).
        """
        if not message.is_valid:
            self.corrupt_messages += 1
            return [self._corrupt_record(router)]
        self.messages_converted += 1
        body = message.body
        if isinstance(body, RouteMonitoringMessage):
            return self._route_monitoring(router, body)
        if isinstance(body, PeerUpNotification):
            return self._peer_up(router, body)
        if isinstance(body, PeerDownNotification):
            return self._peer_down(router, body)
        if isinstance(body, TerminationMessage):
            return self._termination(router)
        peer = message.peer
        if peer is not None:
            self._touch(router, peer)
        return []

    def announced_prefixes(self, router: str, peer: BMPPeerHeader) -> Set[Prefix]:
        """The currently tracked Adj-RIB-In of one peer (a copy)."""
        return set(self._announced.get(self._key(router, peer), ()))

    # -- per-type conversion -----------------------------------------------

    def _route_monitoring(
        self, router: str, body: RouteMonitoringMessage
    ) -> List[BGPStreamRecord]:
        peer = body.peer
        timestamp = self._touch(router, peer)
        update = body.update
        if self.track_state:
            state = self._announced.setdefault(self._key(router, peer), set())
            state.difference_update(update.all_withdrawn)
            state.update(update.all_announced)
        mrt = MRTRecord.bgp4mp_message(timestamp, self._bgp4mp(peer, update))
        return [self._record(router, mrt, timestamp)]

    def _peer_up(self, router: str, body: PeerUpNotification) -> List[BGPStreamRecord]:
        peer = body.peer
        timestamp = self._touch(router, peer)
        if self.track_state:
            # State reconstruction restarts here: the RIB-in snapshot that
            # follows re-announces everything the session still carries.
            self._announced[self._key(router, peer)] = set()
        mrt = MRTRecord.bgp4mp_state_change(
            timestamp,
            self._state_change(peer, SessionState.IDLE, SessionState.ESTABLISHED),
        )
        return [self._record(router, mrt, timestamp)]

    def _peer_down(self, router: str, body: PeerDownNotification) -> List[BGPStreamRecord]:
        peer = body.peer
        timestamp = self._touch(router, peer)
        records = self._withdraw_all(router, peer, timestamp)
        mrt = MRTRecord.bgp4mp_state_change(
            timestamp,
            self._state_change(peer, SessionState.ESTABLISHED, SessionState.IDLE),
        )
        records.append(self._record(router, mrt, timestamp))
        return records

    def _termination(self, router: str) -> List[BGPStreamRecord]:
        """The router's feed closed: every monitored session is gone."""
        timestamp = self._last_time.get(router, 0)
        records: List[BGPStreamRecord] = []
        for key in [k for k in self._announced if k[0] == router]:
            _, address, asn, distinguisher = key
            peer = BMPPeerHeader(
                address=address,
                asn=asn,
                distinguisher=distinguisher,
                timestamp_sec=timestamp,
            )
            records.extend(self._withdraw_all(router, peer, timestamp))
            records.append(
                self._record(
                    router,
                    MRTRecord.bgp4mp_state_change(
                        timestamp,
                        self._state_change(peer, SessionState.ESTABLISHED, SessionState.IDLE),
                    ),
                    timestamp,
                )
            )
        return records

    # -- helpers -----------------------------------------------------------

    def _withdraw_all(
        self, router: str, peer: BMPPeerHeader, timestamp: int
    ) -> List[BGPStreamRecord]:
        """Synthesise one updates record withdrawing a peer's tracked RIB."""
        state = self._announced.pop(self._key(router, peer), None)
        if not state:
            return []
        update = BGPUpdate()
        for prefix in sorted(state, key=str):
            if prefix.version == 6:
                update.attributes.mp_unreach_nlri.append(prefix)
            else:
                update.withdrawn.append(prefix)
        self.withdrawals_synthesised += len(state)
        mrt = MRTRecord.bgp4mp_message(timestamp, self._bgp4mp(peer, update))
        return [self._record(router, mrt, timestamp)]

    def _bgp4mp(self, peer: BMPPeerHeader, update: BGPUpdate) -> BGP4MPMessage:
        return BGP4MPMessage(
            peer_asn=peer.asn,
            local_asn=0,
            peer_address=peer.address,
            local_address="::" if peer.version == 6 else "0.0.0.0",
            update=update,
        )

    def _state_change(
        self, peer: BMPPeerHeader, old: SessionState, new: SessionState
    ) -> BGP4MPStateChange:
        return BGP4MPStateChange(
            peer_asn=peer.asn,
            local_asn=0,
            peer_address=peer.address,
            local_address="::" if peer.version == 6 else "0.0.0.0",
            old_state=old,
            new_state=new,
        )

    def _record(
        self, router: str, mrt: MRTRecord, timestamp: int
    ) -> BGPStreamRecord:
        return BGPStreamRecord(
            project=self.project,
            collector=router,
            dump_type="updates",
            dump_time=timestamp,
            mrt=mrt,
            router=router,
        )

    def _corrupt_record(self, router: str) -> BGPStreamRecord:
        return BGPStreamRecord(
            project=self.project,
            collector=router,
            dump_type="updates",
            dump_time=self._last_time.get(router, 0),
            status=RecordStatus.CORRUPTED_RECORD,
            router=router,
        )

    def _touch(self, router: str, peer: BMPPeerHeader) -> int:
        timestamp = peer.timestamp_sec
        if timestamp:
            self._last_time[router] = timestamp
        else:
            timestamp = self._last_time.get(router, 0)
        return timestamp

    def _key(self, router: str, peer: BMPPeerHeader) -> PeerKey:
        return (router, peer.address, peer.asn, peer.distinguisher)
