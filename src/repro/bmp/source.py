"""The OpenBMP-style Kafka delivery of a BMP feed.

OpenBMP collectors publish raw BMP messages onto a Kafka topic, one frame
(or a small back-to-back batch of frames) per Kafka message, *keyed by the
monitored router* so all messages of one router land in one partition and
stay ordered.  This module reproduces that arrangement on top of
:mod:`repro.kafka`:

* :class:`BMPFeedProducer` — frames and publishes BMP messages;
* :class:`BMPKafkaDataSource` — the consuming side the live data interface
  polls: it decodes every frame back into a :class:`BMPMessage` (corrupt
  frames signalled, never raised) and hands back ``(router, message)``
  pairs in log order.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import time

from repro import _metrics
from repro.bmp.codec import scan_buffer
from repro.bmp.messages import BMPMessage
from repro.kafka.broker import Message, MessageBroker, round_robin_take
from repro.kafka.client import Consumer, Producer

#: The topic OpenBMP publishes raw BMP frames on.
DEFAULT_BMP_TOPIC = "openbmp.bmp_raw"

#: Consumer-group name the live stream engine uses by default.
DEFAULT_CONSUMER_GROUP = "bgpstream-live"

#: Telemetry (see docs/OBSERVABILITY.md).  Gauges are *sampled* at the end
#: of each instrumented poll — scrapes between polls see the last sample.
_poll_latency = _metrics.histogram(
    "repro_kafka_poll_latency_seconds",
    "Wall-clock latency of one BMP-feed Kafka poll (decode included).",
)
_frames = _metrics.counter(
    "repro_kafka_frames_total",
    "BMP frames scanned off the Kafka feed, by decode outcome.",
    labelnames=("status",),
)
_partition_lag = _metrics.gauge(
    "repro_kafka_partition_lag",
    "Messages published but not yet committed by this consumer group, "
    "per partition (sampled at the end of each poll).",
    labelnames=("topic", "partition"),
)
_deferred_depth = _metrics.gauge(
    "repro_kafka_deferred_heads",
    "Partition heads currently held back past the window boundary "
    "(sampled at the end of each poll).",
)


class BMPFeedProducer:
    """Publish BMP messages of one (or many) routers onto a broker topic."""

    def __init__(
        self,
        broker: MessageBroker,
        topic: str = DEFAULT_BMP_TOPIC,
        router: Optional[str] = None,
        num_partitions: Optional[int] = None,
    ) -> None:
        broker.create_topic(topic, num_partitions=num_partitions)
        self.topic = topic
        self.router = router
        self._producer = Producer(broker, default_topic=topic)

    @property
    def messages_published(self) -> int:
        return self._producer.messages_sent

    def publish(
        self,
        message: Union[BMPMessage, bytes],
        router: Optional[str] = None,
        timestamp: float = 0.0,
    ) -> Message:
        """Publish one BMP message (or pre-framed wire bytes).

        The Kafka message value is the raw frame; the key is the router
        name, which is what keeps a router's messages ordered.
        """
        key = router or self.router
        if key is None:
            raise ValueError("no router given and no default router configured")
        frame = message.encode() if isinstance(message, BMPMessage) else bytes(message)
        if not timestamp and isinstance(message, BMPMessage):
            peer = message.peer
            if peer is not None:
                timestamp = peer.timestamp
        return self._producer.send(frame, key=key, timestamp=timestamp)

    def publish_all(
        self,
        messages: Iterable[Union[BMPMessage, bytes]],
        router: Optional[str] = None,
    ) -> int:
        count = 0
        for message in messages:
            self.publish(message, router=router)
            count += 1
        return count


class BMPKafkaDataSource:
    """The consuming side of the BMP-over-Kafka feed.

    Each poll drains up to ``max_messages`` Kafka messages past the group's
    committed offsets (round-robin across topics), decodes the frames each
    value carries and returns ``(router, BMPMessage)`` pairs.  A value may
    hold several back-to-back frames (collectors batch small messages); a
    frame that does not decode is returned as a corrupt message so the
    stream layer can signal it, exactly like a corrupted dump-file read.

    Frames are scanned zero-copy out of each Kafka value and, by default,
    Route Monitoring attribute blocks decode lazily (the value buffer is
    immutable, so deferred views are safe).  ``eager=True`` forces full
    decode at poll time; ``eager=None`` follows the process-wide
    lazy-decode switch.
    """

    def __init__(
        self,
        broker: MessageBroker,
        topics: Optional[Sequence[str]] = None,
        group: str = DEFAULT_CONSUMER_GROUP,
        eager: Optional[bool] = None,
    ) -> None:
        self.eager = eager
        self.topics = list(topics) if topics else [DEFAULT_BMP_TOPIC]
        for topic in self.topics:
            broker.create_topic(topic)
        self._consumer = Consumer(broker, group=group, topics=self.topics)
        self.frames_decoded = 0
        self.corrupt_frames = 0
        #: Set by the last ``poll(until_ts=...)`` when the feed held back
        #: messages that lie entirely past the window boundary.
        self.window_exceeded = False
        #: Set when, additionally, *every* partition with backlog is held
        #: back — the window cannot produce more records.
        self.window_drained = False
        #: (topic, partition, offset) -> min peer timestamp of a head
        #: message known to lie past a window boundary, so later polls of
        #: the window skip it without re-fetching or re-decoding it.
        self._deferred_heads: Dict[Tuple[str, int, int], int] = {}
        #: Heads of messages that *straddle* the current window boundary
        #: (frames on both sides): delivered whole but left uncommitted, so
        #: the next window re-reads them and keeps the overhang frames.
        #: Later polls of the same window skip them without re-delivering.
        self._straddled_heads: set = set()
        self._window_until_ts: Optional[float] = None

    @property
    def _lazy(self) -> Optional[bool]:
        return None if self.eager is None else not self.eager

    def poll(
        self, max_messages: Optional[int] = None, until_ts: Optional[float] = None
    ) -> List[Tuple[str, BMPMessage]]:
        """Decode the next batch of frames; empty list = nothing new.

        With ``until_ts`` the poll is *window-aware*: a partition whose
        head message carries only frames past the boundary is held back —
        not consumed, not committed, left in the log for the next window's
        consumer — and skipped by later polls (its boundary timestamp is
        remembered per head offset), so held-back partitions never eat the
        fetch budget of partitions still holding in-window messages.
        ``window_exceeded`` reports that something was held back;
        ``window_drained`` that nothing consumable remains and the caller
        can close the window.  A message that *straddles* the boundary
        (frames on both sides — Kafka offsets cannot split a message) is
        delivered whole but left **uncommitted** and its partition closes
        for the rest of the window: the next window's consumer re-reads it
        from the log, so the overhang frames are never stranded between
        consecutive bounded windows (the record-level interval check drops
        the re-delivered in-window frames).
        """
        if not _metrics.enabled:
            return self._poll_impl(max_messages, until_ts)
        started = time.perf_counter()
        try:
            return self._poll_impl(max_messages, until_ts)
        finally:
            _poll_latency.observe(time.perf_counter() - started)
            self._sample_gauges()

    def _sample_gauges(self) -> None:
        """Refresh the lag / deferred-head gauges from the live broker."""
        broker = self._consumer.broker
        group = self._consumer.group
        for topic_name in self.topics:
            topic = broker.topic(topic_name)
            for partition in range(topic.num_partitions):
                lag = topic.end_offset(partition) - broker.committed_offset(
                    group, topic_name, partition
                )
                _partition_lag.set(lag, topic=topic_name, partition=str(partition))
        _deferred_depth.set(len(self._deferred_heads))

    def _poll_impl(
        self, max_messages: Optional[int], until_ts: Optional[float]
    ) -> List[Tuple[str, BMPMessage]]:
        self.window_exceeded = False
        self.window_drained = False
        pairs: List[Tuple[str, BMPMessage]] = []
        if until_ts is None:
            for kafka_message in self._consumer.poll(max_messages=max_messages):
                self._decode_into(pairs, kafka_message)
            return pairs
        if until_ts != self._window_until_ts:
            # A new window boundary: straddlers of the previous window are
            # ordinary consumable messages again (their delivered frames
            # fall before the new window's interval start).
            self._straddled_heads.clear()
            self._window_until_ts = until_ts
        broker = self._consumer.broker
        group = self._consumer.group
        deferred: Dict[Tuple[str, int, int], int] = {}
        straddled = 0
        queues: List[List[Message]] = []
        for topic_name in self.topics:
            topic = broker.topic(topic_name)
            for partition in range(topic.num_partitions):
                offset = broker.committed_offset(group, topic_name, partition)
                head = (topic_name, partition, offset)
                if head in self._straddled_heads:
                    # Already delivered this window; the partition stays
                    # closed (and eats no fetch budget) until the boundary
                    # moves.
                    straddled += 1
                    continue
                stamp = self._deferred_heads.get(head)
                if stamp is not None and stamp > until_ts:
                    deferred[head] = stamp
                    continue
                queue = topic.read(partition, offset, max_messages)
                if queue:
                    queues.append(queue)
        if max_messages is None:
            merged = [message for queue in queues for message in queue]
        else:
            merged = round_robin_take(queues, max_messages)
        consumed: List[Message] = []
        closed: set = set()
        for kafka_message in merged:
            partition_key = (kafka_message.topic, kafka_message.partition)
            if partition_key in closed:
                continue
            decoded = list(scan_buffer(kafka_message.value, lazy=self._lazy))
            # Compare whole seconds, the resolution records carry: a frame
            # at until_ts + microseconds belongs to *this* window (its
            # record.time equals until_ts), so deferring it would strand it
            # before the next window's interval start.
            stamps = [m.peer.timestamp_sec for m in decoded if m.peer is not None]
            if stamps and min(stamps) > until_ts:
                closed.add(partition_key)
                deferred[
                    (kafka_message.topic, kafka_message.partition, kafka_message.offset)
                ] = min(stamps)
                continue
            if stamps and max(stamps) > until_ts:
                # Straddler: deliver every frame (the interface discards the
                # overhang records), commit nothing, close the partition.
                closed.add(partition_key)
                self._straddled_heads.add(
                    (kafka_message.topic, kafka_message.partition, kafka_message.offset)
                )
                straddled += 1
                router = kafka_message.key or ""
                for message in decoded:
                    self._count_frame(message)
                    pairs.append((router, message))
                continue
            consumed.append(kafka_message)
            router = kafka_message.key or ""
            for message in decoded:
                self._count_frame(message)
                pairs.append((router, message))
        if consumed:
            self._consumer.commit(consumed)
            self._consumer.messages_consumed += len(consumed)
        self._deferred_heads = deferred
        self.window_exceeded = bool(deferred) or straddled > 0
        # Drained only if nothing was consumable AND the merge covered every
        # fetched queue's head — with a tiny budget, a head the merge never
        # reached may still open a partition of in-window messages.
        self.window_drained = (
            self.window_exceeded
            and not consumed
            and (max_messages is None or len(merged) >= len(queues))
        )
        return pairs

    def _decode_into(
        self, pairs: List[Tuple[str, BMPMessage]], kafka_message: Message
    ) -> None:
        router = kafka_message.key or ""
        for message in scan_buffer(kafka_message.value, lazy=self._lazy):
            self._count_frame(message)
            pairs.append((router, message))

    def _count_frame(self, message: BMPMessage) -> None:
        if message.is_valid:
            self.frames_decoded += 1
            if _metrics.enabled:
                _frames.inc(status="ok")
        else:
            self.corrupt_frames += 1
            if _metrics.enabled:
                _frames.inc(status="corrupt")

    def lag(self) -> int:
        """Kafka messages published but not yet consumed by this source."""
        return self._consumer.lag()

    def seek_to_beginning(self) -> None:
        """Replay the feed from the first retained frame."""
        self._deferred_heads.clear()
        self._straddled_heads.clear()
        self._window_until_ts = None
        self._consumer.seek_to_beginning()
