"""Live BMP subsystem: RFC 7854 codec, OpenBMP-style Kafka feed, converter.

The live half of the framework (the paper consumes BMP streams published
through Kafka alongside the MRT dump archives):

* :mod:`repro.bmp.constants` / :mod:`repro.bmp.messages` /
  :mod:`repro.bmp.codec` — the BMP v3 wire codec: all six RFC 7854 message
  types, an encoder for fixture generation, and an incremental framing
  scanner with the MRT parser's corruption-signalling discipline;
* :mod:`repro.bmp.source` — :class:`BMPFeedProducer` /
  :class:`BMPKafkaDataSource`, the OpenBMP-style router-keyed Kafka feed;
* :mod:`repro.bmp.convert` — :class:`BMPRecordConverter`, turning live
  messages into the exact record/elem model of the historical path (state
  reconstruction on Peer Up, synthesised withdrawals on Peer Down, §6).

The stream-facing entry point is
:class:`repro.core.interfaces.LiveDataInterface` (registered as the
``"kafka"`` data interface).
"""

from repro.bmp.codec import (
    BMPStreamParser,
    decode_message,
    encode_message,
    scan_buffer,
    scan_messages,
)
from repro.bmp.constants import (
    BMP_VERSION,
    BMPInitiationTLVType,
    BMPMessageType,
    BMPPeerDownReason,
    BMPPeerType,
    BMPStatType,
    BMPTerminationReason,
    BMPTerminationTLVType,
)
from repro.bmp.convert import BMPRecordConverter
from repro.bmp.messages import (
    BMPInfoTLV,
    BMPMessage,
    BMPPeerHeader,
    BMPStat,
    CorruptBMPMessage,
    InitiationMessage,
    PeerDownNotification,
    PeerUpNotification,
    RouteMonitoringMessage,
    StatisticsReport,
    TerminationMessage,
)
from repro.bmp.source import (
    DEFAULT_BMP_TOPIC,
    DEFAULT_CONSUMER_GROUP,
    BMPFeedProducer,
    BMPKafkaDataSource,
)

__all__ = [
    "BMP_VERSION",
    "BMPInitiationTLVType",
    "BMPMessageType",
    "BMPPeerDownReason",
    "BMPPeerType",
    "BMPStatType",
    "BMPTerminationReason",
    "BMPTerminationTLVType",
    "BMPInfoTLV",
    "BMPMessage",
    "BMPPeerHeader",
    "BMPStat",
    "CorruptBMPMessage",
    "InitiationMessage",
    "PeerDownNotification",
    "PeerUpNotification",
    "RouteMonitoringMessage",
    "StatisticsReport",
    "TerminationMessage",
    "BMPStreamParser",
    "decode_message",
    "encode_message",
    "scan_buffer",
    "scan_messages",
    "BMPRecordConverter",
    "BMPFeedProducer",
    "BMPKafkaDataSource",
    "DEFAULT_BMP_TOPIC",
    "DEFAULT_CONSUMER_GROUP",
]
