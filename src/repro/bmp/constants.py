"""BMP protocol constants (RFC 7854).

The BGP Monitoring Protocol is the near-realtime counterpart of the MRT
archive format: a router (or a collector acting as one, à la OpenBMP)
streams its BGP sessions — route monitoring mirrors of every UPDATE, peer
session events, periodic statistics — over a single framed byte stream.
"""

from __future__ import annotations

from enum import IntEnum

#: The protocol version this codec implements (RFC 7854).
BMP_VERSION = 3

#: Common header: version (1) + total message length (4) + message type (1).
COMMON_HEADER_LEN = 6

#: Per-peer header: type (1) + flags (1) + distinguisher (8) + address (16)
#: + AS (4) + BGP ID (4) + timestamp seconds (4) + timestamp microseconds (4).
PER_PEER_HEADER_LEN = 42

#: Upper bound on a plausible BMP message length; larger values are treated
#: as corruption (framing is lost at that point, exactly like an implausible
#: MRT record length).
MAX_BMP_MESSAGE_LEN = 16 * 1024 * 1024


class BMPMessageType(IntEnum):
    """BMP message types (RFC 7854 §4.1)."""

    ROUTE_MONITORING = 0
    STATISTICS_REPORT = 1
    PEER_DOWN_NOTIFICATION = 2
    PEER_UP_NOTIFICATION = 3
    INITIATION = 4
    TERMINATION = 5


class BMPPeerType(IntEnum):
    """Per-peer header peer types (RFC 7854 §4.2)."""

    GLOBAL_INSTANCE = 0
    RD_INSTANCE = 1
    LOCAL_INSTANCE = 2


#: Per-peer header flag bits (RFC 7854 §4.2).
PEER_FLAG_IPV6 = 0x80  # V: the peer address is IPv6
PEER_FLAG_POST_POLICY = 0x40  # L: routes are post-policy (Adj-RIB-In out)
PEER_FLAG_AS2 = 0x20  # A: the encapsulated messages use 2-byte AS paths


class BMPInitiationTLVType(IntEnum):
    """Information TLV types of the Initiation message (RFC 7854 §4.4)."""

    STRING = 0
    SYS_DESCR = 1
    SYS_NAME = 2


class BMPTerminationTLVType(IntEnum):
    """Information TLV types of the Termination message (RFC 7854 §4.5)."""

    STRING = 0
    REASON = 1


class BMPTerminationReason(IntEnum):
    """Reason codes carried in a Termination REASON TLV (RFC 7854 §4.5)."""

    ADMINISTRATIVELY_CLOSED = 0
    UNSPECIFIED = 1
    OUT_OF_RESOURCES = 2
    REDUNDANT_CONNECTION = 3
    PERMANENTLY_CLOSED = 4


class BMPPeerDownReason(IntEnum):
    """Reason codes of the Peer Down notification (RFC 7854 §4.9)."""

    LOCAL_NOTIFICATION = 1  # followed by the NOTIFICATION message sent
    LOCAL_FSM = 2  # followed by a 2-byte FSM event code
    REMOTE_NOTIFICATION = 3  # followed by the NOTIFICATION message received
    REMOTE_NO_DATA = 4  # session went down without further data
    PEER_DE_CONFIGURED = 5  # monitoring stopped, no session event


class BMPStatType(IntEnum):
    """Statistics Report TLV types (RFC 7854 §4.8)."""

    REJECTED_PREFIXES = 0
    DUPLICATE_PREFIX_ADVERTISEMENTS = 1
    DUPLICATE_WITHDRAWS = 2
    CLUSTER_LIST_LOOP = 3
    AS_PATH_LOOP = 4
    ORIGINATOR_ID_LOOP = 5
    CONFED_LOOP = 6
    ROUTES_ADJ_RIB_IN = 7  # 64-bit gauge
    ROUTES_LOC_RIB = 8  # 64-bit gauge


#: Stat types encoded as 64-bit gauges; all others are 32-bit counters.
STAT_GAUGE_64 = {BMPStatType.ROUTES_ADJ_RIB_IN, BMPStatType.ROUTES_LOC_RIB}


def stat_width(stat_type: int) -> int:
    """Wire width in bytes of a Statistics Report counter of ``stat_type``."""
    return 8 if stat_type in STAT_GAUGE_64 else 4
