"""Structured BMP messages and their body codecs (RFC 7854).

Every message starts with the 6-byte common header (version, total length,
type); the per-peer message types then carry the 42-byte per-peer header.
``encode_body`` / ``decode_body`` implement the wire layout of each type;
the framing layer (common-header scan, corruption signalling) lives in
:mod:`repro.bmp.codec`, mirroring the :mod:`repro.mrt` records/parser
split.
"""

from __future__ import annotations

import ipaddress
import struct
from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.bgp.message import (
    BGPDecodeError,
    BGPOpen,
    BGPUpdate,
    decode_update,
    message_length,
)
from repro.bmp.constants import (
    BMP_VERSION,
    BMPMessageType,
    BMPPeerType,
    BMPStatType,
    BMPTerminationTLVType,
    PEER_FLAG_IPV6,
    PER_PEER_HEADER_LEN,
    stat_width,
)


def _pack_addr16(address: str) -> bytes:
    """Pack an address into a 16-byte field (IPv4 in the lowest 4 bytes)."""
    addr = ipaddress.ip_address(address)
    if addr.version == 6:
        return addr.packed
    return b"\x00" * 12 + addr.packed


def _unpack_addr16(data: bytes, ipv6: bool) -> str:
    """Read a 16-byte address field as IPv6, or IPv4 from the lowest 4 bytes."""
    # bytes() also accepts the memoryview slices the zero-copy scan hands in
    # (ipaddress constructors do not).
    if ipv6:
        return str(ipaddress.IPv6Address(bytes(data)))
    return str(ipaddress.IPv4Address(bytes(data[12:16])))


@dataclass(frozen=True, slots=True)
class BMPPeerHeader:
    """The 42-byte per-peer header (RFC 7854 §4.2).

    ``peer_flags`` carries the raw flags byte; the V (IPv6) bit is kept
    consistent with ``address`` on encode.  The timestamp is split into
    seconds and microseconds exactly as on the wire, so sub-second message
    times survive a round trip.
    """

    peer_type: BMPPeerType = BMPPeerType.GLOBAL_INSTANCE
    peer_flags: int = 0
    distinguisher: int = 0
    address: str = "0.0.0.0"
    asn: int = 0
    bgp_id: str = "0.0.0.0"
    timestamp_sec: int = 0
    timestamp_usec: int = 0

    @property
    def version(self) -> int:
        return ipaddress.ip_address(self.address).version

    @property
    def timestamp(self) -> float:
        """The peer-header timestamp as float seconds."""
        return self.timestamp_sec + self.timestamp_usec / 1_000_000

    def encode(self) -> bytes:
        flags = self.peer_flags & ~PEER_FLAG_IPV6
        if self.version == 6:
            flags |= PEER_FLAG_IPV6
        return (
            struct.pack("!BBQ", int(self.peer_type), flags, self.distinguisher)
            + _pack_addr16(self.address)
            + struct.pack("!I", self.asn)
            + ipaddress.IPv4Address(self.bgp_id).packed
            + struct.pack("!II", self.timestamp_sec, self.timestamp_usec)
        )

    @classmethod
    def decode(cls, data: bytes, offset: int = 0) -> "BMPPeerHeader":
        if offset + PER_PEER_HEADER_LEN > len(data):
            raise ValueError("truncated BMP per-peer header")
        peer_type, flags, distinguisher = struct.unpack_from("!BBQ", data, offset)
        address = _unpack_addr16(
            data[offset + 10 : offset + 26], bool(flags & PEER_FLAG_IPV6)
        )
        asn, = struct.unpack_from("!I", data, offset + 26)
        bgp_id = str(ipaddress.IPv4Address(bytes(data[offset + 30 : offset + 34])))
        sec, usec = struct.unpack_from("!II", data, offset + 34)
        return cls(
            BMPPeerType(peer_type), flags, distinguisher, address, asn, bgp_id, sec, usec
        )


@dataclass(slots=True)
class BMPInfoTLV:
    """One Information TLV (Initiation/Termination/Peer Up, §4.4)."""

    tlv_type: int
    value: bytes

    @property
    def text(self) -> str:
        """The value as UTF-8 text (Information TLVs carry free-form strings)."""
        return self.value.decode("utf-8", errors="replace")

    def encode(self) -> bytes:
        return struct.pack("!HH", self.tlv_type, len(self.value)) + self.value


def _decode_tlvs(data: bytes, offset: int = 0) -> List[BMPInfoTLV]:
    tlvs: List[BMPInfoTLV] = []
    while offset < len(data):
        if offset + 4 > len(data):
            raise ValueError("truncated information TLV header")
        tlv_type, length = struct.unpack_from("!HH", data, offset)
        offset += 4
        if offset + length > len(data):
            raise ValueError("truncated information TLV value")
        tlvs.append(BMPInfoTLV(tlv_type, bytes(data[offset : offset + length])))
        offset += length
    return tlvs


@dataclass(slots=True)
class InitiationMessage:
    """The Initiation message a monitored router opens its feed with (§4.3)."""

    tlvs: List[BMPInfoTLV] = field(default_factory=list)

    def encode_body(self) -> bytes:
        return b"".join(tlv.encode() for tlv in self.tlvs)

    @classmethod
    def decode_body(cls, data: bytes) -> "InitiationMessage":
        return cls(_decode_tlvs(data))


@dataclass(slots=True)
class TerminationMessage:
    """The Termination message closing a feed (§4.5)."""

    tlvs: List[BMPInfoTLV] = field(default_factory=list)

    @property
    def reason(self) -> Optional[int]:
        """The 2-byte reason code, if a REASON TLV is present."""
        for tlv in self.tlvs:
            if tlv.tlv_type == BMPTerminationTLVType.REASON and len(tlv.value) == 2:
                return struct.unpack("!H", tlv.value)[0]
        return None

    def encode_body(self) -> bytes:
        return b"".join(tlv.encode() for tlv in self.tlvs)

    @classmethod
    def decode_body(cls, data: bytes) -> "TerminationMessage":
        return cls(_decode_tlvs(data))


@dataclass(slots=True)
class RouteMonitoringMessage:
    """Route Monitoring: one BGP UPDATE as seen from a peer (§4.6)."""

    peer: BMPPeerHeader
    update: BGPUpdate

    def encode_body(self) -> bytes:
        return self.peer.encode() + self.update.encode()

    @classmethod
    def decode_body(
        cls, data: bytes, lazy: Optional[bool] = None
    ) -> "RouteMonitoringMessage":
        peer = BMPPeerHeader.decode(data)
        update = decode_update(data[PER_PEER_HEADER_LEN:], lazy=lazy)
        return cls(peer, update)


@dataclass(slots=True)
class BMPStat:
    """One Statistics Report counter TLV (§4.8).

    Known stat types carry an integer whose wire width (4-byte counter vs
    8-byte gauge) is a function of the type.  Unknown types (per-AFI/SAFI
    gauges, vendor extensions) are length-delimited on the wire, so their
    payload is kept as raw bytes: a well-formed report from a real feed
    round-trips instead of being flagged corrupt.
    """

    stat_type: int
    value: Union[int, bytes]

    def encode(self) -> bytes:
        if isinstance(self.value, int):
            width = stat_width(self.stat_type)
            payload = self.value.to_bytes(width, "big")
        else:
            payload = self.value
        return struct.pack("!HH", self.stat_type, len(payload)) + payload

    @classmethod
    def decode(cls, data: bytes, offset: int) -> tuple:
        if offset + 4 > len(data):
            raise ValueError("truncated stats TLV header")
        stat_type, length = struct.unpack_from("!HH", data, offset)
        offset += 4
        if offset + length > len(data):
            raise ValueError("truncated stats TLV value")
        payload = data[offset : offset + length]
        try:
            known = BMPStatType(stat_type)
        except ValueError:
            return cls(stat_type, bytes(payload)), offset + length
        if length != stat_width(known):
            raise ValueError(f"stat type {stat_type} has implausible length {length}")
        return cls(stat_type, int.from_bytes(payload, "big")), offset + length


@dataclass(slots=True)
class StatisticsReport:
    """Statistics Report: periodic per-peer counters (§4.8)."""

    peer: BMPPeerHeader
    stats: List[BMPStat] = field(default_factory=list)

    def encode_body(self) -> bytes:
        out = bytearray(self.peer.encode())
        out += struct.pack("!I", len(self.stats))
        for stat in self.stats:
            out += stat.encode()
        return bytes(out)

    @classmethod
    def decode_body(cls, data: bytes) -> "StatisticsReport":
        peer = BMPPeerHeader.decode(data)
        (count,) = struct.unpack_from("!I", data, PER_PEER_HEADER_LEN)
        offset = PER_PEER_HEADER_LEN + 4
        stats: List[BMPStat] = []
        for _ in range(count):
            stat, offset = BMPStat.decode(data, offset)
            stats.append(stat)
        if offset != len(data):
            raise ValueError("trailing bytes after stats TLVs")
        return cls(peer, stats)


@dataclass(slots=True)
class PeerUpNotification:
    """Peer Up: a monitored session reached Established (§4.10)."""

    peer: BMPPeerHeader
    local_address: str = "0.0.0.0"
    local_port: int = 0
    remote_port: int = 0
    sent_open: BGPOpen = field(default_factory=BGPOpen)
    received_open: BGPOpen = field(default_factory=BGPOpen)
    information: List[BMPInfoTLV] = field(default_factory=list)

    def encode_body(self) -> bytes:
        out = bytearray(self.peer.encode())
        out += _pack_addr16(self.local_address)
        out += struct.pack("!HH", self.local_port, self.remote_port)
        out += self.sent_open.encode()
        out += self.received_open.encode()
        for tlv in self.information:
            out += tlv.encode()
        return bytes(out)

    @classmethod
    def decode_body(cls, data: bytes) -> "PeerUpNotification":
        peer = BMPPeerHeader.decode(data)
        offset = PER_PEER_HEADER_LEN
        if offset + 20 > len(data):
            raise ValueError("truncated Peer Up body")
        # The local-address family is independent of the peer's V flag (an
        # IPv4 session can be monitored from an IPv6 local address and vice
        # versa); the wire carries no flag for it, so infer from content:
        # IPv4 sits in the lowest-order 4 bytes with the upper 12 zeroed.
        # (IPv6 addresses inside ::/96 are indistinguishable from IPv4.)
        local_bytes = data[offset : offset + 16]
        local_address = _unpack_addr16(local_bytes, any(local_bytes[:12]))
        local_port, remote_port = struct.unpack_from("!HH", data, offset + 16)
        offset += 20
        try:
            sent_len = message_length(data, offset)
            sent_open = BGPOpen.decode(data[offset : offset + sent_len])
            offset += sent_len
            received_len = message_length(data, offset)
            received_open = BGPOpen.decode(data[offset : offset + received_len])
            offset += received_len
        except BGPDecodeError as exc:
            raise ValueError(f"bad OPEN inside Peer Up: {exc}") from exc
        information = _decode_tlvs(data, offset)
        return cls(
            peer, local_address, local_port, remote_port, sent_open, received_open, information
        )


@dataclass(slots=True)
class PeerDownNotification:
    """Peer Down: a monitored session went away (§4.9).

    ``data`` carries the reason-specific payload verbatim (a NOTIFICATION
    message for reasons 1/3, a 2-byte FSM event code for reason 2, nothing
    for reasons 4/5).
    """

    peer: BMPPeerHeader
    reason: int
    data: bytes = b""

    @property
    def fsm_code(self) -> Optional[int]:
        if len(self.data) == 2:
            return struct.unpack("!H", self.data)[0]
        return None

    def encode_body(self) -> bytes:
        return self.peer.encode() + bytes([self.reason]) + self.data

    @classmethod
    def decode_body(cls, data: bytes) -> "PeerDownNotification":
        peer = BMPPeerHeader.decode(data)
        if len(data) < PER_PEER_HEADER_LEN + 1:
            raise ValueError("truncated Peer Down body")
        reason = data[PER_PEER_HEADER_LEN]
        return cls(peer, reason, bytes(data[PER_PEER_HEADER_LEN + 1 :]))


@dataclass(slots=True)
class CorruptBMPMessage:
    """Placeholder body for a message whose payload could not be decoded."""

    reason: str
    raw: bytes = b""


#: Any decoded BMP body.
BMPBody = Union[
    RouteMonitoringMessage,
    StatisticsReport,
    PeerDownNotification,
    PeerUpNotification,
    InitiationMessage,
    TerminationMessage,
    CorruptBMPMessage,
]

#: Message type -> body class, used by the codec dispatch.
_BODY_CLASSES = {
    BMPMessageType.ROUTE_MONITORING: RouteMonitoringMessage,
    BMPMessageType.STATISTICS_REPORT: StatisticsReport,
    BMPMessageType.PEER_DOWN_NOTIFICATION: PeerDownNotification,
    BMPMessageType.PEER_UP_NOTIFICATION: PeerUpNotification,
    BMPMessageType.INITIATION: InitiationMessage,
    BMPMessageType.TERMINATION: TerminationMessage,
}


@dataclass(slots=True)
class BMPMessage:
    """A full BMP message: common header plus a decoded (or corrupt) body.

    ``msg_type`` is ``None`` when the common header itself was corrupt (the
    type could not be determined).
    """

    msg_type: Optional[BMPMessageType]
    body: BMPBody
    version: int = BMP_VERSION

    @property
    def is_valid(self) -> bool:
        return not isinstance(self.body, CorruptBMPMessage)

    @property
    def peer(self) -> Optional[BMPPeerHeader]:
        """The per-peer header, for the message types that carry one."""
        return getattr(self.body, "peer", None)

    def encode(self) -> bytes:
        """Encode common header + body to wire bytes (valid messages only)."""
        if isinstance(self.body, CorruptBMPMessage):
            body_bytes = self.body.raw
        else:
            body_bytes = self.body.encode_body()
        if self.msg_type is None:
            raise ValueError("cannot encode a message with an unknown type")
        total = 6 + len(body_bytes)
        return struct.pack("!BIB", self.version, total, int(self.msg_type)) + body_bytes

    # -- constructors ------------------------------------------------------

    @classmethod
    def route_monitoring(cls, peer: BMPPeerHeader, update: BGPUpdate) -> "BMPMessage":
        return cls(BMPMessageType.ROUTE_MONITORING, RouteMonitoringMessage(peer, update))

    @classmethod
    def peer_up(cls, peer: BMPPeerHeader, **kwargs) -> "BMPMessage":
        return cls(BMPMessageType.PEER_UP_NOTIFICATION, PeerUpNotification(peer, **kwargs))

    @classmethod
    def peer_down(cls, peer: BMPPeerHeader, reason: int, data: bytes = b"") -> "BMPMessage":
        return cls(
            BMPMessageType.PEER_DOWN_NOTIFICATION, PeerDownNotification(peer, reason, data)
        )

    @classmethod
    def stats_report(cls, peer: BMPPeerHeader, stats: List[BMPStat]) -> "BMPMessage":
        return cls(BMPMessageType.STATISTICS_REPORT, StatisticsReport(peer, stats))

    @classmethod
    def initiation(cls, tlvs: List[BMPInfoTLV]) -> "BMPMessage":
        return cls(BMPMessageType.INITIATION, InitiationMessage(tlvs))

    @classmethod
    def termination(cls, tlvs: List[BMPInfoTLV]) -> "BMPMessage":
        return cls(BMPMessageType.TERMINATION, TerminationMessage(tlvs))


def decode_message_body(
    msg_type: BMPMessageType, body: bytes, lazy: Optional[bool] = None
) -> BMPBody:
    """Decode the body bytes of one message according to its type.

    Returns a :class:`CorruptBMPMessage` (never raises) when the body cannot
    be parsed, so the framing scan can keep walking the byte stream — the
    same discipline as :func:`repro.mrt.records.decode_record_body`.

    ``body`` may be a ``memoryview`` slice of the frame buffer (the
    zero-copy scan passes one); ``lazy`` forwards the lazy-decode knob to
    the Route Monitoring update codec.
    """
    body_cls = _BODY_CLASSES.get(msg_type)
    if body_cls is None:
        return CorruptBMPMessage(f"unsupported BMP message type {msg_type}", bytes(body))
    try:
        if body_cls is RouteMonitoringMessage:
            return RouteMonitoringMessage.decode_body(body, lazy=lazy)
        return body_cls.decode_body(body)
    except (ValueError, struct.error, IndexError, BGPDecodeError) as exc:
        return CorruptBMPMessage(f"decode error: {exc}", bytes(body))
