"""BMP framing: the common-header scan over a byte stream.

Mirrors the discipline of :mod:`repro.mrt.parser`: a single in-memory
buffer is scanned incrementally with a precompiled struct fast path, and
corruption is *signalled* — a message whose body cannot be decoded comes
back with a :class:`~repro.bmp.messages.CorruptBMPMessage` body
(``message.is_valid`` is False) while the scan keeps walking the stream
(the common header's total length preserves framing).  Only when framing
itself is lost (bad version byte, implausible length) does the scanner
emit one final corrupt message and stop consuming, exactly as the MRT
parser stops on a bad record header.

Two entry points:

* :func:`scan_buffer` — parse one complete buffer (a file, a Kafka message
  value holding back-to-back frames);
* :class:`BMPStreamParser` — the incremental flavour for a long-lived feed:
  ``feed()`` bytes as they arrive, iterate :meth:`messages` for every
  complete frame, and ``finish()`` at end-of-stream to flush a truncated
  tail as a corruption signal.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional

from repro.bmp.constants import (
    BMP_VERSION,
    COMMON_HEADER_LEN,
    MAX_BMP_MESSAGE_LEN,
    BMPMessageType,
)
from repro.bmp.messages import BMPMessage, CorruptBMPMessage, decode_message_body

#: Precompiled codec for the common header: version, total length, type.
_COMMON_HEADER_STRUCT = struct.Struct("!BIB")


def encode_message(message: BMPMessage) -> bytes:
    """Functional alias for :meth:`BMPMessage.encode`."""
    return message.encode()


def decode_message(data: bytes) -> BMPMessage:
    """Decode exactly one BMP message occupying the whole buffer.

    Never raises: a structural problem comes back as a message with a
    :class:`CorruptBMPMessage` body.
    """
    if len(data) < COMMON_HEADER_LEN:
        return _corrupt("message shorter than BMP common header", data)
    version, length, raw_type = _COMMON_HEADER_STRUCT.unpack_from(data, 0)
    if version != BMP_VERSION:
        return _corrupt(f"unsupported BMP version {version}", data)
    if length != len(data):
        return _corrupt(
            f"length field {length} does not match data size {len(data)}", data
        )
    try:
        msg_type = BMPMessageType(raw_type)
    except ValueError:
        return _corrupt(f"unknown BMP message type {raw_type}", data)
    body = decode_message_body(msg_type, data[COMMON_HEADER_LEN:])
    return BMPMessage(msg_type, body, version=version)


class BMPStreamParser:
    """Incremental single-buffer framing scanner for a BMP byte stream.

    Appended bytes accumulate in one buffer; :meth:`messages` drains every
    complete frame and keeps the partial tail for the next ``feed()``.
    Once framing is lost the parser is *dead*: it signals one corrupt
    message and ignores everything after (resynchronising inside a broken
    byte stream would risk fabricating records).
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._dead = False
        #: Counters useful for monitoring a long-lived feed.
        self.messages_decoded = 0
        self.corrupt_messages = 0
        self.bytes_consumed = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet framed into a message."""
        return len(self._buffer)

    @property
    def dead(self) -> bool:
        """True once framing was lost; further input is ignored."""
        return self._dead

    def feed(self, data: bytes) -> None:
        """Append raw bytes from the transport."""
        if not self._dead:
            self._buffer += data

    def messages(self) -> Iterator[BMPMessage]:
        """Drain every complete message currently in the buffer."""
        buffer = self._buffer
        offset = 0
        size = len(buffer)
        unpack_from = _COMMON_HEADER_STRUCT.unpack_from
        try:
            while not self._dead and offset + COMMON_HEADER_LEN <= size:
                version, length, raw_type = unpack_from(buffer, offset)
                if version != BMP_VERSION:
                    message = self._kill(f"unsupported BMP version {version}", buffer[offset:])
                    offset = size
                    yield message
                    break
                if length < COMMON_HEADER_LEN or length > MAX_BMP_MESSAGE_LEN:
                    message = self._kill(
                        f"implausible BMP message length {length}", buffer[offset:]
                    )
                    offset = size
                    yield message
                    break
                if offset + length > size:
                    break  # incomplete frame: wait for more bytes
                frame_body = bytes(buffer[offset + COMMON_HEADER_LEN : offset + length])
                try:
                    msg_type: Optional[BMPMessageType] = BMPMessageType(raw_type)
                    body = decode_message_body(msg_type, frame_body)
                except ValueError:
                    msg_type = None
                    body = CorruptBMPMessage(
                        f"unknown BMP message type {raw_type}",
                        bytes(buffer[offset : offset + length]),
                    )
                message = BMPMessage(msg_type, body, version=version)
                self._count(message)
                offset += length
                self.bytes_consumed += length
                yield message
        finally:
            # Must also run when the caller abandons the iterator mid-drain
            # (GeneratorExit): every frame already yielded has been counted
            # and must not be re-delivered by the next call.
            if offset:
                del buffer[:offset]

    def finish(self) -> Iterator[BMPMessage]:
        """Flush: signal a truncated tail, then drop it.

        Call at end-of-stream (end of a file, end of a self-contained Kafka
        frame batch).  A clean stream ends with an empty buffer and yields
        nothing.
        """
        yield from self.messages()
        if not self._dead and self._buffer:
            yield self._kill("truncated BMP message at end of stream", bytes(self._buffer))
        self._buffer.clear()

    def _kill(self, reason: str, raw: bytes) -> BMPMessage:
        self._dead = True
        message = _corrupt(reason, bytes(raw))
        self._count(message)
        return message

    def _count(self, message: BMPMessage) -> None:
        if message.is_valid:
            self.messages_decoded += 1
        else:
            self.corrupt_messages += 1


def scan_buffer(data: bytes) -> Iterator[BMPMessage]:
    """Scan one complete buffer of back-to-back BMP messages.

    Yields every framed message (corrupt bodies signalled per message) and
    a final corruption signal if the buffer ends mid-frame or framing is
    lost — the bulk-scan counterpart of :class:`BMPStreamParser`.
    """
    parser = BMPStreamParser()
    parser.feed(data)
    yield from parser.finish()


def scan_messages(data: bytes) -> List[BMPMessage]:
    """Like :func:`scan_buffer` but materialised into a list."""
    return list(scan_buffer(data))


def _corrupt(reason: str, raw: bytes = b"") -> BMPMessage:
    return BMPMessage(None, CorruptBMPMessage(reason, raw))
