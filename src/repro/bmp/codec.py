"""BMP framing: the common-header scan over a byte stream.

Mirrors the discipline of :mod:`repro.mrt.parser`: a single in-memory
buffer is scanned incrementally with a precompiled struct fast path, and
corruption is *signalled* — a message whose body cannot be decoded comes
back with a :class:`~repro.bmp.messages.CorruptBMPMessage` body
(``message.is_valid`` is False) while the scan keeps walking the stream
(the common header's total length preserves framing).  Only when framing
itself is lost (bad version byte, implausible length) does the scanner
emit one final corrupt message and stop consuming, exactly as the MRT
parser stops on a bad record header.

Two entry points:

* :func:`scan_buffer` — parse one complete buffer (a file, a Kafka message
  value holding back-to-back frames);
* :class:`BMPStreamParser` — the incremental flavour for a long-lived feed:
  ``feed()`` bytes as they arrive, iterate :meth:`messages` for every
  complete frame, and ``finish()`` at end-of-stream to flush a truncated
  tail as a corruption signal.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional

from repro import _profiling as profiling
from repro.bmp.constants import (
    BMP_VERSION,
    COMMON_HEADER_LEN,
    MAX_BMP_MESSAGE_LEN,
    BMPMessageType,
)
from repro.bmp.messages import BMPMessage, CorruptBMPMessage, decode_message_body

#: Precompiled codec for the common header: version, total length, type.
_COMMON_HEADER_STRUCT = struct.Struct("!BIB")


def encode_message(message: BMPMessage) -> bytes:
    """Functional alias for :meth:`BMPMessage.encode`."""
    return message.encode()


def decode_message(data: bytes, lazy: Optional[bool] = None) -> BMPMessage:
    """Decode exactly one BMP message occupying the whole buffer.

    Never raises: a structural problem comes back as a message with a
    :class:`CorruptBMPMessage` body.  ``lazy`` forwards the lazy-decode
    knob to the body codec (``None`` follows the global switch).
    """
    if len(data) < COMMON_HEADER_LEN:
        return _corrupt("message shorter than BMP common header", bytes(data))
    version, length, raw_type = _COMMON_HEADER_STRUCT.unpack_from(data, 0)
    if version != BMP_VERSION:
        return _corrupt(f"unsupported BMP version {version}", bytes(data))
    if length != len(data):
        return _corrupt(
            f"length field {length} does not match data size {len(data)}", bytes(data)
        )
    try:
        msg_type = BMPMessageType(raw_type)
    except ValueError:
        return _corrupt(f"unknown BMP message type {raw_type}", bytes(data))
    body = decode_message_body(msg_type, data[COMMON_HEADER_LEN:], lazy=lazy)
    return BMPMessage(msg_type, body, version=version)


class BMPStreamParser:
    """Incremental single-buffer framing scanner for a BMP byte stream.

    Appended bytes accumulate in one buffer; :meth:`messages` drains every
    complete frame and keeps the partial tail for the next ``feed()``.
    Once framing is lost the parser is *dead*: it signals one corrupt
    message and ignores everything after (resynchronising inside a broken
    byte stream would risk fabricating records).

    ``lazy`` forwards the lazy-decode knob to the Route Monitoring body
    codec (``None`` follows the global switch).  Each complete frame is
    snapshotted out of the mutable accumulation buffer before decoding, so
    lazy attribute views reference immutable bytes — a self-contained
    buffer that skips the accumulation step entirely goes through
    :func:`scan_buffer`, which is fully zero-copy.
    """

    def __init__(self, lazy: Optional[bool] = None) -> None:
        self.lazy = lazy
        self._buffer = bytearray()
        self._dead = False
        #: Counters useful for monitoring a long-lived feed.
        self.messages_decoded = 0
        self.corrupt_messages = 0
        self.bytes_consumed = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet framed into a message."""
        return len(self._buffer)

    @property
    def dead(self) -> bool:
        """True once framing was lost; further input is ignored."""
        return self._dead

    def feed(self, data: bytes) -> None:
        """Append raw bytes from the transport."""
        if not self._dead:
            self._buffer += data

    def messages(self) -> Iterator[BMPMessage]:
        """Drain every complete message currently in the buffer."""
        buffer = self._buffer
        offset = 0
        size = len(buffer)
        unpack_from = _COMMON_HEADER_STRUCT.unpack_from
        try:
            while not self._dead and offset + COMMON_HEADER_LEN <= size:
                version, length, raw_type = unpack_from(buffer, offset)
                if version != BMP_VERSION:
                    message = self._kill(f"unsupported BMP version {version}", buffer[offset:])
                    offset = size
                    yield message
                    break
                if length < COMMON_HEADER_LEN or length > MAX_BMP_MESSAGE_LEN:
                    message = self._kill(
                        f"implausible BMP message length {length}", buffer[offset:]
                    )
                    offset = size
                    yield message
                    break
                if offset + length > size:
                    break  # incomplete frame: wait for more bytes
                frame_body = bytes(buffer[offset + COMMON_HEADER_LEN : offset + length])
                try:
                    msg_type: Optional[BMPMessageType] = BMPMessageType(raw_type)
                    body = decode_message_body(msg_type, frame_body, lazy=self.lazy)
                except ValueError:
                    msg_type = None
                    body = CorruptBMPMessage(
                        f"unknown BMP message type {raw_type}",
                        bytes(buffer[offset : offset + length]),
                    )
                message = BMPMessage(msg_type, body, version=version)
                self._count(message)
                offset += length
                self.bytes_consumed += length
                counters = profiling.counters
                if counters is not None:
                    counters.bmp_frames_scanned += 1
                yield message
        finally:
            # Must also run when the caller abandons the iterator mid-drain
            # (GeneratorExit): every frame already yielded has been counted
            # and must not be re-delivered by the next call.
            if offset:
                del buffer[:offset]

    def finish(self) -> Iterator[BMPMessage]:
        """Flush: signal a truncated tail, then drop it.

        Call at end-of-stream (end of a file, end of a self-contained Kafka
        frame batch).  A clean stream ends with an empty buffer and yields
        nothing.
        """
        yield from self.messages()
        if not self._dead and self._buffer:
            yield self._kill("truncated BMP message at end of stream", bytes(self._buffer))
        self._buffer.clear()

    def _kill(self, reason: str, raw: bytes) -> BMPMessage:
        self._dead = True
        message = _corrupt(reason, bytes(raw))
        self._count(message)
        return message

    def _count(self, message: BMPMessage) -> None:
        if message.is_valid:
            self.messages_decoded += 1
        else:
            self.corrupt_messages += 1


def scan_buffer(data: bytes, lazy: Optional[bool] = None) -> Iterator[BMPMessage]:
    """Scan one complete buffer of back-to-back BMP messages.

    Yields every framed message (corrupt bodies signalled per message) and
    a final corruption signal if the buffer ends mid-frame or framing is
    lost — the bulk-scan counterpart of :class:`BMPStreamParser`, with the
    same kill reasons.

    Unlike the incremental parser this scan is **zero-copy**: the buffer is
    walked through one :class:`memoryview` and each frame's body is handed
    to the codec as a view slice, so a Kafka poll's worth of back-to-back
    frames decodes without per-frame byte copies (and, with ``lazy`` left
    on, without constructing attribute values the consumer never reads).
    The buffer must therefore be immutable for the lifetime of the decoded
    messages — Kafka message values and file contents are.
    """
    view = memoryview(data)
    size = len(view)
    offset = 0
    frames = 0
    unpack_from = _COMMON_HEADER_STRUCT.unpack_from
    try:
        while offset + COMMON_HEADER_LEN <= size:
            version, length, raw_type = unpack_from(view, offset)
            if version != BMP_VERSION:
                yield _corrupt(f"unsupported BMP version {version}", bytes(view[offset:]))
                return
            if length < COMMON_HEADER_LEN or length > MAX_BMP_MESSAGE_LEN:
                yield _corrupt(
                    f"implausible BMP message length {length}", bytes(view[offset:])
                )
                return
            if offset + length > size:
                break  # truncated tail: signalled below
            frame_body = view[offset + COMMON_HEADER_LEN : offset + length]
            try:
                msg_type: Optional[BMPMessageType] = BMPMessageType(raw_type)
                body = decode_message_body(msg_type, frame_body, lazy=lazy)
            except ValueError:
                msg_type = None
                body = CorruptBMPMessage(
                    f"unknown BMP message type {raw_type}",
                    bytes(view[offset : offset + length]),
                )
            offset += length
            frames += 1
            yield BMPMessage(msg_type, body, version=version)
        if offset < size:
            yield _corrupt("truncated BMP message at end of stream", bytes(view[offset:]))
    finally:
        counters = profiling.counters
        if counters is not None:
            counters.bmp_frames_scanned += frames
            counters.bytes_viewed += offset


def scan_messages(data: bytes, lazy: Optional[bool] = None) -> List[BMPMessage]:
    """Like :func:`scan_buffer` but materialised into a list."""
    return list(scan_buffer(data, lazy=lazy))


def _corrupt(reason: str, raw: bytes = b"") -> BMPMessage:
    return BMPMessage(None, CorruptBMPMessage(reason, raw))
