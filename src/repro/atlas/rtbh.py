"""The RTBH case study (§4.3, Figure 4).

Two live BGPStream streams run side by side (exactly as in the paper's
Python script): the first is filtered on black-holing communities and
*triggers* investigation of a prefix when a tagged announcement appears; the
second watches the triggered prefixes for explicit or implicit withdrawals
and *completes* the investigation.  On detection of an RTBH start the
experiment launches traceroutes from 50–100 Atlas probes towards the
black-holed destination, and repeats the same traceroutes after the
black-holing is withdrawn.  The output is the pair of per-destination
reachability fractions plotted in Figure 4: fraction of traceroutes reaching
the destination (4a) and fraction reaching the origin AS (4b), during vs
after RTBH.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bgp.community import Community
from repro.bgp.prefix import Prefix
from repro.collectors.events import RTBHEvent
from repro.collectors.topology import ASTopology
from repro.core.elem import ElemType
from repro.core.stream import BGPStream
from repro.atlas.probes import ProbeSelector
from repro.atlas.traceroute import TracerouteEngine, TracerouteResult


@dataclass(frozen=True)
class RTBHRequest:
    """One detected black-holing episode on the control plane."""

    prefix: Prefix
    origin_asn: int
    communities: Tuple[Community, ...]
    start: int
    end: Optional[int]  # None if never withdrawn within the observation window

    @property
    def duration(self) -> Optional[int]:
        return None if self.end is None else self.end - self.start


@dataclass
class RTBHMeasurement:
    """Reachability of one black-holed destination during and after RTBH."""

    request: RTBHRequest
    probes_used: int
    during_destination_fraction: float
    after_destination_fraction: float
    during_origin_fraction: float
    after_origin_fraction: float

    @property
    def reachability_dropped(self) -> bool:
        return self.during_destination_fraction < self.after_destination_fraction


def detect_rtbh_requests(
    stream: BGPStream,
    blackhole_communities: Iterable[Community],
    withdrawal_stream: Optional[BGPStream] = None,
) -> List[RTBHRequest]:
    """Detect RTBH start/end episodes from (live) streams.

    The first stream must be community-filtered; ``withdrawal_stream``
    (unfiltered, or prefix-filtered as prefixes are discovered) provides the
    end of each episode: an explicit withdrawal or a re-announcement without
    the black-holing community.  When ``withdrawal_stream`` is None the ends
    are detected from the same stream (sufficient when it carries all
    updates).
    """
    watched = set(blackhole_communities)
    starts: Dict[Prefix, RTBHRequest] = {}
    finished: List[RTBHRequest] = []

    def _handle(elem, is_primary: bool) -> None:
        prefix = elem.prefix
        if prefix is None:
            return
        tagged = (
            elem.communities is not None
            and elem.communities.matches_any(watched)
            and elem.elem_type == ElemType.ANNOUNCEMENT
        )
        if tagged and prefix not in starts:
            starts[prefix] = RTBHRequest(
                prefix=prefix,
                origin_asn=elem.origin_asn or 0,
                communities=tuple(c for c in elem.communities if c in watched),
                start=elem.time,
                end=None,
            )
            return
        if prefix in starts and not tagged:
            ended = (
                elem.elem_type == ElemType.WITHDRAWAL
                or elem.elem_type == ElemType.ANNOUNCEMENT
            )
            if ended and elem.time > starts[prefix].start:
                request = starts.pop(prefix)
                finished.append(
                    RTBHRequest(
                        prefix=request.prefix,
                        origin_asn=request.origin_asn,
                        communities=request.communities,
                        start=request.start,
                        end=elem.time,
                    )
                )

    for _record, elem in stream.elems():
        _handle(elem, is_primary=True)
    if withdrawal_stream is not None:
        for _record, elem in withdrawal_stream.elems():
            _handle(elem, is_primary=False)
    return finished + list(starts.values())


class RTBHExperiment:
    """Couples control-plane detection with data-plane measurements."""

    def __init__(
        self,
        topology: ASTopology,
        probe_selector: Optional[ProbeSelector] = None,
        engine: Optional[TracerouteEngine] = None,
        min_probes: int = 50,
        max_probes: int = 100,
        seed: int = 0,
    ) -> None:
        self.topology = topology
        self.probes = probe_selector or ProbeSelector(topology, seed=seed)
        self.engine = engine or TracerouteEngine(topology)
        self.min_probes = min_probes
        self.max_probes = max_probes

    def measure_request(
        self,
        request: RTBHRequest,
        rtbh_event: RTBHEvent,
        target_responds_during: bool = True,
    ) -> Optional[RTBHMeasurement]:
        """Traceroute a black-holed destination during and after RTBH.

        Returns None when the probe set could not be kept identical between
        the two rounds (the paper removes such destinations).
        """
        selected = self.probes.select_for_target(
            request.origin_asn,
            min_probes=self.min_probes,
            max_probes=self.max_probes,
        )
        during_probes = self.probes.currently_active(selected)
        after_probes = self.probes.currently_active(selected)
        common = sorted(
            {p.probe_id for p in during_probes} & {p.probe_id for p in after_probes}
        )
        if len(common) < self.min_probes // 2:
            return None
        probe_asns = [p.asn for p in selected if p.probe_id in common]

        during_engine = TracerouteEngine(
            self.topology, self.engine.computer, target_responds=target_responds_during
        )
        during = during_engine.measure(
            probe_asns, request.prefix, origin_asn=request.origin_asn, active_rtbh=[rtbh_event]
        )
        after = self.engine.measure(
            probe_asns, request.prefix, origin_asn=request.origin_asn, active_rtbh=[]
        )
        return RTBHMeasurement(
            request=request,
            probes_used=len(probe_asns),
            during_destination_fraction=_fraction(during, lambda r: r.reached_destination),
            after_destination_fraction=_fraction(after, lambda r: r.reached_destination),
            during_origin_fraction=_fraction(during, lambda r: r.reached_origin_as),
            after_origin_fraction=_fraction(after, lambda r: r.reached_origin_as),
        )

    def run(
        self,
        requests: Sequence[RTBHRequest],
        events_by_prefix: Dict[Prefix, RTBHEvent],
    ) -> List[RTBHMeasurement]:
        measurements: List[RTBHMeasurement] = []
        for request in requests:
            event = events_by_prefix.get(request.prefix)
            if event is None:
                continue
            measurement = self.measure_request(request, event)
            if measurement is not None:
                measurements.append(measurement)
        return measurements


def _fraction(results: Sequence[TracerouteResult], predicate) -> float:
    if not results:
        return 0.0
    return sum(1 for r in results if predicate(r)) / len(results)
