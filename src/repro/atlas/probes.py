"""Atlas probes and probe selection.

The paper selects currently-active probes from (i) the visible AS neighbours
of the origin AS, (ii) ASes co-located in the same IXPs as the origin AS,
and (iii) the same country as the target IP — to account for potentially
invisible peripheral peering interconnections.  Probe availability
fluctuates, which the paper handles by discarding destinations whose probe
set changed between the two measurement rounds; the simulation models that
with a per-probe availability probability.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Set

from repro.collectors.topology import ASTopology


@dataclass(frozen=True)
class AtlasProbe:
    """One measurement probe hosted inside an AS."""

    probe_id: int
    asn: int
    country: str
    ixps: FrozenSet[int] = frozenset()


class ProbeSelector:
    """Builds a probe population over a topology and selects probes per target."""

    def __init__(
        self,
        topology: ASTopology,
        probes_per_as: int = 2,
        availability: float = 0.9,
        seed: int = 0,
    ) -> None:
        self.topology = topology
        self.availability = availability
        self._rng = random.Random(seed)
        self.probes: List[AtlasProbe] = []
        probe_id = 1
        for asn in topology.asns():
            node = topology.node(asn)
            for _ in range(probes_per_as):
                self.probes.append(
                    AtlasProbe(probe_id=probe_id, asn=asn, country=node.country, ixps=node.ixps)
                )
                probe_id += 1

    # -- selection ----------------------------------------------------------------

    def probes_in_as(self, asn: int) -> List[AtlasProbe]:
        return [p for p in self.probes if p.asn == asn]

    def select_for_target(
        self,
        origin_asn: int,
        target_country: Optional[str] = None,
        min_probes: int = 50,
        max_probes: int = 100,
    ) -> List[AtlasProbe]:
        """The paper's three-way selection, capped to ``max_probes``."""
        if origin_asn not in self.topology:
            return []
        node = self.topology.node(origin_asn)
        neighbour_asns = set(self.topology.neighbors(origin_asn))
        ixp_asns: Set[int] = set()
        for ixp in node.ixps:
            ixp_asns.update(self.topology.ixp_members(ixp))
        ixp_asns.discard(origin_asn)
        country = target_country or node.country

        selected: List[AtlasProbe] = []
        seen: Set[int] = set()
        for probe in self.probes:
            reason = (
                probe.asn in neighbour_asns
                or probe.asn in ixp_asns
                or probe.country == country
            )
            if not reason or probe.asn == origin_asn:
                continue
            if probe.probe_id in seen:
                continue
            selected.append(probe)
            seen.add(probe.probe_id)
        # Top up from the general population if the neighbourhood is small
        # (the paper varies 50-100 probes depending on origin connectivity).
        if len(selected) < min_probes:
            extras = [
                p for p in self.probes if p.probe_id not in seen and p.asn != origin_asn
            ]
            self._rng.shuffle(extras)
            selected.extend(extras[: min_probes - len(selected)])
        if len(selected) > max_probes:
            selected = selected[:max_probes]
        return selected

    def currently_active(self, probes: Sequence[AtlasProbe]) -> List[AtlasProbe]:
        """Model probe availability fluctuations between measurement rounds."""
        return [p for p in probes if self._rng.random() < self.availability]
