"""Policy-path traceroute simulation with RTBH enforcement.

Forwarding follows the same Gao–Rexford preferred paths the control-plane
simulation uses: each AS hands the packet to the next hop of its preferred
route towards the destination prefix.  Remotely-triggered black-holing is
enforced where it actually happens in practice: an AS that honours the
black-hole community for one of its customers drops traffic destined to the
black-holed address at its border, so probes whose path crosses such an AS
never reach the destination, while customers or peers that reach the origin
without crossing a black-holing provider still can (the partial
reachability the paper observes in Figure 4a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.bgp.prefix import Prefix
from repro.collectors.events import RTBHEvent
from repro.collectors.routing import RouteComputer
from repro.collectors.topology import ASTopology


@dataclass(frozen=True)
class TracerouteResult:
    """The outcome of one simulated traceroute."""

    probe_asn: int
    target_prefix: Prefix
    origin_asn: int
    as_path: Tuple[int, ...]
    reached_origin_as: bool
    reached_destination: bool
    dropped_at: Optional[int] = None  # the AS that black-holed the packet, if any

    @property
    def hops(self) -> int:
        return len(self.as_path)


class TracerouteEngine:
    """Simulates ICMP paris-traceroutes over the synthetic data plane."""

    def __init__(
        self,
        topology: ASTopology,
        computer: Optional[RouteComputer] = None,
        target_responds: bool = True,
    ) -> None:
        self.topology = topology
        self.computer = computer or RouteComputer(topology)
        #: Whether the destination host answers probes at all (a host under
        #: DoS may not, independent of black-holing).
        self.target_responds = target_responds

    def traceroute(
        self,
        probe_asn: int,
        target_prefix: Prefix,
        origin_asn: Optional[int] = None,
        active_rtbh: Sequence[RTBHEvent] = (),
        excluded_asns: Iterable[int] = (),
    ) -> TracerouteResult:
        """Trace from ``probe_asn`` towards an address in ``target_prefix``."""
        if origin_asn is None:
            origin_asn = self._origin_for(target_prefix)
        if origin_asn is None:
            return TracerouteResult(
                probe_asn=probe_asn,
                target_prefix=target_prefix,
                origin_asn=0,
                as_path=(probe_asn,),
                reached_origin_as=False,
                reached_destination=False,
            )
        excluded = frozenset(excluded_asns)
        paths = self.computer.paths_to_origin(origin_asn, excluded)
        policy = paths.get(probe_asn)
        if policy is None:
            return TracerouteResult(
                probe_asn=probe_asn,
                target_prefix=target_prefix,
                origin_asn=origin_asn,
                as_path=(probe_asn,),
                reached_origin_as=False,
                reached_destination=False,
            )
        blackholers = self._blackholing_asns(target_prefix, active_rtbh)
        walked: List[int] = []
        dropped_at: Optional[int] = None
        for asn in policy.asns:
            walked.append(asn)
            if asn in blackholers and asn != origin_asn:
                dropped_at = asn
                break
        reached_origin = walked[-1] == origin_asn and dropped_at is None
        reached_destination = (
            reached_origin and dropped_at is None and self.target_responds
            and origin_asn not in blackholers
        )
        return TracerouteResult(
            probe_asn=probe_asn,
            target_prefix=target_prefix,
            origin_asn=origin_asn,
            as_path=tuple(walked),
            reached_origin_as=reached_origin,
            reached_destination=reached_destination,
            dropped_at=dropped_at,
        )

    def measure(
        self,
        probe_asns: Sequence[int],
        target_prefix: Prefix,
        origin_asn: Optional[int] = None,
        active_rtbh: Sequence[RTBHEvent] = (),
    ) -> List[TracerouteResult]:
        """Run one traceroute per probe AS."""
        return [
            self.traceroute(asn, target_prefix, origin_asn=origin_asn, active_rtbh=active_rtbh)
            for asn in probe_asns
        ]

    # -- helpers -------------------------------------------------------------------

    def _origin_for(self, prefix: Prefix) -> Optional[int]:
        exact = self.topology.origin_of(prefix)
        if exact is not None:
            return exact
        # Longest covering allocation (e.g. a black-holed /32 inside a /24).
        best: Optional[Tuple[int, int]] = None
        for candidate in self.topology.all_prefixes(version=prefix.version):
            if candidate.contains(prefix):
                origin = self.topology.origin_of(candidate)
                if origin is not None and (best is None or candidate.length > best[0]):
                    best = (candidate.length, origin)
        return best[1] if best else None

    def _blackholing_asns(
        self, target_prefix: Prefix, active_rtbh: Sequence[RTBHEvent]
    ) -> Set[int]:
        """ASes dropping traffic towards ``target_prefix`` right now."""
        droppers: Set[int] = set()
        for event in active_rtbh:
            if not event.blackhole_prefix.overlaps(target_prefix):
                continue
            for provider in event.provider_asns:
                node = self.topology.nodes.get(provider)
                if node is not None and node.blackhole_community_value is not None:
                    droppers.add(provider)
        return droppers
