"""RIPE-Atlas-style active measurement simulation (§4.3).

The RTBH case study combines control-plane detection (a live, community-
filtered BGPStream) with data-plane measurements (traceroutes from RIPE
Atlas probes).  Since neither Atlas nor the Internet is reachable here, this
package simulates the data plane over the same synthetic topology the
collectors observe:

* :mod:`repro.atlas.probes` — probes hosted in ASes; selection by AS
  neighbourhood, IXP co-location and country, as the paper does.
* :mod:`repro.atlas.traceroute` — policy-path forwarding simulation with
  black-hole enforcement at providers honouring the RTBH community.
* :mod:`repro.atlas.rtbh` — the experiment orchestration: detect RTBH
  start/end from live BGP streams, fire traceroutes during and after, and
  compute the Figure 4 reachability metrics.
"""

from repro.atlas.probes import AtlasProbe, ProbeSelector
from repro.atlas.traceroute import TracerouteEngine, TracerouteResult
from repro.atlas.rtbh import RTBHExperiment, RTBHMeasurement, detect_rtbh_requests

__all__ = [
    "AtlasProbe",
    "ProbeSelector",
    "TracerouteEngine",
    "TracerouteResult",
    "RTBHExperiment",
    "RTBHMeasurement",
    "detect_rtbh_requests",
]
