"""Reading MRT dump files.

The reader mirrors the behaviour the paper describes for its extended
libBGPdump (§3.3.3): it can read many files from a single process, it
auto-detects gzip compression, and it *signals* corruption — a record whose
header or body cannot be decoded is returned with a :class:`CorruptRecord`
body (``record.is_valid`` is False) instead of aborting the whole dump.  A
file that cannot be opened at all raises :class:`MRTParseError`; the stream
layer converts that into a not-valid BGPStream record.
"""

from __future__ import annotations

import gzip
import io
import os
from typing import IO, Iterator, List, Optional

from repro.mrt.constants import MRT_HEADER_LEN, MRTType
from repro.mrt.records import (
    CorruptRecord,
    MRTHeader,
    MRTRecord,
    decode_record_body,
)

#: gzip magic bytes, used to auto-detect compressed dumps.
_GZIP_MAGIC = b"\x1f\x8b"

#: An upper bound on a plausible MRT record body; larger lengths are treated
#: as corruption (a single TABLE_DUMP_V2 record never remotely approaches
#: this in practice).
MAX_RECORD_LEN = 64 * 1024 * 1024


class MRTParseError(Exception):
    """Raised when a dump file cannot be opened or read at all."""


class MRTDumpReader:
    """Iterate the MRT records of one dump file.

    Iteration yields :class:`MRTRecord` objects.  A corrupt tail (truncated
    header or body) yields one final record flagged as invalid and then
    stops, matching the "signal a corrupted read" extension of libBGPdump.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle: Optional[IO[bytes]] = None

    # -- lifecycle ---------------------------------------------------------

    def open(self) -> None:
        if not os.path.exists(self.path):
            raise MRTParseError(f"dump file does not exist: {self.path}")
        try:
            raw = open(self.path, "rb")
            magic = raw.read(2)
            raw.seek(0)
            if magic == _GZIP_MAGIC:
                self._handle = gzip.open(raw)
            else:
                self._handle = raw
        except OSError as exc:
            raise MRTParseError(f"cannot open dump file {self.path}: {exc}") from exc

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "MRTDumpReader":
        self.open()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- iteration ---------------------------------------------------------

    def __iter__(self) -> Iterator[MRTRecord]:
        if self._handle is None:
            self.open()
        assert self._handle is not None
        while True:
            try:
                header_bytes = self._handle.read(MRT_HEADER_LEN)
            except (OSError, EOFError, gzip.BadGzipFile) as exc:
                yield _corrupt(f"read error: {exc}")
                return
            if not header_bytes:
                return  # clean end of file
            if len(header_bytes) < MRT_HEADER_LEN:
                yield _corrupt("truncated MRT header at end of file", header_bytes)
                return
            try:
                header, body_length, _ = MRTHeader.decode(header_bytes)
            except ValueError as exc:
                yield _corrupt(f"bad MRT header: {exc}", header_bytes)
                return
            if body_length > MAX_RECORD_LEN:
                yield _corrupt(f"implausible record length {body_length}", header_bytes)
                return
            try:
                body_bytes = self._handle.read(body_length)
            except (OSError, EOFError, gzip.BadGzipFile) as exc:
                yield _corrupt(f"read error in record body: {exc}", header_bytes)
                return
            if len(body_bytes) < body_length:
                yield MRTRecord(header, CorruptRecord("truncated record body", body_bytes))
                return
            body = decode_record_body(header, header.subtype, body_bytes)
            yield MRTRecord(header, body)


def read_dump(path: str) -> List[MRTRecord]:
    """Read an entire dump file into a list of records."""
    with MRTDumpReader(path) as reader:
        return list(reader)


def _corrupt(reason: str, raw: bytes = b"") -> MRTRecord:
    header = MRTHeader(0, MRTType.BGP4MP, 0)
    return MRTRecord(header, CorruptRecord(reason, raw))
