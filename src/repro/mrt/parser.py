"""Reading MRT dump files.

The reader mirrors the behaviour the paper describes for its extended
libBGPdump (§3.3.3): it can read many files from a single process, it
auto-detects gzip compression, and it *signals* corruption — a record whose
header or body cannot be decoded is returned with a :class:`CorruptRecord`
body (``record.is_valid`` is False) instead of aborting the whole dump.  A
file that cannot be opened at all raises :class:`MRTParseError`; the stream
layer converts that into a not-valid BGPStream record.

Three throughput features support the parallel stream engine
(:mod:`repro.core.parallel`):

* a precompiled :class:`struct.Struct` fast path for the 12-byte common
  header, used by both the streaming scan and the bulk scan;
* a **bulk scan**: a dump of plausible size is read (and, for gzip dumps,
  decompressed) into one in-memory buffer with a single read and parsed with
  zero per-record I/O.  A gzip stream that does not decompress cleanly falls
  back to the classic streaming scan over the same bytes, preserving
  corruption-signalling behaviour exactly; and
* a per-file cache in two tiers, keyed by the file's ``(size, mtime_ns)``
  signature: a **header index** (every record's offset and pre-decoded
  header), stored after any clean bulk scan so re-reads skip header
  re-decoding — and, opt-in via ``cache_records=True``, the fully **decoded
  records** themselves, so re-reads of an unchanged dump skip decoding
  entirely.  Any reader consults both tiers; ``cache_records`` only controls
  whether a scan *stores* the decoded tier.  Cached records are shared
  between readers: treat parsed records as immutable (every consumer in this
  codebase does).
"""

from __future__ import annotations

import gzip
import io
import os
import struct
import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import IO, Iterator, List, Optional, Tuple

from repro import _profiling as profiling
from repro.mrt.constants import MRT_HEADER_LEN, MRTType
from repro.mrt.records import (
    CorruptRecord,
    MRTHeader,
    MRTRecord,
    make_body_decoder,
)

#: gzip magic bytes, used to auto-detect compressed dumps.
_GZIP_MAGIC = b"\x1f\x8b"

#: An upper bound on a plausible MRT record body; larger lengths are treated
#: as corruption (a single TABLE_DUMP_V2 record never remotely approaches
#: this in practice).
MAX_RECORD_LEN = 64 * 1024 * 1024

#: Precompiled codec for the MRT common header: timestamp, type, subtype, length.
_HEADER_STRUCT = struct.Struct("!IHHI")

#: Files up to this on-disk size are scanned from one in-memory buffer (one
#: read call, zero per-record I/O); larger files use the streaming scan.
BULK_SCAN_MAX = 128 * 1024 * 1024


class MRTParseError(Exception):
    """Raised when a dump file cannot be opened or read at all."""


# ---------------------------------------------------------------------------
# Per-file cache: header index tier + decoded record tier
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IndexEntry:
    """Location and pre-decoded header of one record inside a dump buffer."""

    offset: int  # offset of the record *body* within the (decompressed) buffer
    timestamp: int
    mrt_type: int
    subtype: int
    body_length: int


@dataclass
class DumpIndex:
    """The cached scan of one cleanly-read dump file."""

    signature: Tuple[int, int]  # (st_size, st_mtime_ns) at scan time
    entries: List[IndexEntry]
    #: Fully decoded records (the opt-in second tier); None = header tier only.
    records: Optional[List[MRTRecord]] = field(default=None, repr=False)


_CACHE_LOCK = threading.Lock()
_INDEX_CACHE: "OrderedDict[str, DumpIndex]" = OrderedDict()
_INDEX_CACHE_MAX = 512
#: Total decoded records kept across all cached files; the oldest entries
#: are demoted to the header tier when the budget is exceeded.
_RECORD_CACHE_BUDGET = 2_000_000
_record_budget_used = 0


def file_signature(path: str) -> Optional[Tuple[int, int]]:
    """The ``(st_size, st_mtime_ns)`` identity of a dump file's content.

    Both the in-memory index cache and the persistent decoded-segment cache
    (:mod:`repro.broker.segments`) key on this: a file whose signature
    changed is a different file, and anything cached under the old
    signature must miss.  Returns None when the file cannot be stat'ed.
    """
    try:
        stat = os.stat(path)
    except OSError:
        return None
    return (stat.st_size, stat.st_mtime_ns)


#: Backwards-compatible private alias (pre-PR 8 name).
_file_signature = file_signature


def cached_index(path: str) -> Optional[DumpIndex]:
    """The cached index for ``path``, if its signature is still valid."""
    global _record_budget_used
    with _CACHE_LOCK:
        index = _INDEX_CACHE.get(path)
        if index is None:
            return None
        if index.signature != _file_signature(path):
            if index.records is not None:
                _record_budget_used -= len(index.records)
            del _INDEX_CACHE[path]
            return None
        _INDEX_CACHE.move_to_end(path)
        return index


def store_index(path: str, index: DumpIndex) -> None:
    global _record_budget_used
    if index.records is not None and len(index.records) > _RECORD_CACHE_BUDGET:
        # A single file larger than the whole budget would defeat the cap;
        # keep its header tier only.
        index = DumpIndex(index.signature, index.entries, None)
    with _CACHE_LOCK:
        previous = _INDEX_CACHE.get(path)
        if previous is not None and previous.records is not None:
            _record_budget_used -= len(previous.records)
        _INDEX_CACHE[path] = index
        _INDEX_CACHE.move_to_end(path)
        if index.records is not None:
            _record_budget_used += len(index.records)
        while len(_INDEX_CACHE) > _INDEX_CACHE_MAX:
            _, evicted = _INDEX_CACHE.popitem(last=False)
            if evicted.records is not None:
                _record_budget_used -= len(evicted.records)
        if _record_budget_used > _RECORD_CACHE_BUDGET:
            # Demote oldest record-tier entries back to header-only.
            for candidate in list(_INDEX_CACHE.values()):
                if _record_budget_used <= _RECORD_CACHE_BUDGET:
                    break
                if candidate.records is not None and candidate is not index:
                    _record_budget_used -= len(candidate.records)
                    candidate.records = None


def clear_index_cache() -> None:
    global _record_budget_used
    with _CACHE_LOCK:
        _INDEX_CACHE.clear()
        _record_budget_used = 0


def index_cache_size() -> int:
    with _CACHE_LOCK:
        return len(_INDEX_CACHE)


# ---------------------------------------------------------------------------
# Reader
# ---------------------------------------------------------------------------


class MRTDumpReader:
    """Iterate the MRT records of one dump file.

    Iteration yields :class:`MRTRecord` objects.  A corrupt tail (truncated
    header or body) yields one final record flagged as invalid and then
    stops, matching the "signal a corrupted read" extension of libBGPdump.

    ``use_index=False`` disables the per-file cache in both directions (the
    read neither consults nor populates it); ``cache_records=True``
    additionally stores the decoded records of a cleanly-scanned dump so the
    next read of the unchanged file skips decoding entirely.

    ``intern`` controls parse-time flyweight interning of the decoded values
    (AS paths, community sets, prefixes, peer/address strings — see
    :mod:`repro.core.intern`): ``None`` follows the process-wide switch,
    ``True`` / ``False`` force it for this reader.  ``lazy`` likewise
    controls lazy attribute decoding (``None`` follows the global
    lazy-decode switch); the bulk scan hands zero-copy ``memoryview``
    slices of the dump buffer to the decode layer, so in lazy mode path
    attributes are parsed only when an elem consumer actually reads them.
    Records served from the decoded-record cache tier keep whatever
    interning/laziness they were decoded with (lazy cached records pin
    their dump buffer until their deferred attributes materialise).
    """

    def __init__(
        self,
        path: str,
        use_index: bool = True,
        cache_records: bool = False,
        intern: Optional[bool] = None,
        lazy: Optional[bool] = None,
    ) -> None:
        self.path = path
        self.use_index = use_index
        self.cache_records = cache_records
        self.intern = intern
        self.lazy = lazy
        self._raw: Optional[IO[bytes]] = None
        self._handle: Optional[IO[bytes]] = None
        self._compressed = False

    # -- lifecycle ---------------------------------------------------------

    def open(self) -> None:
        if not os.path.exists(self.path):
            raise MRTParseError(f"dump file does not exist: {self.path}")
        try:
            raw = open(self.path, "rb")
            magic = raw.read(2)
            raw.seek(0)
            self._raw = raw
            if magic == _GZIP_MAGIC:
                self._handle = gzip.open(raw)
                self._compressed = True
            else:
                self._handle = raw
                self._compressed = False
        except OSError as exc:
            raise MRTParseError(f"cannot open dump file {self.path}: {exc}") from exc

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        if self._raw is not None:
            self._raw.close()
            self._raw = None

    def __enter__(self) -> "MRTDumpReader":
        self.open()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- iteration ---------------------------------------------------------

    def __iter__(self) -> Iterator[MRTRecord]:
        if self._handle is None:
            self.open()
        assert self._handle is not None

        index: Optional[DumpIndex] = None
        if self.use_index:
            index = cached_index(self.path)
            if index is not None:
                # Snapshot: the budget enforcer may demote index.records to
                # None concurrently; a local keeps this read consistent.
                cached_records = index.records
                if cached_records is not None:
                    yield from cached_records
                    return

        signature = _file_signature(self.path)
        if signature is not None and signature[0] <= BULK_SCAN_MAX:
            assert self._raw is not None
            try:
                self._raw.seek(0)
                blob = self._raw.read()
            except OSError as exc:
                yield _corrupt(f"read error: {exc}")
                return
            if self._compressed:
                data = _decompress_bounded(blob, BULK_SCAN_MAX)
                if data is None:
                    # Corrupt, truncated, multi-member or implausibly large
                    # gzip streams keep the classic streaming behaviour
                    # (records until the failure point, then a read-error
                    # signal; bounded memory) over the same bytes.
                    yield from self._iter_streaming(gzip.open(io.BytesIO(blob)))
                    return
            else:
                data = blob
            yield from self._iter_buffer(data, signature, index)
            return

        yield from self._iter_streaming(self._handle)

    # The streaming scan: one header read + one body read per record.  Used
    # for implausibly large files and corrupt gzip streams.
    def _iter_streaming(self, handle: IO[bytes]) -> Iterator[MRTRecord]:
        unpack = _HEADER_STRUCT.unpack
        decode_body = make_body_decoder(self.intern, self.lazy)
        counters = profiling.counters
        while True:
            try:
                header_bytes = handle.read(MRT_HEADER_LEN)
            except (OSError, EOFError, gzip.BadGzipFile, zlib.error) as exc:
                yield _corrupt(f"read error: {exc}")
                return
            if not header_bytes:
                return  # clean end of file
            if len(header_bytes) < MRT_HEADER_LEN:
                yield _corrupt("truncated MRT header at end of file", header_bytes)
                return
            timestamp, raw_type, subtype, body_length = unpack(header_bytes)
            try:
                header = MRTHeader(timestamp, MRTType(raw_type), subtype)
            except ValueError as exc:
                yield _corrupt(f"bad MRT header: {exc}", header_bytes)
                return
            if body_length > MAX_RECORD_LEN:
                yield _corrupt(f"implausible record length {body_length}", header_bytes)
                return
            try:
                body_bytes = handle.read(body_length)
            except (OSError, EOFError, gzip.BadGzipFile, zlib.error) as exc:
                yield _corrupt(f"read error in record body: {exc}", header_bytes)
                return
            if len(body_bytes) < body_length:
                yield MRTRecord(header, CorruptRecord("truncated record body", body_bytes))
                return
            if counters is not None:
                counters.records_scanned += 1
                counters.bytes_copied += MRT_HEADER_LEN + body_length
            body = decode_body(header, header.subtype, body_bytes)
            yield MRTRecord(header, body)

    # The bulk scan: the whole (decompressed) dump parsed from one buffer.
    # A valid header index skips header decoding; a clean scan populates the
    # cache — with the decoded records too when ``cache_records`` is set.
    def _iter_buffer(
        self, data: bytes, signature: Tuple[int, int], index: Optional[DumpIndex]
    ) -> Iterator[MRTRecord]:
        # One memoryview over the whole buffer: every header peek, body
        # extraction and (in lazy mode) deferred attribute slice below is a
        # zero-copy view of this one allocation.
        view = memoryview(data)
        decode_body = make_body_decoder(self.intern, self.lazy)
        counters = profiling.counters
        if index is not None and self._buffer_matches_index(data, index):
            records: Optional[List[MRTRecord]] = [] if self.cache_records else None
            for entry in index.entries:
                header = MRTHeader(entry.timestamp, MRTType(entry.mrt_type), entry.subtype)
                body = view[entry.offset : entry.offset + entry.body_length]
                record = MRTRecord(header, decode_body(header, entry.subtype, body))
                if records is not None:
                    records.append(record)
                yield record
            if counters is not None:
                counters.records_scanned += len(index.entries)
                counters.bytes_viewed += len(data)
            if records is not None:
                store_index(self.path, DumpIndex(signature, index.entries, records))
            return

        unpack_from = _HEADER_STRUCT.unpack_from
        size = len(data)
        offset = 0
        entries: List[IndexEntry] = []
        records = [] if (self.cache_records and self.use_index) else None
        clean = True
        while offset < size:
            if offset + MRT_HEADER_LEN > size:
                yield _corrupt("truncated MRT header at end of file", data[offset:])
                clean = False
                break
            timestamp, raw_type, subtype, body_length = unpack_from(data, offset)
            try:
                header = MRTHeader(timestamp, MRTType(raw_type), subtype)
            except ValueError as exc:
                header_bytes = data[offset : offset + MRT_HEADER_LEN]
                yield _corrupt(f"bad MRT header: {exc}", header_bytes)
                clean = False
                break
            if body_length > MAX_RECORD_LEN:
                header_bytes = data[offset : offset + MRT_HEADER_LEN]
                yield _corrupt(f"implausible record length {body_length}", header_bytes)
                clean = False
                break
            body_offset = offset + MRT_HEADER_LEN
            if body_offset + body_length > size:
                body_bytes = data[body_offset:]
                yield MRTRecord(header, CorruptRecord("truncated record body", body_bytes))
                clean = False
                break
            body_view = view[body_offset : body_offset + body_length]
            record = MRTRecord(header, decode_body(header, subtype, body_view))
            entries.append(IndexEntry(body_offset, timestamp, raw_type, subtype, body_length))
            if records is not None:
                records.append(record)
            yield record
            offset = body_offset + body_length
        if counters is not None:
            counters.records_scanned += len(entries)
            counters.bytes_viewed += offset
        if clean and self.use_index:
            store_index(self.path, DumpIndex(signature, entries, records))

    @staticmethod
    def _buffer_matches_index(data: bytes, index: DumpIndex) -> bool:
        """Sanity check that the index describes exactly this buffer."""
        if not index.entries:
            return len(data) == 0
        last = index.entries[-1]
        return last.offset + last.body_length == len(data)


def _decompress_bounded(blob: bytes, limit: int) -> Optional[bytes]:
    """Fully decompress a single-member gzip blob, or None if it cannot be
    done safely: corrupt/truncated stream, trailing or multi-member data, or
    decompressed size beyond ``limit`` (decompression-bomb guard)."""
    try:
        decompressor = zlib.decompressobj(wbits=31)  # gzip container
        data = decompressor.decompress(blob, limit + 1)
        if len(data) > limit or not decompressor.eof or decompressor.unused_data:
            return None
        return data
    except zlib.error:
        return None


def read_dump(
    path: str,
    use_index: bool = True,
    cache_records: bool = False,
    intern: Optional[bool] = None,
    lazy: Optional[bool] = None,
) -> List[MRTRecord]:
    """Read an entire dump file into a list of records."""
    with MRTDumpReader(
        path, use_index=use_index, cache_records=cache_records, intern=intern, lazy=lazy
    ) as reader:
        return list(reader)


def _corrupt(reason: str, raw: bytes = b"") -> MRTRecord:
    header = MRTHeader(0, MRTType.BGP4MP, 0)
    return MRTRecord(header, CorruptRecord(reason, raw))
