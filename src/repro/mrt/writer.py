"""Writing MRT dump files.

The collector simulation uses these helpers to produce the RIB and Updates
dump files that populate a data-provider archive.  Files can be written
plain or gzip-compressed (RouteViews and RIPE RIS both publish compressed
dumps; everything downstream must therefore cope with compression).
"""

from __future__ import annotations

import gzip
import os
from typing import IO, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.bgp.attributes import PathAttributes
from repro.bgp.prefix import Prefix
from repro.mrt.records import (
    BGP4MPMessage,
    BGP4MPStateChange,
    MRTRecord,
    PeerEntry,
    PeerIndexTable,
    RIBEntry,
    RIBPrefixRecord,
)


class MRTDumpWriter:
    """Write MRT records to a dump file.

    Usable as a context manager::

        with MRTDumpWriter("updates.20160101.0000.mrt.gz") as writer:
            writer.write(record)
    """

    def __init__(self, path: str, compress: Optional[bool] = None) -> None:
        self.path = path
        if compress is None:
            compress = path.endswith(".gz")
        self.compress = compress
        self._handle: Optional[IO[bytes]] = None
        self.records_written = 0

    def __enter__(self) -> "MRTDumpWriter":
        self.open()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def open(self) -> None:
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        if self.compress:
            self._handle = gzip.open(self.path, "wb")
        else:
            self._handle = open(self.path, "wb")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def write(self, record: MRTRecord) -> None:
        if self._handle is None:
            raise RuntimeError("writer is not open")
        self._handle.write(record.encode())
        self.records_written += 1

    def write_all(self, records: Iterable[MRTRecord]) -> int:
        count = 0
        for record in records:
            self.write(record)
            count += 1
        return count


def write_rib_dump(
    path: str,
    timestamp: int,
    collector_bgp_id: str,
    peers: Sequence[PeerEntry],
    tables: Mapping[int, Mapping[Prefix, PathAttributes]],
    view_name: str = "default",
    compress: Optional[bool] = None,
    record_timestamps: Optional[Mapping[int, int]] = None,
) -> int:
    """Write a TABLE_DUMP_V2 RIB dump.

    ``tables`` maps a peer index (into ``peers``) to that vantage point's
    Adj-RIB-out: a mapping prefix -> attributes.  The dump is organised the
    way collectors organise it: one PEER_INDEX_TABLE record followed by one
    record per prefix carrying the entries of every peer that has a route to
    it.  ``record_timestamps`` optionally assigns a per-sequence timestamp
    (collectors take several minutes to walk a large RIB, which the RT
    plugin's E2 handling depends on); by default every record carries
    ``timestamp``.

    Returns the number of MRT records written.
    """
    index = PeerIndexTable(collector_bgp_id, view_name, list(peers))
    # Collate per-prefix entries across peers, ordered for determinism.
    per_prefix: Dict[Prefix, List[RIBEntry]] = {}
    for peer_index, table in tables.items():
        for prefix, attributes in table.items():
            per_prefix.setdefault(prefix, []).append(
                RIBEntry(peer_index, timestamp, attributes)
            )
    with MRTDumpWriter(path, compress=compress) as writer:
        writer.write(MRTRecord.peer_index_table(timestamp, index))
        for sequence, prefix in enumerate(sorted(per_prefix)):
            entries = sorted(per_prefix[prefix], key=lambda e: e.peer_index)
            record_time = timestamp
            if record_timestamps is not None:
                record_time = record_timestamps.get(sequence, timestamp)
            writer.write(
                MRTRecord.rib_prefix(record_time, RIBPrefixRecord(sequence, prefix, entries))
            )
        return writer.records_written


def write_updates_dump(
    path: str,
    messages: Iterable[Tuple[int, object]],
    compress: Optional[bool] = None,
) -> int:
    """Write a BGP4MP Updates dump.

    ``messages`` is an iterable of ``(timestamp, body)`` pairs where ``body``
    is either a :class:`BGP4MPMessage` or a :class:`BGP4MPStateChange`.
    Records are written in the order given (collectors write them in arrival
    order, which is non-decreasing timestamp order).

    Returns the number of MRT records written.
    """
    with MRTDumpWriter(path, compress=compress) as writer:
        for timestamp, body in messages:
            if isinstance(body, BGP4MPMessage):
                writer.write(MRTRecord.bgp4mp_message(timestamp, body))
            elif isinstance(body, BGP4MPStateChange):
                writer.write(MRTRecord.bgp4mp_state_change(timestamp, body))
            else:
                raise TypeError(f"unsupported updates-dump body: {type(body)!r}")
        return writer.records_written


def corrupt_file(path: str, truncate_at: int = 100) -> None:
    """Deliberately truncate a dump file (test/benchmark helper).

    Simulates the partially-written or damaged dumps that the paper's error
    checking (§3.3.3) and the RT plugin's E1/E3 handling must tolerate.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    cut = min(truncate_at, max(1, len(data) - 1))
    with open(path, "wb") as handle:
        handle.write(data[:cut])
