"""MRT type and subtype codes (RFC 6396 §4, RFC 6397)."""

from __future__ import annotations

from enum import IntEnum


class MRTType(IntEnum):
    """Top-level MRT record types used by RouteViews / RIPE RIS dumps."""

    TABLE_DUMP = 12
    TABLE_DUMP_V2 = 13
    BGP4MP = 16
    BGP4MP_ET = 17


class TableDumpV2Subtype(IntEnum):
    """TABLE_DUMP_V2 subtypes (RFC 6396 §4.3)."""

    PEER_INDEX_TABLE = 1
    RIB_IPV4_UNICAST = 2
    RIB_IPV4_MULTICAST = 3
    RIB_IPV6_UNICAST = 4
    RIB_IPV6_MULTICAST = 5
    RIB_GENERIC = 6


class BGP4MPSubtype(IntEnum):
    """BGP4MP subtypes (RFC 6396 §4.4); the AS4 variants carry 32-bit ASNs."""

    STATE_CHANGE = 0
    MESSAGE = 1
    MESSAGE_AS4 = 4
    STATE_CHANGE_AS4 = 5


#: Address family identifiers used inside MRT records.
AFI_IPV4 = 1
AFI_IPV6 = 2

#: Peer-entry type bits in the PEER_INDEX_TABLE (RFC 6396 §4.3.1).
PEER_TYPE_IPV6 = 0x01
PEER_TYPE_AS4 = 0x02

#: MRT common header length: timestamp(4) type(2) subtype(2) length(4).
MRT_HEADER_LEN = 12
