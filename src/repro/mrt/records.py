"""Structured MRT records and their binary codecs.

Every record type carries a :class:`MRTHeader` (timestamp, type, subtype)
plus a type-specific body.  ``encode_body`` / ``decode_body`` implement the
RFC 6396 wire layout; the high-level dump reader/writer live in
:mod:`repro.mrt.parser` and :mod:`repro.mrt.writer`.
"""

from __future__ import annotations

import ipaddress
import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.bgp.attributes import (
    LazyPathAttributes,
    PathAttributes,
    decode_attributes,
    resolve_lazy,
)
from repro.bgp.fsm import SessionState
from repro.bgp.message import BGPUpdate, decode_update
from repro.bgp.prefix import Prefix
from repro.bgp.wirecache import address_str
from repro.mrt.constants import (
    AFI_IPV4,
    AFI_IPV6,
    BGP4MPSubtype,
    MRTType,
    PEER_TYPE_AS4,
    PEER_TYPE_IPV6,
    TableDumpV2Subtype,
)


@dataclass(frozen=True, slots=True)
class MRTHeader:
    """The 12-byte MRT common header."""

    timestamp: int
    mrt_type: MRTType
    subtype: int

    def encode(self, body_length: int, microseconds: int | None = None) -> bytes:
        header = struct.pack(
            "!IHHI", self.timestamp, int(self.mrt_type), int(self.subtype), body_length
        )
        return header

    @classmethod
    def decode(cls, data: bytes, offset: int = 0) -> Tuple["MRTHeader", int, int]:
        """Decode a header; returns (header, body_length, new_offset)."""
        if offset + 12 > len(data):
            raise ValueError("truncated MRT header")
        timestamp, mrt_type, subtype, length = struct.unpack_from("!IHHI", data, offset)
        return cls(timestamp, MRTType(mrt_type), subtype), length, offset + 12


# ---------------------------------------------------------------------------
# TABLE_DUMP_V2
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class PeerEntry:
    """One peer (vantage point) entry of the PEER_INDEX_TABLE."""

    bgp_id: str
    address: str
    asn: int

    @property
    def version(self) -> int:
        return ipaddress.ip_address(self.address).version

    def encode(self) -> bytes:
        addr = ipaddress.ip_address(self.address)
        peer_type = PEER_TYPE_AS4
        if addr.version == 6:
            peer_type |= PEER_TYPE_IPV6
        return (
            bytes([peer_type])
            + ipaddress.IPv4Address(self.bgp_id).packed
            + addr.packed
            + struct.pack("!I", self.asn)
        )

    @classmethod
    def decode(cls, data: bytes, offset: int) -> Tuple["PeerEntry", int]:
        peer_type = data[offset]
        offset += 1
        bgp_id = address_str(bytes(data[offset : offset + 4]))
        offset += 4
        if peer_type & PEER_TYPE_IPV6:
            address = address_str(bytes(data[offset : offset + 16]))
            offset += 16
        else:
            address = address_str(bytes(data[offset : offset + 4]))
            offset += 4
        if peer_type & PEER_TYPE_AS4:
            (asn,) = struct.unpack_from("!I", data, offset)
            offset += 4
        else:
            (asn,) = struct.unpack_from("!H", data, offset)
            offset += 2
        return cls(bgp_id, address, asn), offset


@dataclass(slots=True)
class PeerIndexTable:
    """The PEER_INDEX_TABLE record that opens every TABLE_DUMP_V2 RIB dump."""

    collector_bgp_id: str
    view_name: str
    peers: List[PeerEntry] = field(default_factory=list)

    def encode_body(self) -> bytes:
        view = self.view_name.encode()
        out = bytearray(ipaddress.IPv4Address(self.collector_bgp_id).packed)
        out += struct.pack("!H", len(view)) + view
        out += struct.pack("!H", len(self.peers))
        for peer in self.peers:
            out += peer.encode()
        return bytes(out)

    @classmethod
    def decode_body(cls, data: bytes) -> "PeerIndexTable":
        collector_id = address_str(bytes(data[0:4]))
        (view_len,) = struct.unpack_from("!H", data, 4)
        offset = 6
        view_name = bytes(data[offset : offset + view_len]).decode(errors="replace")
        offset += view_len
        (peer_count,) = struct.unpack_from("!H", data, offset)
        offset += 2
        peers: List[PeerEntry] = []
        for _ in range(peer_count):
            peer, offset = PeerEntry.decode(data, offset)
            peers.append(peer)
        return cls(collector_id, view_name, peers)


@dataclass(slots=True)
class RIBEntry:
    """One route inside a RIB prefix record: which peer, when, which attributes."""

    peer_index: int
    originated_time: int
    attributes: PathAttributes

    def encode(self) -> bytes:
        attr_bytes = self.attributes.encode()
        return (
            struct.pack("!HIH", self.peer_index, self.originated_time, len(attr_bytes))
            + attr_bytes
        )

    @classmethod
    def decode(
        cls, data: bytes, offset: int, lazy: Optional[bool] = None
    ) -> Tuple["RIBEntry", int]:
        peer_index, originated, attr_len = struct.unpack_from("!HIH", data, offset)
        offset += 8
        attrs = decode_attributes(data[offset : offset + attr_len], lazy=lazy)
        return cls(peer_index, originated, attrs), offset + attr_len


@dataclass(slots=True)
class RIBPrefixRecord:
    """A RIB_IPV4_UNICAST / RIB_IPV6_UNICAST record: one prefix, many entries."""

    sequence: int
    prefix: Prefix
    entries: List[RIBEntry] = field(default_factory=list)

    @property
    def subtype(self) -> TableDumpV2Subtype:
        if self.prefix.version == 6:
            return TableDumpV2Subtype.RIB_IPV6_UNICAST
        return TableDumpV2Subtype.RIB_IPV4_UNICAST

    def encode_body(self) -> bytes:
        out = bytearray(struct.pack("!I", self.sequence))
        out += self.prefix.encode()
        out += struct.pack("!H", len(self.entries))
        for entry in self.entries:
            out += entry.encode()
        return bytes(out)

    @classmethod
    def decode_body(
        cls, data: bytes, version: int, lazy: Optional[bool] = None
    ) -> "RIBPrefixRecord":
        (sequence,) = struct.unpack_from("!I", data, 0)
        prefix, offset = Prefix.decode(data, 4, version=version)
        (entry_count,) = struct.unpack_from("!H", data, offset)
        offset += 2
        entries: List[RIBEntry] = []
        for _ in range(entry_count):
            entry, offset = RIBEntry.decode(data, offset, lazy=lazy)
            entries.append(entry)
        return cls(sequence, prefix, entries)


# ---------------------------------------------------------------------------
# BGP4MP
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class BGP4MPMessage:
    """A BGP4MP_MESSAGE_AS4 record: one BGP UPDATE seen from a peer."""

    peer_asn: int
    local_asn: int
    peer_address: str
    local_address: str
    update: BGPUpdate

    @property
    def afi(self) -> int:
        return AFI_IPV6 if ipaddress.ip_address(self.peer_address).version == 6 else AFI_IPV4

    def encode_body(self) -> bytes:
        peer = ipaddress.ip_address(self.peer_address)
        local = ipaddress.ip_address(self.local_address)
        out = bytearray(struct.pack("!IIHH", self.peer_asn, self.local_asn, 0, self.afi))
        out += peer.packed + local.packed
        out += self.update.encode()
        return bytes(out)

    @classmethod
    def decode_body(cls, data: bytes, lazy: Optional[bool] = None) -> "BGP4MPMessage":
        peer_asn, local_asn, _ifidx, afi = struct.unpack_from("!IIHH", data, 0)
        offset = 12
        addr_len = 16 if afi == AFI_IPV6 else 4
        peer_address = address_str(bytes(data[offset : offset + addr_len]))
        offset += addr_len
        local_address = address_str(bytes(data[offset : offset + addr_len]))
        offset += addr_len
        update = decode_update(data[offset:], lazy=lazy)
        return cls(peer_asn, local_asn, peer_address, local_address, update)


@dataclass(slots=True)
class BGP4MPStateChange:
    """A BGP4MP_STATE_CHANGE_AS4 record: the session FSM moved state."""

    peer_asn: int
    local_asn: int
    peer_address: str
    local_address: str
    old_state: SessionState
    new_state: SessionState

    @property
    def afi(self) -> int:
        return AFI_IPV6 if ipaddress.ip_address(self.peer_address).version == 6 else AFI_IPV4

    def encode_body(self) -> bytes:
        peer = ipaddress.ip_address(self.peer_address)
        local = ipaddress.ip_address(self.local_address)
        out = bytearray(struct.pack("!IIHH", self.peer_asn, self.local_asn, 0, self.afi))
        out += peer.packed + local.packed
        out += struct.pack("!HH", int(self.old_state), int(self.new_state))
        return bytes(out)

    @classmethod
    def decode_body(cls, data: bytes) -> "BGP4MPStateChange":
        peer_asn, local_asn, _ifidx, afi = struct.unpack_from("!IIHH", data, 0)
        offset = 12
        addr_len = 16 if afi == AFI_IPV6 else 4
        peer_address = address_str(bytes(data[offset : offset + addr_len]))
        offset += addr_len
        local_address = address_str(bytes(data[offset : offset + addr_len]))
        offset += addr_len
        old_state, new_state = struct.unpack_from("!HH", data, offset)
        return cls(
            peer_asn,
            local_asn,
            peer_address,
            local_address,
            SessionState(old_state),
            SessionState(new_state),
        )


@dataclass(slots=True)
class CorruptRecord:
    """Placeholder body for a record whose payload could not be decoded."""

    reason: str
    raw: bytes = b""


#: Any decoded MRT body.
MRTBody = Union[
    PeerIndexTable, RIBPrefixRecord, BGP4MPMessage, BGP4MPStateChange, CorruptRecord
]


@dataclass(slots=True)
class MRTRecord:
    """A full MRT record: common header plus a decoded (or corrupt) body."""

    header: MRTHeader
    body: MRTBody

    @property
    def timestamp(self) -> int:
        return self.header.timestamp

    @property
    def is_valid(self) -> bool:
        return not isinstance(self.body, CorruptRecord)

    def encode(self) -> bytes:
        """Encode header + body to wire bytes (valid records only)."""
        if isinstance(self.body, CorruptRecord):
            body_bytes = self.body.raw
        elif isinstance(self.body, RIBPrefixRecord):
            body_bytes = self.body.encode_body()
        else:
            body_bytes = self.body.encode_body()
        return self.header.encode(len(body_bytes)) + body_bytes

    # -- constructors used by the collector simulation ---------------------

    @classmethod
    def peer_index_table(cls, timestamp: int, table: PeerIndexTable) -> "MRTRecord":
        header = MRTHeader(
            timestamp, MRTType.TABLE_DUMP_V2, TableDumpV2Subtype.PEER_INDEX_TABLE
        )
        return cls(header, table)

    @classmethod
    def rib_prefix(cls, timestamp: int, record: RIBPrefixRecord) -> "MRTRecord":
        header = MRTHeader(timestamp, MRTType.TABLE_DUMP_V2, record.subtype)
        return cls(header, record)

    @classmethod
    def bgp4mp_message(cls, timestamp: int, message: BGP4MPMessage) -> "MRTRecord":
        header = MRTHeader(timestamp, MRTType.BGP4MP, BGP4MPSubtype.MESSAGE_AS4)
        return cls(header, message)

    @classmethod
    def bgp4mp_state_change(
        cls, timestamp: int, change: BGP4MPStateChange
    ) -> "MRTRecord":
        header = MRTHeader(timestamp, MRTType.BGP4MP, BGP4MPSubtype.STATE_CHANGE_AS4)
        return cls(header, change)


def decode_record_body(
    header: MRTHeader,
    subtype: int,
    body: bytes,
    intern: Optional[bool] = None,
    lazy: Optional[bool] = None,
) -> MRTBody:
    """Decode the body bytes of a record according to its type and subtype.

    Returns a :class:`CorruptRecord` (never raises) when the body cannot be
    parsed, so the caller can propagate the not-valid status the way
    libBGPStream does.

    A successfully decoded body is passed through the flyweight intern layer
    (:mod:`repro.core.intern`): AS paths, community sets, prefixes, peer
    entries and address strings are replaced by their canonical instances,
    so the duplicates a RIB dump repeats millions of times become garbage
    immediately instead of living as long as the record does.  ``intern``
    follows the process-wide switch when ``None`` and can force the decision
    per call (the MRT reader and the parallel engine thread it through).

    ``lazy`` (default: the global lazy-decode switch) defers path-attribute
    value construction to first read; with interning on, only attributes
    that actually materialise pay the pool lookup.  Callers decoding many
    records should hoist the knob resolution with :func:`make_body_decoder`.
    """
    return make_body_decoder(intern, lazy)(header, subtype, body)


def make_body_decoder(intern: Optional[bool] = None, lazy: Optional[bool] = None):
    """Build a ``(header, subtype, body) -> MRTBody`` batch decoder.

    Resolves the interning pool and the lazy switch **once** so a whole MRT
    buffer / Kafka poll amortises the per-record knob lookups (the batch
    fast path of the zero-copy tier).
    """
    pool = _interning_pool(intern)
    lazy_flag = resolve_lazy(lazy)

    def decode_body(header: MRTHeader, subtype: int, body: bytes) -> MRTBody:
        decoded = _decode_record_body_raw(header, subtype, body, lazy_flag)
        if pool is not None and not isinstance(decoded, CorruptRecord):
            _intern_body(decoded, pool)
        return decoded

    return decode_body


def _decode_record_body_raw(
    header: MRTHeader, subtype: int, body: bytes, lazy: Optional[bool] = None
) -> MRTBody:
    try:
        if header.mrt_type == MRTType.TABLE_DUMP_V2:
            td_subtype = TableDumpV2Subtype(subtype)
            if td_subtype == TableDumpV2Subtype.PEER_INDEX_TABLE:
                return PeerIndexTable.decode_body(body)
            if td_subtype == TableDumpV2Subtype.RIB_IPV4_UNICAST:
                return RIBPrefixRecord.decode_body(body, version=4, lazy=lazy)
            if td_subtype == TableDumpV2Subtype.RIB_IPV6_UNICAST:
                return RIBPrefixRecord.decode_body(body, version=6, lazy=lazy)
            return CorruptRecord(
                f"unsupported TABLE_DUMP_V2 subtype {subtype}", bytes(body)
            )
        if header.mrt_type in (MRTType.BGP4MP, MRTType.BGP4MP_ET):
            bgp_subtype = BGP4MPSubtype(subtype)
            if bgp_subtype in (BGP4MPSubtype.MESSAGE, BGP4MPSubtype.MESSAGE_AS4):
                return BGP4MPMessage.decode_body(body, lazy=lazy)
            if bgp_subtype in (
                BGP4MPSubtype.STATE_CHANGE,
                BGP4MPSubtype.STATE_CHANGE_AS4,
            ):
                return BGP4MPStateChange.decode_body(body)
            return CorruptRecord(f"unsupported BGP4MP subtype {subtype}", bytes(body))
        return CorruptRecord(f"unsupported MRT type {header.mrt_type}", bytes(body))
    except (ValueError, struct.error, IndexError) as exc:
        return CorruptRecord(f"decode error: {exc}", bytes(body))


# ---------------------------------------------------------------------------
# Parse-time flyweight interning
# ---------------------------------------------------------------------------

#: Lazily bound reference to :func:`repro.core.intern.parse_pool`.  Bound on
#: first decode instead of at import time because ``repro.core``'s package
#: init imports (indirectly) this module.
_parse_pool = None


def _interning_pool(intern: Optional[bool]):
    global _parse_pool
    if _parse_pool is None:
        from repro.core.intern import parse_pool

        _parse_pool = parse_pool
    return _parse_pool(intern)


def _intern_body(body: MRTBody, pool) -> None:
    """Replace the values of a freshly decoded body with canonical ones."""
    if isinstance(body, RIBPrefixRecord):
        body.prefix = pool.prefix(body.prefix)
        for entry in body.entries:
            _intern_attributes(entry.attributes, pool)
    elif isinstance(body, BGP4MPMessage):
        body.peer_address = pool.string(body.peer_address)
        body.local_address = pool.string(body.local_address)
        update = body.update
        _intern_prefix_list(update.withdrawn, pool)
        _intern_prefix_list(update.announced, pool)
        _intern_attributes(update.attributes, pool)
    elif isinstance(body, BGP4MPStateChange):
        body.peer_address = pool.string(body.peer_address)
        body.local_address = pool.string(body.local_address)
    elif isinstance(body, PeerIndexTable):
        peers = body.peers
        for index, peer in enumerate(peers):
            peers[index] = pool.intern("peer", peer)


def _intern_attributes(attrs: PathAttributes, pool) -> None:
    if type(attrs) is LazyPathAttributes and attrs.deferred_types:
        # Deferred attributes intern when (if!) they materialise — only
        # filter survivors pay the flyweight lookups.  The eagerly decoded
        # gate fields (MP next hop / NLRI) are canonicalised now.
        attrs.bind_pool(pool)
        if attrs.mp_next_hop is not None:
            attrs.mp_next_hop = pool.string(attrs.mp_next_hop)
        if attrs.mp_reach_nlri:
            _intern_prefix_list(attrs.mp_reach_nlri, pool)
        if attrs.mp_unreach_nlri:
            _intern_prefix_list(attrs.mp_unreach_nlri, pool)
        return
    attrs.as_path = pool.path(attrs.as_path)
    attrs.communities = pool.communities(attrs.communities)
    if attrs.next_hop is not None:
        attrs.next_hop = pool.string(attrs.next_hop)
    if attrs.mp_next_hop is not None:
        attrs.mp_next_hop = pool.string(attrs.mp_next_hop)
    if attrs.mp_reach_nlri:
        _intern_prefix_list(attrs.mp_reach_nlri, pool)
    if attrs.mp_unreach_nlri:
        _intern_prefix_list(attrs.mp_unreach_nlri, pool)


def _intern_prefix_list(prefixes: List[Prefix], pool) -> None:
    for index, prefix in enumerate(prefixes):
        prefixes[index] = pool.prefix(prefix)
