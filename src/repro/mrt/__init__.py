"""MRT routing-information export format (RFC 6396).

RouteViews and RIPE RIS publish their RIB and Updates dumps in the binary
MRT format; libBGPStream opens those dumps through an extended libBGPdump.
This package implements the subset of MRT used by those projects:

* ``TABLE_DUMP_V2`` — PEER_INDEX_TABLE plus RIB_IPV4/IPV6_UNICAST records
  (RIB dumps).
* ``BGP4MP`` / ``BGP4MP_ET`` — MESSAGE_AS4 (update messages) and
  STATE_CHANGE_AS4 (session state changes) records (Updates dumps).

The writer produces genuine binary dump files (optionally gzip-compressed);
the reader parses them back into structured records and *signals* corruption
instead of raising, mirroring the corrupted-read signal the paper added to
libBGPdump (§3.3.3).
"""

from repro.mrt.constants import MRTType, TableDumpV2Subtype, BGP4MPSubtype
from repro.mrt.records import (
    MRTHeader,
    MRTRecord,
    PeerEntry,
    PeerIndexTable,
    RIBEntry,
    RIBPrefixRecord,
    BGP4MPMessage,
    BGP4MPStateChange,
    CorruptRecord,
)
from repro.mrt.writer import MRTDumpWriter, write_rib_dump, write_updates_dump
from repro.mrt.parser import MRTDumpReader, MRTParseError, read_dump

__all__ = [
    "MRTType",
    "TableDumpV2Subtype",
    "BGP4MPSubtype",
    "MRTHeader",
    "MRTRecord",
    "PeerEntry",
    "PeerIndexTable",
    "RIBEntry",
    "RIBPrefixRecord",
    "BGP4MPMessage",
    "BGP4MPStateChange",
    "CorruptRecord",
    "MRTDumpWriter",
    "MRTDumpReader",
    "MRTParseError",
    "write_rib_dump",
    "write_updates_dump",
    "read_dump",
]
