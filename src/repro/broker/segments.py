"""The persistent decoded-segment cache: repeated analyses skip wire decode.

The MRT parser already keeps an in-memory per-file cache (header index +
opt-in decoded records, PR 2), but it dies with the process.  This tier
persists the *decoded* form of each dump file as a **segment** on disk, so
the second analysis of a window — tomorrow, or in another process — never
touches the MRT wire format at all: it unpickles ready-made
:class:`~repro.core.record.BGPStreamRecord` lists instead of decompressing,
scanning and decoding dumps.

Design points:

* **Keyed by the header-index signature.**  A segment belongs to one dump
  file *content*: the key is the file path plus the same ``(st_size,
  st_mtime_ns)`` signature the parser's header index uses
  (:func:`repro.mrt.parser.file_signature`).  A rewritten dump silently
  misses and re-decodes; a stale segment can never be served.
* **Columnar layout.**  A segment stores the per-record header fields as
  packed arrays (timestamps, MRT types/subtypes, statuses, positions) and
  the decoded bodies as one pickled list — cheaper to write and to load
  than a million tiny per-record pickles, and the record wrappers are
  rebuilt in one tight loop on load.
* **Intern-pool-aware dedup.**  Before pickling, every body is canonicalised
  through a fresh :class:`~repro.core.intern.InternPool`, so the thousands
  of repeated AS paths / community sets / prefixes inside a dump collapse
  to single pickled objects (pickle memoises by identity).  On load, bodies
  are re-interned into the process parse pool (when parse-time interning is
  on), so cached records share flyweights with freshly parsed ones.
* **Size-bounded LRU.**  A small SQLite manifest next to the segment files
  tracks byte sizes and a monotonic use counter; storing beyond
  ``max_bytes`` evicts the least-recently-used segments.  Segment files are
  written atomically (temp file + rename) and a segment that fails to load
  (torn write, foreign bytes) is **quarantined** — renamed to
  ``<segment>.corrupt`` (mirroring the broker-db recovery discipline),
  counted, dropped from the manifest and treated as a miss — the wire
  decode path is always there as the fallback, and the preserved bytes are
  there for a post-mortem.
* **Observable.**  Hit/miss/store/eviction counters are kept per cache and
  folded into the ``--decode-stats`` profiling counters
  (:mod:`repro._profiling`), so a warm replay visibly reports where its
  records came from.

The cache object is picklable (it reduces to its configuration), so a
:class:`~repro.core.parallel.ParallelConfig` can carry one into process-pool
workers: each worker reopens the same on-disk cache and SQLite's locking
arbitrates concurrent access.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sqlite3
import threading
from array import array
from typing import List, Optional, Sequence, Tuple

from repro import _metrics
from repro import _profiling as profiling
from repro.core.intern import InternPool
from repro.core.record import BGPStreamRecord, DumpPosition, RecordStatus
from repro.mrt.constants import MRTType
from repro.mrt.parser import file_signature
from repro.mrt.records import MRTHeader, MRTRecord, _intern_body

#: Default on-disk budget for segment payloads (bytes).
DEFAULT_MAX_BYTES = 512 * 1024 * 1024

#: Bump when the segment payload layout changes; old segments then miss.
SEGMENT_VERSION = 1

_STATUSES: Tuple[RecordStatus, ...] = tuple(RecordStatus)
_STATUS_CODE = {status: code for code, status in enumerate(_STATUSES)}
_POSITIONS: Tuple[DumpPosition, ...] = tuple(DumpPosition)
_POSITION_CODE = {position: code for code, position in enumerate(_POSITIONS)}

#: Telemetry (see docs/OBSERVABILITY.md): one labeled counter covering the
#: cache's whole event vocabulary, summed across every SegmentCache handle
#: in the process.  Updated only while ``repro._metrics.enabled``.
_cache_events = _metrics.counter(
    "repro_segment_cache_events_total",
    "Segment-cache outcomes across all cache handles "
    "(hit, miss, store, evict, corrupt).",
    labelnames=("event",),
)

_MANIFEST_SCHEMA = """
CREATE TABLE IF NOT EXISTS segments (
    key TEXT PRIMARY KEY,
    filename TEXT NOT NULL,
    size_bytes INTEGER NOT NULL,
    records INTEGER NOT NULL,
    use_seq INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_segments_lru ON segments (use_seq);
"""


class SegmentCache:
    """A size-bounded, persistent cache of decoded dump-file segments."""

    def __init__(self, root: str, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.root = os.path.abspath(root)
        self.max_bytes = max_bytes
        os.makedirs(self.root, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = self._open_manifest()
        #: Introspection counters for this handle (see also stats()).
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.corrupt = 0

    # -- lifecycle ---------------------------------------------------------

    def _open_manifest(self) -> sqlite3.Connection:
        path = os.path.join(self.root, "segments.db")
        conn = sqlite3.connect(path, check_same_thread=False, timeout=30.0)
        try:
            conn.executescript(_MANIFEST_SCHEMA)
            conn.commit()
        except sqlite3.DatabaseError:
            # A corrupt manifest forfeits the cached segments (they are a
            # cache — the decode path regenerates them) but never the run.
            conn.close()
            os.replace(path, path + ".corrupt")
            conn = sqlite3.connect(path, check_same_thread=False, timeout=30.0)
            conn.executescript(_MANIFEST_SCHEMA)
            conn.commit()
        # The manifest is LRU bookkeeping for a regenerable cache: losing a
        # use_seq bump (or even a whole row) to a crash only costs a future
        # cache miss, so per-commit fsyncs buy nothing but latency on the
        # hot load path.
        conn.execute("PRAGMA synchronous = OFF")
        return conn

    def close(self) -> None:
        self._conn.close()

    def __getstate__(self) -> Tuple[str, int]:
        # Workers reopen the same on-disk cache from its configuration.
        return (self.root, self.max_bytes)

    def __setstate__(self, state: Tuple[str, int]) -> None:
        self.__init__(state[0], max_bytes=state[1])

    def __repr__(self) -> str:
        return f"SegmentCache(root={self.root!r}, max_bytes={self.max_bytes})"

    # -- keys --------------------------------------------------------------

    @staticmethod
    def key_for(path: str, signature: Tuple[int, int]) -> str:
        """The segment key of one dump-file content."""
        digest = hashlib.sha1(os.path.abspath(path).encode("utf-8")).hexdigest()[:16]
        return f"{digest}-{signature[0]}-{signature[1]}"

    # -- the cache API -----------------------------------------------------

    def load(self, spec) -> Optional[List[BGPStreamRecord]]:
        """The cached records of ``spec``'s dump file, or None on a miss.

        ``spec`` is a :class:`~repro.core.interfaces.DumpFileSpec` (anything
        with ``path``/``project``/``collector``/``dump_type``/``timestamp``
        duck-types).  A hit is only possible while the on-disk file still
        matches the signature the segment was stored under.
        """
        signature = file_signature(spec.path)
        if signature is None:
            return self._miss()
        key = self.key_for(spec.path, signature)
        with self._lock:
            row = self._conn.execute(
                "SELECT filename FROM segments WHERE key = ?", (key,)
            ).fetchone()
        if row is None:
            return self._miss()
        filename = os.path.join(self.root, row[0])
        try:
            with open(filename, "rb") as handle:
                payload = pickle.load(handle)
            records = _rebuild_records(payload, spec)
        except Exception:
            # Torn write, foreign bytes, or a layout from another version:
            # quarantine the segment (preserve the bytes as `.corrupt` for a
            # post-mortem, like the broker-db recovery discipline), count it,
            # and fall back to the decode path.
            self._quarantine(key, filename)
            return self._miss()
        self._touch(key)
        self.hits += 1
        if _metrics.enabled:
            _cache_events.inc(event="hit")
        counters = profiling.counters
        if counters is not None:
            counters.segment_hits += 1
        return records

    def store(
        self,
        spec,
        records: Sequence[BGPStreamRecord],
        signature: Optional[Tuple[int, int]] = None,
    ) -> bool:
        """Persist the decoded records of one dump file; returns success.

        ``signature`` should be the file signature read *before* the file
        was parsed (so a dump replaced mid-read is never stored under the
        new content's key); it defaults to the signature at call time.
        """
        if signature is None:
            signature = file_signature(spec.path)
        if signature is None:
            return False
        key = self.key_for(spec.path, signature)
        payload = _build_payload(spec, records)
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        if len(blob) > self.max_bytes:
            return False
        filename = key + ".seg"
        final_path = os.path.join(self.root, filename)
        tmp_path = final_path + f".tmp.{os.getpid()}.{threading.get_ident()}"
        try:
            with open(tmp_path, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_path, final_path)
        except OSError:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            return False
        with self._lock:
            seq = self._next_seq_locked()
            self._conn.execute(
                "INSERT INTO segments (key, filename, size_bytes, records, use_seq) "
                "VALUES (?, ?, ?, ?, ?) "
                "ON CONFLICT(key) DO UPDATE SET filename = excluded.filename, "
                "size_bytes = excluded.size_bytes, records = excluded.records, "
                "use_seq = excluded.use_seq",
                (key, filename, len(blob), len(records), seq),
            )
            self._conn.commit()
            self._evict_locked(keep_key=key)
        self.stores += 1
        if _metrics.enabled:
            _cache_events.inc(event="store")
        return True

    def clear(self) -> None:
        """Drop every segment and reset the manifest."""
        with self._lock:
            rows = self._conn.execute("SELECT filename FROM segments").fetchall()
            self._conn.execute("DELETE FROM segments")
            self._conn.commit()
        for (filename,) in rows:
            try:
                os.remove(os.path.join(self.root, filename))
            except OSError:
                pass

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """Counters plus the manifest's current size/segment totals."""
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(size_bytes), 0), "
                "COALESCE(SUM(records), 0) FROM segments"
            ).fetchone()
        return {
            "segments": row[0],
            "bytes_used": row[1],
            "records_cached": row[2],
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
        }

    # -- internals ---------------------------------------------------------

    def _miss(self) -> None:
        self.misses += 1
        if _metrics.enabled:
            _cache_events.inc(event="miss")
        counters = profiling.counters
        if counters is not None:
            counters.segment_misses += 1
        return None

    def _touch(self, key: str) -> None:
        with self._lock:
            seq = self._next_seq_locked()
            self._conn.execute(
                "UPDATE segments SET use_seq = ? WHERE key = ?", (seq, key)
            )
            self._conn.commit()

    def _forget(self, key: str, filename: str) -> None:
        with self._lock:
            self._conn.execute("DELETE FROM segments WHERE key = ?", (key,))
            self._conn.commit()
        try:
            os.remove(filename)
        except OSError:
            pass

    def _quarantine(self, key: str, filename: str) -> None:
        """Preserve an unreadable segment as ``.corrupt`` and drop its row."""
        with self._lock:
            self._conn.execute("DELETE FROM segments WHERE key = ?", (key,))
            self._conn.commit()
        try:
            os.replace(filename, filename + ".corrupt")
        except OSError:
            pass
        self.corrupt += 1
        if _metrics.enabled:
            _cache_events.inc(event="corrupt")
        counters = profiling.counters
        if counters is not None:
            counters.segment_corrupt += 1

    def _next_seq_locked(self) -> int:
        row = self._conn.execute("SELECT COALESCE(MAX(use_seq), 0) FROM segments").fetchone()
        return row[0] + 1

    def _evict_locked(self, keep_key: str) -> None:
        while True:
            total = self._conn.execute(
                "SELECT COALESCE(SUM(size_bytes), 0) FROM segments"
            ).fetchone()[0]
            if total <= self.max_bytes:
                return
            victim = self._conn.execute(
                "SELECT key, filename FROM segments WHERE key != ? "
                "ORDER BY use_seq LIMIT 1",
                (keep_key,),
            ).fetchone()
            if victim is None:
                return
            self._conn.execute("DELETE FROM segments WHERE key = ?", (victim[0],))
            self._conn.commit()
            try:
                os.remove(os.path.join(self.root, victim[1]))
            except OSError:
                pass
            self.evictions += 1
            if _metrics.enabled:
                _cache_events.inc(event="evict")


# ---------------------------------------------------------------------------
# Columnar (de)serialisation
# ---------------------------------------------------------------------------


def _build_payload(spec, records: Sequence[BGPStreamRecord]) -> dict:
    """Flatten a record list into the columnar segment payload."""
    timestamps = array("q")
    mrt_types = array("H")
    subtypes = array("H")
    statuses = bytearray()
    positions = bytearray()
    peer_refs = array("l")
    bodies: List[object] = []
    peer_tables: List[object] = []
    peer_table_index: dict = {}
    routers: List[str] = []
    for record in records:
        statuses.append(_STATUS_CODE[record.status])
        positions.append(_POSITION_CODE[record.dump_position])
        routers.append(record.router)
        if record.mrt is not None:
            header = record.mrt.header
            timestamps.append(header.timestamp)
            mrt_types.append(int(header.mrt_type))
            subtypes.append(int(header.subtype))
            bodies.append(record.mrt.body)
        else:
            timestamps.append(-1)
            mrt_types.append(0)
            subtypes.append(0)
            bodies.append(None)
        table = record.peer_table
        if table is None:
            peer_refs.append(-1)
        else:
            # Unique tables only; the pickle memo makes a table that is also
            # one of the bodies (the PEER_INDEX_TABLE record) free to store.
            ref = peer_table_index.get(id(table))
            if ref is None:
                ref = len(peer_tables)
                peer_tables.append(table)
                peer_table_index[id(table)] = ref
            peer_refs.append(ref)
    # Intern-pool-aware dedup: canonicalise every body through one local
    # pool so repeated paths/community-sets/prefixes become shared objects,
    # which the pickle memo then stores exactly once.
    pool = InternPool()
    for body in bodies:
        if body is not None:
            _intern_body(body, pool)
    return {
        "version": SEGMENT_VERSION,
        "path": spec.path,
        "timestamps": timestamps,
        "mrt_types": mrt_types,
        "subtypes": subtypes,
        "statuses": bytes(statuses),
        "positions": bytes(positions),
        "peer_refs": peer_refs,
        "peer_tables": peer_tables,
        "bodies": bodies,
        # Archive replay never sets routers; drop the column entirely then.
        "routers": routers if any(routers) else None,
    }


def _rebuild_records(payload: dict, spec) -> List[BGPStreamRecord]:
    """Reinflate the record wrappers of one segment payload."""
    if payload.get("version") != SEGMENT_VERSION:
        raise ValueError(f"unsupported segment version {payload.get('version')!r}")
    # No re-interning on load: the pickle memo already restores every
    # intra-segment shared object (the store-side intern pass canonicalised
    # them), and rebuilding flyweight identity across segments would cost
    # more per replay than the retained-memory win it buys.
    bodies = payload["bodies"]
    timestamps = payload["timestamps"]
    mrt_types = payload["mrt_types"]
    subtypes = payload["subtypes"]
    statuses = payload["statuses"]
    positions = payload["positions"]
    peer_refs = payload["peer_refs"]
    peer_tables = payload["peer_tables"]
    routers = payload["routers"]
    records: List[BGPStreamRecord] = []
    for index, body in enumerate(bodies):
        mrt = None
        if body is not None:
            header = MRTHeader(
                timestamps[index], MRTType(mrt_types[index]), subtypes[index]
            )
            mrt = MRTRecord(header, body)
        peer_ref = peer_refs[index]
        records.append(
            BGPStreamRecord(
                project=spec.project,
                collector=spec.collector,
                dump_type=spec.dump_type,
                dump_time=spec.timestamp,
                status=_STATUSES[statuses[index]],
                dump_position=_POSITIONS[positions[index]],
                mrt=mrt,
                peer_table=peer_tables[peer_ref] if peer_ref >= 0 else None,
                router=routers[index] if routers is not None else "",
            )
        )
    return records
