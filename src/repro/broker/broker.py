"""The Broker query service (§3.2).

libBGPStream's broker data interface alternates between meta-data queries
and reading the dump files the responses point to.  The Broker therefore
exposes exactly that contract:

* a :class:`BrokerQuery` carries the stream parameters (projects,
  collectors, dump types, time interval, live flag);
* :meth:`Broker.get_window` answers with a :class:`BrokerResponse`
  containing the dump files of the next *window* of data (bounded span —
  "response windowing for overload protection"), plus enough information
  for the client to ask for the following window;
* an empty response in historical mode means the stream is finished; in
  live mode it means "nothing new yet — poll again later".

Production metadata-tier features:

* **cursor pagination** — both :meth:`Broker.get_window` and
  :meth:`Broker.get_new_files_page` accept a ``page_size`` (bounded by
  :data:`MAX_PAGE_SIZE`) and return an opaque ``next_cursor``
  (:mod:`repro.broker.cursor`).  Pages follow a stable keyset order
  (``(timestamp, id)`` for windows, ``(available_at, id)`` for publication
  queries), so pagination never repeats or skips files even while the
  crawler keeps appending rows — and a cursor alone is enough to resume:
  ``get_window(query, cursor=response.next_cursor)``.
* **incremental crawling** — the Broker crawls its archives on demand
  before answering; with the resumable crawler
  (:mod:`repro.broker.crawler`) each crawl costs O(new files).

The polite, retrying client for this API is
:class:`repro.broker.client.BrokerClient`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.broker.crawler import ArchiveCrawler
from repro.broker.cursor import CursorError, decode_cursor, encode_cursor, query_fingerprint
from repro.broker.db import DumpFileRecord, MetadataDB
from repro.collectors.archive import Archive

#: Default maximum span of data (seconds) returned in a single response;
#: the paper notes broker responses cover up to ~2 hours of data.
DEFAULT_WINDOW_SPAN = 2 * 3600

#: Default and hard maximum number of files per paginated response.
DEFAULT_PAGE_SIZE = 500
MAX_PAGE_SIZE = 2000


@dataclass(frozen=True)
class BrokerQuery:
    """Parameters identifying the data a stream wants."""

    projects: Tuple[str, ...] = ()
    collectors: Tuple[str, ...] = ()
    dump_types: Tuple[str, ...] = ()  # "ribs" / "updates"
    interval_start: int = 0
    #: None means live mode: the stream has no end.
    interval_end: Optional[int] = None

    @property
    def live(self) -> bool:
        return self.interval_end is None

    def fingerprint(self) -> str:
        """Digest binding cursors to this query's parameters."""
        return query_fingerprint(self)


@dataclass
class BrokerResponse:
    """One window (or page of a window) of dump-file meta-data."""

    files: List[DumpFileRecord] = field(default_factory=list)
    window_start: int = 0
    window_end: int = 0
    #: True if (as far as the Broker can tell right now) more data may follow.
    more_data: bool = False
    #: Opaque resume token: echo it back as ``cursor=`` to fetch the next
    #: page (or the next window, once this window is exhausted).  None when
    #: the response completes the query.
    next_cursor: Optional[str] = None

    def __len__(self) -> int:
        return len(self.files)

    def __iter__(self):
        return iter(self.files)

    @property
    def empty(self) -> bool:
        return not self.files


class Broker:
    """The meta-data provider queried by libBGPStream."""

    def __init__(
        self,
        archives: Optional[Sequence[Archive]] = None,
        db: Optional[MetadataDB] = None,
        window_span: int = DEFAULT_WINDOW_SPAN,
    ) -> None:
        self.db = db or MetadataDB()
        self.crawler = ArchiveCrawler(self.db, list(archives or []))
        self.window_span = window_span
        self.queries_served = 0

    def add_archive(self, archive: Archive) -> None:
        self.crawler.add_archive(archive)

    # -- the query API ----------------------------------------------------------

    def get_window(
        self,
        query: BrokerQuery,
        from_time: Optional[int] = None,
        now: Optional[float] = None,
        cursor: Optional[str] = None,
        page_size: Optional[int] = None,
    ) -> BrokerResponse:
        """Return the next window (or page of a window) of dump files.

        ``from_time`` is where the previous window ended (defaults to the
        query's interval start).  ``now`` bounds publication visibility: in
        live mode only files already published at ``now`` are returned; in
        historical mode it defaults to unbounded (all files are assumed
        published, as they were collected in the past).

        ``page_size`` bounds the number of files per response (capped at
        :data:`MAX_PAGE_SIZE`); when a window holds more files, the
        response carries a ``next_cursor`` and ``more_data`` stays True.
        ``cursor`` resumes from a previous response's ``next_cursor`` —
        when given, ``from_time`` is ignored (the cursor knows better).  A
        cursor from a different query raises
        :class:`~repro.broker.cursor.CursorError`.
        """
        self.queries_served += 1
        visible_at = now
        self.crawler.crawl(now=None if visible_at is None else visible_at)

        fingerprint = query.fingerprint()
        after: Optional[Tuple[float, int]] = None
        if cursor is not None:
            payload = decode_cursor(cursor, fingerprint)
            if "w" not in payload:
                raise CursorError("not a window cursor")
            window_start = int(payload["w"])
            if "ts" in payload:
                after = (payload["ts"], payload["id"])
            # Later pages of the first window keep its intersection
            # semantics (the "f" flag travels in the cursor).
            first_window = bool(payload.get("f"))
        else:
            window_start = query.interval_start if from_time is None else from_time
            first_window = from_time is None

        hard_end = query.interval_end
        window_end = window_start + self.window_span
        if hard_end is not None:
            window_end = min(window_end, hard_end)
            if window_start >= hard_end:
                return BrokerResponse([], window_start, window_start, more_data=False)

        limit = None
        if page_size is not None:
            if page_size <= 0:
                raise ValueError("page_size must be positive")
            limit = min(page_size, MAX_PAGE_SIZE)

        # Windows are half-open [window_start, window_end): a file whose
        # nominal start falls on window_end belongs to the next window (so
        # it is never returned twice), except on the stream's very last
        # window where the end is inclusive.  The first window additionally
        # includes earlier-starting files whose data interval reaches into
        # it (intersection semantics); follow-up windows exclude them —
        # the previous window already returned them.
        last_window = hard_end is not None and window_end == hard_end

        def in_window(f: DumpFileRecord) -> bool:
            return (
                f.timestamp < window_end or (last_window and f.timestamp <= hard_end)
            ) and (first_window or f.timestamp >= window_start)

        def fetch(fetch_after, fetch_limit):
            return self.db.query_page(
                projects=list(query.projects) or None,
                collectors=list(query.collectors) or None,
                dump_types=list(query.dump_types) or None,
                interval_start=window_start,
                interval_end=window_end,
                visible_at=visible_at,
                order="time",
                after=fetch_after,
                limit=fetch_limit,
            )

        if limit is None:
            files = [f for f in fetch(after, None) if in_window(f)]
        else:
            # Fill the page to limit+1 in-window rows (the +1 detects further
            # pages without a second query).  Rows the window filter rejects
            # — boundary files of the next window, overlap files already
            # served by the previous one — must not eat the page budget, so
            # keep fetching past them until the page fills or the set of
            # intersecting rows is exhausted.
            files = []
            fetch_after = after
            while len(files) <= limit:
                rows = fetch(fetch_after, limit + 1)
                files.extend(f for f in rows if in_window(f))
                if len(rows) <= limit:  # fewer than asked: nothing left
                    break
                tail = rows[-1]
                fetch_after = (tail.timestamp, tail.file_id)

        page_full = limit is not None and len(files) > limit
        if page_full:
            files = files[:limit]

        more_windows = True if hard_end is None else window_end < hard_end
        if page_full:
            tail = files[-1]
            payload = {"w": window_start, "ts": tail.timestamp, "id": tail.file_id}
            if first_window:
                payload["f"] = 1
            next_cursor = encode_cursor(payload, fingerprint)
            more = True
        else:
            next_cursor = (
                encode_cursor({"w": window_end}, fingerprint) if more_windows else None
            )
            more = more_windows
        return BrokerResponse(
            files=files,
            window_start=window_start,
            window_end=window_end,
            more_data=more,
            next_cursor=next_cursor,
        )

    def get_new_files(
        self,
        query: BrokerQuery,
        published_after: Optional[float] = None,
        now: Optional[float] = None,
    ) -> List[DumpFileRecord]:
        """Live-mode query: files *published* since ``published_after``.

        The real Broker supports a "data added since" style of query so that
        live clients never miss files that are published late or out of
        order: instead of windowing on nominal dump time, the client asks
        for anything that appeared on the archive since its previous poll.
        Results are restricted to data intervals at or after the query's
        interval start and sorted by nominal timestamp (best-effort record
        interleaving is the stream's job).
        """
        self.queries_served += 1
        self.crawler.crawl(now=now)
        files = self.db.query(
            projects=list(query.projects) or None,
            collectors=list(query.collectors) or None,
            dump_types=list(query.dump_types) or None,
            interval_start=query.interval_start,
            interval_end=None,
            visible_at=now,
        )
        if published_after is not None:
            files = [f for f in files if f.available_at > published_after]
        return files

    def get_new_files_page(
        self,
        query: BrokerQuery,
        published_after: Optional[float] = None,
        now: Optional[float] = None,
        cursor: Optional[str] = None,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> BrokerResponse:
        """Paginated :meth:`get_new_files`: publication-ordered keyset pages.

        Pages are ordered by ``(available_at, id)`` — publication order —
        so a live client can persist the ``next_cursor`` instead of a
        wall-clock watermark and never re-fetch files across restarts, even
        when publications arrive out of nominal-time order.  The cursor is
        a durable watermark: it is returned whenever the page has files
        (``more_data`` says whether more are ready *right now*), and a
        caught-up client keeps polling with the same cursor until new
        publications appear.
        """
        self.queries_served += 1
        self.crawler.crawl(now=now)
        fingerprint = query.fingerprint()
        after: Optional[Tuple[float, int]] = None
        if cursor is not None:
            payload = decode_cursor(cursor, fingerprint)
            if "pub" not in payload:
                raise CursorError("not a publication cursor")
            after = (payload["pub"], payload["id"])
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        limit = min(page_size, MAX_PAGE_SIZE)
        files = self.db.query_page(
            projects=list(query.projects) or None,
            collectors=list(query.collectors) or None,
            dump_types=list(query.dump_types) or None,
            interval_start=query.interval_start,
            interval_end=None,
            visible_at=now,
            order="published",
            after=after,
            limit=limit + 1,
        )
        if published_after is not None:
            files = [f for f in files if f.available_at > published_after]
        page_full = len(files) > limit
        if page_full:
            files = files[:limit]
        next_cursor = None
        if files:
            tail = files[-1]
            next_cursor = encode_cursor(
                {"pub": tail.available_at, "id": tail.file_id}, fingerprint
            )
        return BrokerResponse(
            files=files,
            window_start=query.interval_start,
            window_end=query.interval_start,
            more_data=page_full,
            next_cursor=next_cursor,
        )

    def iter_windows(
        self,
        query: BrokerQuery,
        now: Optional[float] = None,
        page_size: Optional[int] = None,
    ):
        """Iterate successive historical windows until the interval is covered.

        With ``page_size`` set, large windows arrive as multiple paginated
        responses (driven by their cursors).  Only valid for historical
        (bounded) queries; live-mode pacing is the caller's responsibility
        because it involves polling.
        """
        if query.live:
            raise ValueError("iter_windows requires a bounded (historical) query")
        if page_size is not None:
            cursor: Optional[str] = None
            while True:
                response = self.get_window(
                    query, cursor=cursor, page_size=page_size, now=now
                )
                yield response
                cursor = response.next_cursor
                if cursor is None:
                    return
        position = query.interval_start
        while position < (query.interval_end or 0):
            response = self.get_window(query, from_time=position, now=now)
            yield response
            position = response.window_end
