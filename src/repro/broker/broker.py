"""The Broker query service (§3.2).

libBGPStream's broker data interface alternates between meta-data queries
and reading the dump files the responses point to.  The Broker therefore
exposes exactly that contract:

* a :class:`BrokerQuery` carries the stream parameters (projects,
  collectors, dump types, time interval, live flag);
* :meth:`Broker.get_window` answers with a :class:`BrokerResponse`
  containing the dump files of the next *window* of data (bounded span —
  "response windowing for overload protection"), plus enough information
  for the client to ask for the following window;
* an empty response in historical mode means the stream is finished; in
  live mode it means "nothing new yet — poll again later".

The Broker scrapes its archives on demand (and remembers what it has seen),
which stands in for the real Broker's continuous crawling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.broker.crawler import ArchiveCrawler
from repro.broker.db import DumpFileRecord, MetadataDB
from repro.collectors.archive import Archive

#: Default maximum span of data (seconds) returned in a single response;
#: the paper notes broker responses cover up to ~2 hours of data.
DEFAULT_WINDOW_SPAN = 2 * 3600


@dataclass(frozen=True)
class BrokerQuery:
    """Parameters identifying the data a stream wants."""

    projects: Tuple[str, ...] = ()
    collectors: Tuple[str, ...] = ()
    dump_types: Tuple[str, ...] = ()  # "ribs" / "updates"
    interval_start: int = 0
    #: None means live mode: the stream has no end.
    interval_end: Optional[int] = None

    @property
    def live(self) -> bool:
        return self.interval_end is None


@dataclass
class BrokerResponse:
    """One window of dump-file meta-data."""

    files: List[DumpFileRecord] = field(default_factory=list)
    window_start: int = 0
    window_end: int = 0
    #: True if (as far as the Broker can tell right now) more data may follow.
    more_data: bool = False

    def __len__(self) -> int:
        return len(self.files)

    def __iter__(self):
        return iter(self.files)

    @property
    def empty(self) -> bool:
        return not self.files


class Broker:
    """The meta-data provider queried by libBGPStream."""

    def __init__(
        self,
        archives: Optional[Sequence[Archive]] = None,
        db: Optional[MetadataDB] = None,
        window_span: int = DEFAULT_WINDOW_SPAN,
    ) -> None:
        self.db = db or MetadataDB()
        self.crawler = ArchiveCrawler(self.db, list(archives or []))
        self.window_span = window_span
        self.queries_served = 0

    def add_archive(self, archive: Archive) -> None:
        self.crawler.add_archive(archive)

    # -- the query API ----------------------------------------------------------

    def get_window(
        self,
        query: BrokerQuery,
        from_time: Optional[int] = None,
        now: Optional[float] = None,
    ) -> BrokerResponse:
        """Return the next window of dump files for ``query``.

        ``from_time`` is where the previous window ended (defaults to the
        query's interval start).  ``now`` bounds publication visibility: in
        live mode only files already published at ``now`` are returned; in
        historical mode it defaults to unbounded (all files are assumed
        published, as they were collected in the past).
        """
        self.queries_served += 1
        visible_at = now
        self.crawler.crawl(now=None if visible_at is None else visible_at)

        window_start = query.interval_start if from_time is None else from_time
        hard_end = query.interval_end
        window_end = window_start + self.window_span
        if hard_end is not None:
            window_end = min(window_end, hard_end)
            if window_start >= hard_end:
                return BrokerResponse([], window_start, window_start, more_data=False)

        files = self.db.query(
            projects=list(query.projects) or None,
            collectors=list(query.collectors) or None,
            dump_types=list(query.dump_types) or None,
            interval_start=window_start,
            interval_end=window_end,
            visible_at=visible_at,
        )
        # Windows are half-open [window_start, window_end): a file whose
        # nominal start falls on window_end belongs to the next window (so
        # it is never returned twice), except on the stream's very last
        # window where the end is inclusive.
        last_window = hard_end is not None and window_end == hard_end
        files = [
            f
            for f in files
            if f.timestamp < window_end or (last_window and f.timestamp <= hard_end)
        ]
        # On follow-up windows, drop files the previous window already
        # returned (their nominal start precedes this window).
        if from_time is not None:
            files = [f for f in files if f.timestamp >= window_start]

        more = True if hard_end is None else window_end < hard_end
        return BrokerResponse(
            files=files,
            window_start=window_start,
            window_end=window_end,
            more_data=more,
        )

    def get_new_files(
        self,
        query: BrokerQuery,
        published_after: Optional[float] = None,
        now: Optional[float] = None,
    ) -> List[DumpFileRecord]:
        """Live-mode query: files *published* since ``published_after``.

        The real Broker supports a "data added since" style of query so that
        live clients never miss files that are published late or out of
        order: instead of windowing on nominal dump time, the client asks
        for anything that appeared on the archive since its previous poll.
        Results are restricted to data intervals at or after the query's
        interval start and sorted by nominal timestamp (best-effort record
        interleaving is the stream's job).
        """
        self.queries_served += 1
        self.crawler.crawl(now=now)
        files = self.db.query(
            projects=list(query.projects) or None,
            collectors=list(query.collectors) or None,
            dump_types=list(query.dump_types) or None,
            interval_start=query.interval_start,
            interval_end=None,
            visible_at=now,
        )
        if published_after is not None:
            files = [f for f in files if f.available_at > published_after]
        return files

    def iter_windows(self, query: BrokerQuery, now: Optional[float] = None):
        """Iterate successive historical windows until the interval is covered.

        Only valid for historical (bounded) queries; live-mode pacing is the
        caller's responsibility because it involves polling.
        """
        if query.live:
            raise ValueError("iter_windows requires a bounded (historical) query")
        cursor = query.interval_start
        while cursor < (query.interval_end or 0):
            response = self.get_window(query, from_time=cursor, now=now)
            yield response
            cursor = response.window_end
