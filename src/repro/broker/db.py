"""The Broker's SQL meta-data store.

The real Broker keeps its index in an SQL database; we use SQLite (file or
in-memory), which keeps the data model identical — one row per dump file
with its project, collector, type, nominal time interval, location and
publication time — without requiring a database server.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class DumpFileRecord:
    """One indexed dump file."""

    project: str
    collector: str
    dump_type: str
    timestamp: int
    duration: int
    path: str
    available_at: float

    @property
    def interval_end(self) -> int:
        return self.timestamp + self.duration


_SCHEMA = """
CREATE TABLE IF NOT EXISTS dump_files (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    project TEXT NOT NULL,
    collector TEXT NOT NULL,
    dump_type TEXT NOT NULL,
    timestamp INTEGER NOT NULL,
    duration INTEGER NOT NULL,
    path TEXT NOT NULL UNIQUE,
    available_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_dump_time ON dump_files (timestamp);
CREATE INDEX IF NOT EXISTS idx_dump_coll ON dump_files (project, collector, dump_type);
"""


class MetadataDB:
    """SQLite-backed index of dump-file meta-data."""

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        if path != ":memory:":
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._lock = threading.Lock()
        with self._lock:
            self._conn.executescript(_SCHEMA)
            self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    # -- writes ---------------------------------------------------------------

    def insert(self, record: DumpFileRecord) -> bool:
        """Insert one record; returns False if the path was already indexed."""
        with self._lock:
            try:
                self._conn.execute(
                    "INSERT INTO dump_files "
                    "(project, collector, dump_type, timestamp, duration, path, available_at) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (
                        record.project,
                        record.collector,
                        record.dump_type,
                        record.timestamp,
                        record.duration,
                        record.path,
                        record.available_at,
                    ),
                )
                self._conn.commit()
                return True
            except sqlite3.IntegrityError:
                return False

    def insert_many(self, records: Iterable[DumpFileRecord]) -> int:
        return sum(1 for record in records if self.insert(record))

    def known_paths(self) -> set:
        with self._lock:
            rows = self._conn.execute("SELECT path FROM dump_files").fetchall()
        return {row[0] for row in rows}

    # -- queries ---------------------------------------------------------------

    def query(
        self,
        projects: Optional[Sequence[str]] = None,
        collectors: Optional[Sequence[str]] = None,
        dump_types: Optional[Sequence[str]] = None,
        interval_start: Optional[int] = None,
        interval_end: Optional[int] = None,
        visible_at: Optional[float] = None,
    ) -> List[DumpFileRecord]:
        """Dump files whose data interval intersects ``[interval_start, interval_end]``.

        All filters are optional; ``visible_at`` hides files not yet
        published at that instant (live-mode semantics).
        """
        clauses: List[str] = []
        params: List[object] = []
        if projects:
            clauses.append(f"project IN ({','.join('?' * len(projects))})")
            params.extend(projects)
        if collectors:
            clauses.append(f"collector IN ({','.join('?' * len(collectors))})")
            params.extend(collectors)
        if dump_types:
            clauses.append(f"dump_type IN ({','.join('?' * len(dump_types))})")
            params.extend(dump_types)
        if interval_end is not None:
            clauses.append("timestamp <= ?")
            params.append(interval_end)
        if interval_start is not None:
            clauses.append("timestamp + duration >= ?")
            params.append(interval_start)
        if visible_at is not None:
            clauses.append("available_at <= ?")
            params.append(visible_at)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        sql = (
            "SELECT project, collector, dump_type, timestamp, duration, path, available_at "
            f"FROM dump_files {where} ORDER BY timestamp, project, collector, dump_type"
        )
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        return [DumpFileRecord(*row) for row in rows]

    def latest_available_time(self, visible_at: Optional[float] = None) -> Optional[int]:
        """The end of the newest visible data interval (None if empty)."""
        sql = "SELECT MAX(timestamp + duration) FROM dump_files"
        params: Tuple[object, ...] = ()
        if visible_at is not None:
            sql += " WHERE available_at <= ?"
            params = (visible_at,)
        with self._lock:
            row = self._conn.execute(sql, params).fetchone()
        return row[0] if row and row[0] is not None else None

    def count(self) -> int:
        with self._lock:
            return self._conn.execute("SELECT COUNT(*) FROM dump_files").fetchone()[0]

    def collectors(self) -> List[str]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT DISTINCT collector FROM dump_files ORDER BY collector"
            ).fetchall()
        return [row[0] for row in rows]
