"""The Broker's SQL meta-data store.

The real Broker keeps its index in an SQL database; we use SQLite (file or
in-memory), which keeps the data model identical — one row per dump file
with its project, collector, type, nominal time interval, location and
publication time — without requiring a database server.

Production-tier features on top of the plain index:

* **keyset pagination** (:meth:`MetadataDB.query_page`): rows are served in
  a stable total order — ``(timestamp, id)`` for time-ordered catalog
  queries, ``(available_at, id)`` for publication-ordered live queries —
  and a page resumes strictly *after* the previous page's last sort key.
  Because ``id`` is an append-only autoincrement, concurrent archive growth
  never shifts, repeats or skips rows in an in-flight pagination.
* **crawl state** (:meth:`get_crawl_state` / :meth:`apply_crawl_batch`):
  per-archive high-water marks persisted transactionally *with* the batch
  of rows they cover, so an interrupted crawl resumes from its last
  committed batch without losing or re-indexing files.
* **corruption tolerance**: a database file that SQLite rejects is moved
  aside and recreated empty; :attr:`MetadataDB.recovered_from_corruption`
  tells the crawler to fall back to a full re-crawl (duplicate inserts are
  absorbed by the ``path`` unique constraint, so a re-crawl is always
  safe).
"""

from __future__ import annotations

import os
import sqlite3
import threading
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class DumpFileRecord:
    """One indexed dump file."""

    project: str
    collector: str
    dump_type: str
    timestamp: int
    duration: int
    path: str
    available_at: float
    #: Database row id (the pagination tie-breaker); None when the record
    #: has not been through the database yet.
    file_id: Optional[int] = None

    @property
    def interval_end(self) -> int:
        return self.timestamp + self.duration


@dataclass(frozen=True)
class CrawlState:
    """The persisted progress of one archive's incremental crawl."""

    archive_id: str
    #: Index entries before this position have all been processed; a resumed
    #: crawl starts scanning here.
    position: int
    #: Highest publication time committed so far (introspection/metrics).
    last_available: float
    #: Total files this archive has contributed to the index.
    files_indexed: int


_SCHEMA = """
CREATE TABLE IF NOT EXISTS dump_files (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    project TEXT NOT NULL,
    collector TEXT NOT NULL,
    dump_type TEXT NOT NULL,
    timestamp INTEGER NOT NULL,
    duration INTEGER NOT NULL,
    path TEXT NOT NULL UNIQUE,
    available_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_dump_time ON dump_files (timestamp, id);
CREATE INDEX IF NOT EXISTS idx_dump_coll ON dump_files (project, collector, dump_type);
CREATE INDEX IF NOT EXISTS idx_dump_avail ON dump_files (available_at, id);
CREATE TABLE IF NOT EXISTS crawl_state (
    archive_id TEXT PRIMARY KEY,
    position INTEGER NOT NULL,
    last_available REAL NOT NULL,
    files_indexed INTEGER NOT NULL,
    updated_at REAL NOT NULL DEFAULT 0
);
"""

_ROW_COLUMNS = (
    "project, collector, dump_type, timestamp, duration, path, available_at, id"
)


class MetadataDB:
    """SQLite-backed index of dump-file meta-data."""

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        #: True when the on-disk database was unreadable and had to be
        #: rebuilt empty (the crawler reacts with a full re-crawl).
        self.recovered_from_corruption = False
        if path != ":memory:":
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = self._open(path)

    def _open(self, path: str) -> sqlite3.Connection:
        conn = sqlite3.connect(path, check_same_thread=False, timeout=30.0)
        try:
            conn.executescript(_SCHEMA)
            conn.commit()
            return conn
        except sqlite3.DatabaseError:
            conn.close()
            if path == ":memory:":
                raise
            # The file exists but SQLite cannot use it: move the damaged
            # file aside (never silently destroy data) and start fresh.
            backup = path + ".corrupt"
            if os.path.exists(backup):
                os.remove(backup)
            os.replace(path, backup)
            self.recovered_from_corruption = True
            conn = sqlite3.connect(path, check_same_thread=False, timeout=30.0)
            conn.executescript(_SCHEMA)
            conn.commit()
            return conn

    def close(self) -> None:
        self._conn.close()

    # -- writes ---------------------------------------------------------------

    def insert(self, record: DumpFileRecord) -> bool:
        """Insert one record; returns False if the path was already indexed."""
        with self._lock:
            try:
                self._conn.execute(
                    "INSERT INTO dump_files "
                    "(project, collector, dump_type, timestamp, duration, path, available_at) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?)",
                    _insert_params(record),
                )
                self._conn.commit()
                return True
            except sqlite3.IntegrityError:
                return False

    def insert_many(self, records: Iterable[DumpFileRecord]) -> int:
        return sum(1 for record in records if self.insert(record))

    def apply_crawl_batch(
        self,
        archive_id: str,
        records: Sequence[DumpFileRecord],
        position: int,
        last_available: float,
        updated_at: float = 0.0,
    ) -> int:
        """Atomically insert one crawl batch and advance the high-water mark.

        The rows and the crawl-state update commit in a single transaction:
        a crawler killed mid-crawl either has the whole batch (and the mark
        covering it) or neither, so a restart re-scans from a consistent
        position and the ``path`` unique constraint absorbs any overlap.
        Returns the number of rows actually inserted (duplicates ignored).
        """
        with self._lock:
            cur = self._conn.cursor()
            try:
                before = self._conn.total_changes
                cur.executemany(
                    "INSERT OR IGNORE INTO dump_files "
                    "(project, collector, dump_type, timestamp, duration, path, available_at) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?)",
                    [_insert_params(r) for r in records],
                )
                inserted = self._conn.total_changes - before
                cur.execute(
                    "INSERT INTO crawl_state "
                    "(archive_id, position, last_available, files_indexed, updated_at) "
                    "VALUES (?, ?, ?, ?, ?) "
                    "ON CONFLICT(archive_id) DO UPDATE SET "
                    "position = excluded.position, "
                    "last_available = MAX(last_available, excluded.last_available), "
                    "files_indexed = files_indexed + excluded.files_indexed, "
                    "updated_at = excluded.updated_at",
                    (archive_id, position, last_available, inserted, updated_at),
                )
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
            return inserted

    # -- crawl state -----------------------------------------------------------

    def get_crawl_state(self, archive_id: str) -> Optional[CrawlState]:
        with self._lock:
            row = self._conn.execute(
                "SELECT archive_id, position, last_available, files_indexed "
                "FROM crawl_state WHERE archive_id = ?",
                (archive_id,),
            ).fetchone()
        return CrawlState(*row) if row else None

    def crawl_states(self) -> List[CrawlState]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT archive_id, position, last_available, files_indexed "
                "FROM crawl_state ORDER BY archive_id"
            ).fetchall()
        return [CrawlState(*row) for row in rows]

    def clear_crawl_state(self, archive_id: Optional[str] = None) -> None:
        """Forget crawl progress (all archives, or one), forcing a re-crawl."""
        with self._lock:
            if archive_id is None:
                self._conn.execute("DELETE FROM crawl_state")
            else:
                self._conn.execute(
                    "DELETE FROM crawl_state WHERE archive_id = ?", (archive_id,)
                )
            self._conn.commit()

    def known_paths(self) -> set:
        with self._lock:
            rows = self._conn.execute("SELECT path FROM dump_files").fetchall()
        return {row[0] for row in rows}

    # -- queries ---------------------------------------------------------------

    def query(
        self,
        projects: Optional[Sequence[str]] = None,
        collectors: Optional[Sequence[str]] = None,
        dump_types: Optional[Sequence[str]] = None,
        interval_start: Optional[int] = None,
        interval_end: Optional[int] = None,
        visible_at: Optional[float] = None,
    ) -> List[DumpFileRecord]:
        """Dump files whose data interval intersects ``[interval_start, interval_end]``.

        All filters are optional; ``visible_at`` hides files not yet
        published at that instant (live-mode semantics).
        """
        clauses, params = self._filter_clauses(
            projects, collectors, dump_types, interval_start, interval_end, visible_at
        )
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        sql = (
            f"SELECT {_ROW_COLUMNS} FROM dump_files {where} "
            "ORDER BY timestamp, project, collector, dump_type"
        )
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        return [DumpFileRecord(*row) for row in rows]

    def query_page(
        self,
        projects: Optional[Sequence[str]] = None,
        collectors: Optional[Sequence[str]] = None,
        dump_types: Optional[Sequence[str]] = None,
        interval_start: Optional[int] = None,
        interval_end: Optional[int] = None,
        visible_at: Optional[float] = None,
        order: str = "time",
        after: Optional[Tuple[float, int]] = None,
        limit: Optional[int] = None,
    ) -> List[DumpFileRecord]:
        """One keyset page of :meth:`query` results in a stable total order.

        ``order`` selects the sort key: ``"time"`` pages by ``(timestamp,
        id)`` (catalog/window queries), ``"published"`` by ``(available_at,
        id)`` (live "what appeared since my last poll" queries).  ``after``
        is the last sort key of the previous page — rows at or before it are
        excluded, which is what keeps pagination stable while the crawler
        keeps appending rows.  ``limit`` bounds the page (None = no bound).
        """
        if order == "time":
            key, tie = "timestamp", "id"
        elif order == "published":
            key, tie = "available_at", "id"
        else:
            raise ValueError(f"unknown page order {order!r}")
        clauses, params = self._filter_clauses(
            projects, collectors, dump_types, interval_start, interval_end, visible_at
        )
        if after is not None:
            after_key, after_id = after
            clauses.append(f"({key} > ? OR ({key} = ? AND {tie} > ?))")
            params.extend([after_key, after_key, after_id])
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        sql = f"SELECT {_ROW_COLUMNS} FROM dump_files {where} ORDER BY {key}, {tie}"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        return [DumpFileRecord(*row) for row in rows]

    @staticmethod
    def _filter_clauses(
        projects, collectors, dump_types, interval_start, interval_end, visible_at
    ) -> Tuple[List[str], List[object]]:
        clauses: List[str] = []
        params: List[object] = []
        if projects:
            clauses.append(f"project IN ({','.join('?' * len(projects))})")
            params.extend(projects)
        if collectors:
            clauses.append(f"collector IN ({','.join('?' * len(collectors))})")
            params.extend(collectors)
        if dump_types:
            clauses.append(f"dump_type IN ({','.join('?' * len(dump_types))})")
            params.extend(dump_types)
        if interval_end is not None:
            clauses.append("timestamp <= ?")
            params.append(interval_end)
        if interval_start is not None:
            clauses.append("timestamp + duration >= ?")
            params.append(interval_start)
        if visible_at is not None:
            clauses.append("available_at <= ?")
            params.append(visible_at)
        return clauses, params

    def latest_available_time(self, visible_at: Optional[float] = None) -> Optional[int]:
        """The end of the newest visible data interval (None if empty)."""
        sql = "SELECT MAX(timestamp + duration) FROM dump_files"
        params: Tuple[object, ...] = ()
        if visible_at is not None:
            sql += " WHERE available_at <= ?"
            params = (visible_at,)
        with self._lock:
            row = self._conn.execute(sql, params).fetchone()
        return row[0] if row and row[0] is not None else None

    def count(self) -> int:
        with self._lock:
            return self._conn.execute("SELECT COUNT(*) FROM dump_files").fetchone()[0]

    def collectors(self) -> List[str]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT DISTINCT collector FROM dump_files ORDER BY collector"
            ).fetchall()
        return [row[0] for row in rows]


def _insert_params(record: DumpFileRecord) -> Tuple:
    return (
        record.project,
        record.collector,
        record.dump_type,
        record.timestamp,
        record.duration,
        record.path,
        record.available_at,
    )
