"""The BGPStream Broker: the framework's meta-data provider (§3.2).

The Broker continuously scrapes data-provider repositories, stores meta-data
about new files in an SQL database, and answers queries identifying the
location of dump files matching a set of parameters.  Responses are
*windowed* (bounded spans of data per response) for overload protection, and
in live mode an empty response simply means "nothing new yet — poll again".

* :class:`~repro.broker.db.MetadataDB` — the SQLite-backed index.
* :class:`~repro.broker.crawler.ArchiveCrawler` — scrapes an
  :class:`~repro.collectors.archive.Archive` into the index.
* :class:`~repro.broker.broker.Broker` — the query service used by
  libBGPStream's broker data interface.
"""

from repro.broker.db import DumpFileRecord, MetadataDB
from repro.broker.crawler import ArchiveCrawler
from repro.broker.broker import Broker, BrokerQuery, BrokerResponse

__all__ = [
    "DumpFileRecord",
    "MetadataDB",
    "ArchiveCrawler",
    "Broker",
    "BrokerQuery",
    "BrokerResponse",
]
