"""The BGPStream Broker: the framework's meta-data provider (§3.2).

The Broker continuously scrapes data-provider repositories, stores meta-data
about new files in an SQL database, and answers queries identifying the
location of dump files matching a set of parameters.  Responses are
*windowed* (bounded spans of data per response) for overload protection, and
in live mode an empty response simply means "nothing new yet — poll again".

The production metadata tier around that core:

* :class:`~repro.broker.db.MetadataDB` — the SQLite-backed index, with
  keyset pagination and transactional crawl state.
* :class:`~repro.broker.crawler.ArchiveCrawler` — scrapes an
  :class:`~repro.collectors.archive.Archive` into the index; resumable
  incremental crawls via persisted high-water marks.
* :class:`~repro.broker.broker.Broker` — the query service used by
  libBGPStream's broker data interface; cursor-paginated responses.
* :class:`~repro.broker.client.BrokerClient` — the polite paginated client
  (throttling, retry with backoff, resumable cursors).
* :class:`~repro.broker.segments.SegmentCache` — the persistent
  decoded-segment cache that lets warm replays skip MRT decoding.
"""

from repro.broker.db import CrawlState, DumpFileRecord, MetadataDB
from repro.broker.crawler import ArchiveCrawler
from repro.broker.broker import Broker, BrokerQuery, BrokerResponse
from repro.broker.client import BrokerClient, BrokerRequestError, LocalBrokerTransport
from repro.broker.cursor import CursorError, decode_cursor, encode_cursor
from repro.broker.segments import SegmentCache

__all__ = [
    "DumpFileRecord",
    "CrawlState",
    "MetadataDB",
    "ArchiveCrawler",
    "Broker",
    "BrokerQuery",
    "BrokerResponse",
    "BrokerClient",
    "BrokerRequestError",
    "LocalBrokerTransport",
    "CursorError",
    "decode_cursor",
    "encode_cursor",
    "SegmentCache",
]
