"""Opaque, resumable pagination cursors for the Broker query API.

A cursor is the client's bookmark into a paginated Broker result set: the
Broker hands one back with every partial response, and the client echoes it
verbatim on the next request to resume exactly where the previous page
ended.  Cursors are *opaque* — clients must not parse or fabricate them —
and *self-validating*:

* a checksum rejects truncated or mangled cursor strings;
* a fingerprint of the originating query parameters is baked in, so a
  cursor replayed against a *different* query (or after the client edited
  its filters) is rejected instead of silently returning wrong pages;
* a version field lets the encoding evolve without breaking old clients
  mid-flight (an unknown version is a clean :class:`CursorError`, not a
  crash).

The payload itself is a small dict of keyset-pagination state (the last
row's sort key), which is what makes pages stable under concurrent archive
growth: resuming "after (timestamp, id)" never re-serves or skips rows no
matter how many new files the crawler indexed in between.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
from typing import Dict, Optional

#: Bump when the payload layout changes incompatibly.
CURSOR_VERSION = 1


class CursorError(ValueError):
    """A cursor string is malformed, corrupted, or bound to another query."""


def query_fingerprint(query) -> str:
    """A short stable digest of the query parameters a cursor belongs to."""
    material = json.dumps(
        [
            sorted(query.projects),
            sorted(query.collectors),
            sorted(query.dump_types),
            query.interval_start,
            query.interval_end,
        ],
        separators=(",", ":"),
    )
    return hashlib.sha1(material.encode("utf-8")).hexdigest()[:12]


def encode_cursor(payload: Dict, fingerprint: str) -> str:
    """Pack ``payload`` into an opaque URL-safe cursor string."""
    body = dict(payload)
    body["v"] = CURSOR_VERSION
    body["q"] = fingerprint
    raw = json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")
    check = hashlib.sha1(raw).hexdigest()[:8].encode("ascii")
    return base64.urlsafe_b64encode(check + raw).decode("ascii").rstrip("=")


def decode_cursor(cursor: str, fingerprint: Optional[str] = None) -> Dict:
    """Unpack a cursor string, verifying integrity and query binding.

    ``fingerprint`` (when given) must match the fingerprint baked into the
    cursor at encode time; a mismatch means the client changed its query
    parameters between pages, which would silently corrupt pagination.
    """
    if not isinstance(cursor, str) or not cursor:
        raise CursorError("empty cursor")
    padded = cursor + "=" * (-len(cursor) % 4)
    try:
        blob = base64.urlsafe_b64decode(padded.encode("ascii"))
    except (binascii.Error, ValueError, UnicodeEncodeError) as exc:
        raise CursorError(f"undecodable cursor: {exc}") from exc
    check, raw = blob[:8], blob[8:]
    if hashlib.sha1(raw).hexdigest()[:8].encode("ascii") != check:
        raise CursorError("cursor checksum mismatch (truncated or corrupted)")
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CursorError(f"unreadable cursor payload: {exc}") from exc
    if not isinstance(payload, dict):
        raise CursorError("cursor payload is not an object")
    if payload.get("v") != CURSOR_VERSION:
        raise CursorError(f"unsupported cursor version {payload.get('v')!r}")
    if fingerprint is not None and payload.get("q") != fingerprint:
        raise CursorError(
            "cursor belongs to a different query (filters or interval changed "
            "between pages)"
        )
    # The version and fingerprint are envelope, not pagination state.
    payload.pop("v", None)
    payload.pop("q", None)
    return payload
