"""A paginated Broker client with polite throttling and retry/backoff.

The Broker is an HTTP service in the real deployment; its clients are
long-running analysis processes that must neither hammer the service nor
fall over on a transient failure.  This client wraps the query API with the
classic well-behaved-crawler discipline:

* **cursor-driven pagination** — every request carries the opaque cursor of
  the previous response, so the full result set streams through bounded
  pages and an interrupted client resumes exactly where it stopped (no page
  is ever re-fetched after a retry: the cursor only advances on success);
* **polite throttling** — consecutive requests are spaced at least
  ``min_request_interval`` seconds apart (sleeping on the injected clock,
  so tests and simulations run at full speed);
* **retry with exponential backoff** — a transport that raises
  :class:`BrokerRequestError` is retried up to ``max_retries`` times with
  ``backoff_base * 2**attempt`` second waits (capped at ``backoff_cap``),
  then the error propagates.  The schedule is the shared
  :class:`~repro.core.resilience.RetryPolicy` — the one backoff
  implementation in the tree — and an optional
  :class:`~repro.core.resilience.CircuitBreaker` can sit between the retry
  loop and the transport so a hard broker outage fails fast instead of
  burning the whole backoff budget per request.

The transport is injectable: :class:`LocalBrokerTransport` calls a
:class:`~repro.broker.broker.Broker` in-process (the default); a real
deployment would drop in an HTTP transport with the same two methods, and
tests wrap transports with fault injectors
(:func:`repro.core.resilience.inject_faults`).
"""

from __future__ import annotations

import time
from typing import Iterator, Optional

from repro import _metrics
from repro.broker.broker import (
    DEFAULT_PAGE_SIZE,
    Broker,
    BrokerQuery,
    BrokerResponse,
)
from repro.broker.db import DumpFileRecord
from repro.core.resilience import CircuitBreaker, RetryPolicy
from repro.utils.timeutil import Clock, SystemClock


#: Telemetry (see docs/OBSERVABILITY.md).  Updated only when
#: ``repro._metrics.enabled`` — one global load per request otherwise.
_request_latency = _metrics.histogram(
    "repro_broker_request_latency_seconds",
    "Broker request wall-clock latency per transport method "
    "(includes throttle waits, breaker rejection and retries).",
    labelnames=("method",),
)
_requests = _metrics.counter(
    "repro_broker_requests_total",
    "Broker transport requests attempted (each retry counts again).",
    labelnames=("method",),
)
_retries = _metrics.counter(
    "repro_broker_retries_total",
    "Broker requests re-attempted after a transient transport failure.",
)


class BrokerRequestError(Exception):
    """A transient transport failure (timeouts, 5xx, connection resets)."""


class LocalBrokerTransport:
    """In-process transport: requests go straight to a :class:`Broker`."""

    def __init__(self, broker: Broker) -> None:
        self.broker = broker

    def get_window(
        self,
        query: BrokerQuery,
        cursor: Optional[str],
        page_size: Optional[int],
        now: Optional[float],
        from_time: Optional[int] = None,
    ) -> BrokerResponse:
        """Forward one window/page request to the wrapped Broker."""
        return self.broker.get_window(
            query, from_time=from_time, now=now, cursor=cursor, page_size=page_size
        )

    def get_new_files_page(
        self,
        query: BrokerQuery,
        cursor: Optional[str],
        page_size: int,
        now: Optional[float],
    ) -> BrokerResponse:
        """Forward one publication-ordered page request to the Broker."""
        return self.broker.get_new_files_page(
            query, now=now, cursor=cursor, page_size=page_size
        )


class BrokerClient:
    """Pull a query's full result set through throttled, retried pages."""

    def __init__(
        self,
        broker: Optional[Broker] = None,
        *,
        transport=None,
        page_size: int = DEFAULT_PAGE_SIZE,
        min_request_interval: float = 0.0,
        max_retries: int = 4,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        retry_policy: Optional[RetryPolicy] = None,
        circuit_breaker: Optional[CircuitBreaker] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        if (broker is None) == (transport is None):
            raise ValueError("pass exactly one of broker= or transport=")
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.transport = transport if transport is not None else LocalBrokerTransport(broker)
        self.page_size = page_size
        self.min_request_interval = min_request_interval
        self.retry_policy = retry_policy or RetryPolicy(
            max_retries=max_retries, base=backoff_base, cap=backoff_cap
        )
        self.max_retries = self.retry_policy.max_retries
        self.backoff_base = self.retry_policy.base
        self.backoff_cap = self.retry_policy.cap
        self.circuit_breaker = circuit_breaker
        self.clock = clock or SystemClock()
        self._last_request: Optional[float] = None
        #: Introspection counters (tests assert throttling/retry behaviour).
        self.requests_sent = 0
        self.retries = 0
        self.throttle_waits = 0.0

    # -- the paginated pulls -------------------------------------------------

    def iter_pages(
        self,
        query: BrokerQuery,
        now: Optional[float] = None,
        cursor: Optional[str] = None,
    ) -> Iterator[BrokerResponse]:
        """Yield every page of a historical query, politely and resumably.

        ``cursor`` resumes a previous (possibly interrupted) pagination.
        Each yielded response carries its own ``next_cursor``, so the caller
        can checkpoint progress between pages.
        """
        while True:
            response = self._send(
                "get_window",
                query,
                cursor=cursor,
                page_size=self.page_size,
                now=now,
            )
            yield response
            cursor = response.next_cursor
            if cursor is None:
                return

    def iter_files(
        self,
        query: BrokerQuery,
        now: Optional[float] = None,
        cursor: Optional[str] = None,
    ) -> Iterator[DumpFileRecord]:
        """Flatten :meth:`iter_pages` into the individual dump files."""
        for page in self.iter_pages(query, now=now, cursor=cursor):
            yield from page.files

    def poll_published(
        self,
        query: BrokerQuery,
        cursor: Optional[str] = None,
        now: Optional[float] = None,
    ) -> BrokerResponse:
        """One publication-ordered page (live polling; cursor = watermark)."""
        return self._send(
            "get_new_files_page",
            query,
            cursor=cursor,
            page_size=self.page_size,
            now=now,
        )

    # -- transport discipline ------------------------------------------------

    def _send(self, method: str, query: BrokerQuery, **kwargs) -> BrokerResponse:
        def one_attempt() -> BrokerResponse:
            self._throttle()
            self.requests_sent += 1
            if _metrics.enabled:
                _requests.inc(method=method)
            self._last_request = self.clock.now()
            call = getattr(self.transport, method)
            if self.circuit_breaker is not None:
                return self.circuit_breaker.call(lambda: call(query, **kwargs))
            return call(query, **kwargs)

        def count_retry(_attempt: int, _exc: BaseException, _delay: float) -> None:
            self.retries += 1
            if _metrics.enabled:
                _retries.inc()

        if not _metrics.enabled:
            return self.retry_policy.run(
                one_attempt,
                clock=self.clock,
                retry_on=(BrokerRequestError,),
                on_retry=count_retry,
            )
        started = time.perf_counter()
        try:
            return self.retry_policy.run(
                one_attempt,
                clock=self.clock,
                retry_on=(BrokerRequestError,),
                on_retry=count_retry,
            )
        finally:
            _request_latency.observe(time.perf_counter() - started, method=method)

    def _throttle(self) -> None:
        if self.min_request_interval <= 0 or self._last_request is None:
            return
        elapsed = self.clock.now() - self._last_request
        remaining = self.min_request_interval - elapsed
        if remaining > 0:
            self.throttle_waits += remaining
            self.clock.sleep(remaining)
