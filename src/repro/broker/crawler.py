"""The Broker's crawler: resumable, incremental archive indexing.

The real Broker periodically scrapes the RouteViews and RIPE RIS HTTP
directory listings and inserts meta-data about newly published files into
its database.  Here the data provider is a local
:class:`~repro.collectors.archive.Archive`; the crawler reads its
append-only index and inserts any files it has not seen yet, respecting
each file's publication time so that live consumers only learn about data
that is actually available.

Two production properties distinguish this crawler from a naive scraper:

* **Incremental**: per-archive high-water marks (the position up to which
  the archive's append-only index has been fully processed) persist in the
  broker database, so a crawl — including the first crawl of a *restarted*
  process — scans only entries beyond the mark instead of re-reading the
  whole index.  Entries that are published but not yet *visible* (their
  ``available_at`` is in the future) pin the mark: the mark never advances
  past an unprocessed entry, so nothing can be lost, and the small region
  between the first pending entry and the index head is simply re-scanned
  on the next poll (duplicate inserts are absorbed by the database's
  ``path`` unique constraint).
* **Resumable / corruption-tolerant**: rows are committed in batches, each
  batch transactionally coupled with the mark that covers it
  (:meth:`~repro.broker.db.MetadataDB.apply_crawl_batch`).  A crawler
  killed mid-crawl loses at most the uncommitted batch, which the next
  crawl re-scans.  If the database file itself was corrupted and rebuilt
  (``db.recovered_from_corruption``), all marks are gone and the next
  crawl is automatically a full re-crawl; :meth:`ArchiveCrawler.recrawl`
  forces the same from intact state.
"""

from __future__ import annotations

import os
import time
from typing import List, Optional

from repro.broker.db import DumpFileRecord, MetadataDB
from repro.collectors.archive import Archive

#: Rows per transactional commit; bounds how much work a crash can lose.
DEFAULT_CRAWL_BATCH = 256


def archive_identity(archive: Archive) -> str:
    """The stable identifier crawl state is keyed by (the archive root)."""
    root = getattr(archive, "root", None)
    if root:
        return os.path.abspath(root)
    return repr(archive)


class ArchiveCrawler:
    """Scrape one or more archives into a :class:`MetadataDB`, incrementally."""

    def __init__(
        self,
        db: MetadataDB,
        archives: Optional[List[Archive]] = None,
        batch_size: int = DEFAULT_CRAWL_BATCH,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.db = db
        self.archives: List[Archive] = list(archives or [])
        self.batch_size = batch_size
        #: Cumulative counters (introspection; tests assert incrementality).
        self.entries_scanned = 0
        self.files_indexed = 0
        self.crawls = 0

    def add_archive(self, archive: Archive) -> None:
        self.archives.append(archive)

    # -- crawling ----------------------------------------------------------

    def crawl(self, now: Optional[float] = None) -> int:
        """Index every file published (and visible) up to ``now``.

        Returns the number of newly indexed files.  ``now=None`` indexes
        everything regardless of publication time (historical bootstrap).
        Only index entries beyond each archive's persisted high-water mark
        are scanned, so repeated polls over a large archive cost O(new
        files), not O(archive).
        """
        self.crawls += 1
        inserted = 0
        for archive in self.archives:
            inserted += self._crawl_archive(archive, now)
        return inserted

    def recrawl(self, now: Optional[float] = None) -> int:
        """Full corruption-tolerant re-scan: reset every mark, then crawl.

        Safe at any time — re-inserting already-indexed files is a no-op
        thanks to the ``path`` unique constraint — and the way back to a
        complete index after external damage (a database restored from an
        old backup, an archive whose index was rewritten in place).
        """
        self.db.clear_crawl_state()
        return self.crawl(now=now)

    def _crawl_archive(self, archive: Archive, now: Optional[float]) -> int:
        archive_id = archive_identity(archive)
        state = self.db.get_crawl_state(archive_id)
        position = state.position if state is not None else 0
        entries = archive.entries()
        if position > len(entries):
            # The archive index shrank under us (rewritten or truncated):
            # the mark no longer means anything — fall back to a full scan.
            position = 0
        inserted = 0
        batch: List[DumpFileRecord] = []
        batch_mark = position
        batch_available = state.last_available if state is not None else 0.0
        #: The mark never advances past the first entry we could not
        #: process yet (published in the future relative to ``now``).
        pending_at: Optional[int] = None

        def flush() -> int:
            nonlocal batch, batch_mark, batch_available
            if not batch and batch_mark == position:
                return 0
            committed = self.db.apply_crawl_batch(
                archive_id,
                batch,
                position=batch_mark,
                last_available=batch_available,
                updated_at=time.time(),
            )
            batch = []
            return committed

        for index in range(position, len(entries)):
            entry = entries[index]
            self.entries_scanned += 1
            if now is not None and entry.available_at > now:
                if pending_at is None:
                    pending_at = index
                continue
            batch.append(
                DumpFileRecord(
                    project=entry.project,
                    collector=entry.collector,
                    dump_type=entry.dump_type,
                    timestamp=entry.timestamp,
                    duration=entry.duration,
                    path=entry.path,
                    available_at=entry.available_at,
                )
            )
            batch_available = max(batch_available, entry.available_at)
            batch_mark = index + 1 if pending_at is None else pending_at
            if len(batch) >= self.batch_size:
                inserted += flush()
        if pending_at is None:
            batch_mark = len(entries)
        inserted += flush()
        self.files_indexed += inserted
        return inserted
