"""The Broker's crawler.

The real Broker periodically scrapes the RouteViews and RIPE RIS HTTP
directory listings and inserts meta-data about newly published files into
its database.  Here the data provider is a local
:class:`~repro.collectors.archive.Archive`; the crawler reads its index and
inserts any files it has not seen yet, respecting each file's publication
time so that live consumers only learn about data that is actually
available.
"""

from __future__ import annotations

from typing import List, Optional

from repro.broker.db import DumpFileRecord, MetadataDB
from repro.collectors.archive import Archive


class ArchiveCrawler:
    """Scrape one or more archives into a :class:`MetadataDB`."""

    def __init__(self, db: MetadataDB, archives: Optional[List[Archive]] = None) -> None:
        self.db = db
        self.archives: List[Archive] = list(archives or [])
        self._seen_paths = db.known_paths()

    def add_archive(self, archive: Archive) -> None:
        self.archives.append(archive)

    def crawl(self, now: Optional[float] = None) -> int:
        """Index every file published (and visible) up to ``now``.

        Returns the number of newly indexed files.  ``now=None`` indexes
        everything regardless of publication time (historical bootstrap).
        """
        inserted = 0
        for archive in self.archives:
            for entry in archive.entries(visible_at=now):
                if entry.path in self._seen_paths:
                    continue
                record = DumpFileRecord(
                    project=entry.project,
                    collector=entry.collector,
                    dump_type=entry.dump_type,
                    timestamp=entry.timestamp,
                    duration=entry.duration,
                    path=entry.path,
                    available_at=entry.available_at,
                )
                if self.db.insert(record):
                    inserted += 1
                self._seen_paths.add(entry.path)
        return inserted
