"""Community diversity per vantage point (Figure 5d, §5).

Collects the unique BGP communities appearing in IPv4 AS paths, counts the
distinct AS identifiers (the two most-significant bytes of each community)
observed per VP, per collector and per project, and measures the fraction of
VPs that observe communities at all (many BGP speakers strip communities
before propagating them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.mapreduce import MapReduceDriver, Partition
from repro.bgp.community import Community
from repro.collectors.archive import Archive
from repro.core.elem import ElemType
from repro.core.stream import BGPStream

AnalysisVP = Tuple[str, int]


@dataclass
class CommunityDiversityResult:
    """Distinct communities / AS identifiers per VP, collector and project."""

    #: vp -> set of distinct communities observed.
    per_vp: Dict[AnalysisVP, FrozenSet[Community]] = field(default_factory=dict)
    #: collector -> distinct AS identifiers.
    per_collector: Dict[str, FrozenSet[int]] = field(default_factory=dict)
    #: project -> distinct AS identifiers.
    per_project: Dict[str, FrozenSet[int]] = field(default_factory=dict)
    total_communities: int = 0

    def vp_identifier_counts(self) -> Dict[AnalysisVP, int]:
        return {vp: len({c.asn for c in communities}) for vp, communities in self.per_vp.items()}

    def observing_fraction(self) -> float:
        if not self.per_vp:
            return 0.0
        observing = sum(1 for communities in self.per_vp.values() if communities)
        return observing / len(self.per_vp)

    def top_collectors(self, count: int = 5) -> List[Tuple[str, int]]:
        ranked = sorted(
            ((collector, len(asns)) for collector, asns in self.per_collector.items()),
            key=lambda item: item[1],
            reverse=True,
        )
        return ranked[:count]


def _map_partition(stream: BGPStream, partition: Partition):
    per_vp: Dict[AnalysisVP, Set[Community]] = {}
    projects: Dict[str, Set[int]] = {}
    for record, elem in stream.elems():
        if elem.elem_type != ElemType.RIB or elem.prefix is None:
            continue
        if elem.prefix.version != 4:
            continue
        vp = (elem.collector, elem.peer_asn)
        per_vp.setdefault(vp, set())
        if elem.communities is None:
            continue
        for community in elem.communities:
            per_vp[vp].add(community)
            projects.setdefault(record.project, set()).add(community.asn)
    return per_vp, projects


def analyse_communities(
    archive: Archive,
    timestamps: Sequence[int],
    collectors: Optional[Sequence[str]] = None,
    window: int = 3600,
    workers: int = 4,
) -> CommunityDiversityResult:
    """Run the Figure 5d analysis over the RIB dumps at ``timestamps``."""
    driver = MapReduceDriver(archive, _map_partition, workers=workers)
    partitions = driver.partitions_for(timestamps, collectors, window=window)
    per_vp: Dict[AnalysisVP, Set[Community]] = {}
    per_collector: Dict[str, Set[int]] = {}
    per_project: Dict[str, Set[int]] = {}
    for partition, (partition_vp, partition_projects) in driver.map(partitions):
        for vp, communities in partition_vp.items():
            per_vp.setdefault(vp, set()).update(communities)
            per_collector.setdefault(vp[0], set()).update(c.asn for c in communities)
        for project, asns in partition_projects.items():
            per_project.setdefault(project, set()).update(asns)
    all_communities: Set[Community] = set()
    for communities in per_vp.values():
        all_communities.update(communities)
    return CommunityDiversityResult(
        per_vp={vp: frozenset(c) for vp, c in per_vp.items()},
        per_collector={collector: frozenset(asns) for collector, asns in per_collector.items()},
        per_project={project: frozenset(asns) for project, asns in per_project.items()},
        total_communities=len(all_communities),
    )
