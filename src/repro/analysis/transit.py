"""Transit-AS fraction over time, IPv4 vs IPv6 (Figure 5c, §5).

A transit AS is one appearing in the middle of an AS path.  The paper's
observations: for IPv4, despite near-linear growth in the number of ASes,
the fraction of transit ASes stays roughly constant; for IPv6 the fraction
is larger (smaller edge adoption) and the total AS count grows fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.mapreduce import MapReduceDriver, Partition
from repro.collectors.archive import Archive
from repro.core.elem import ElemType
from repro.core.stream import BGPStream


@dataclass
class TransitResult:
    """Per-month AS counts and transit fractions for each IP version."""

    #: month -> {4: count, 6: count}
    total_asns: Dict[int, Dict[int, int]] = field(default_factory=dict)
    transit_asns: Dict[int, Dict[int, int]] = field(default_factory=dict)

    def months(self) -> List[int]:
        return sorted(self.total_asns)

    def transit_fraction(self, month: int, version: int) -> float:
        total = self.total_asns.get(month, {}).get(version, 0)
        transit = self.transit_asns.get(month, {}).get(version, 0)
        return transit / total if total else 0.0

    def fraction_series(self, version: int) -> List[Tuple[int, float]]:
        return [(month, self.transit_fraction(month, version)) for month in self.months()]

    def asn_count_series(self, version: int) -> List[Tuple[int, int]]:
        return [
            (month, self.total_asns.get(month, {}).get(version, 0)) for month in self.months()
        ]


def _map_partition(stream: BGPStream, partition: Partition):
    seen: Dict[int, Set[int]] = {4: set(), 6: set()}
    transit: Dict[int, Set[int]] = {4: set(), 6: set()}
    for _record, elem in stream.elems():
        if elem.elem_type != ElemType.RIB or elem.prefix is None or elem.as_path is None:
            continue
        version = elem.prefix.version
        hops = elem.as_path.hops
        seen[version].update(hops)
        if len(hops) > 2:
            transit[version].update(hops[1:-1])
    return seen, transit


def analyse_transit(
    archive: Archive,
    month_timestamps: Sequence[int],
    collectors: Optional[Sequence[str]] = None,
    window: int = 3600,
    workers: int = 4,
) -> TransitResult:
    """Run the Figure 5c analysis over monthly RIB dumps."""
    driver = MapReduceDriver(archive, _map_partition, workers=workers)
    partitions = driver.partitions_for(month_timestamps, collectors, window=window)
    result = TransitResult()
    seen_per_month: Dict[int, Dict[int, Set[int]]] = {}
    transit_per_month: Dict[int, Dict[int, Set[int]]] = {}
    for partition, (seen, transit) in driver.map(partitions):
        month = partition.interval_start
        month_seen = seen_per_month.setdefault(month, {4: set(), 6: set()})
        month_transit = transit_per_month.setdefault(month, {4: set(), 6: set()})
        for version in (4, 6):
            month_seen[version].update(seen[version])
            month_transit[version].update(transit[version])
    for month in month_timestamps:
        seen = seen_per_month.get(month, {4: set(), 6: set()})
        transit = transit_per_month.get(month, {4: set(), 6: set()})
        result.total_asns[month] = {4: len(seen[4]), 6: len(seen[6])}
        result.transit_asns[month] = {4: len(transit[4]), 6: len(transit[6])}
    return result
