"""Longitudinal and case-study analyses (§4.2, §5).

Each analysis follows the structure of the paper's Spark scripts: build a
list of data partitions (time range × collector), map a PyBGPStream-style
extraction function over every partition, and reduce per VP, per collector
and overall.  The map-reduce driver in :mod:`repro.analysis.mapreduce`
provides that skeleton (thread-pool backed instead of a Spark cluster).

* :mod:`repro.analysis.path_inflation` — Listing 1: AS-path inflation.
* :mod:`repro.analysis.rib_growth` — Figure 5a: routing-table growth and
  full-/partial-feed classification.
* :mod:`repro.analysis.moas` — Figure 5b: MOAS sets over time.
* :mod:`repro.analysis.transit` — Figure 5c: transit-AS fraction, IPv4 vs IPv6.
* :mod:`repro.analysis.communities` — Figure 5d: community diversity per VP.
"""

from repro.analysis.mapreduce import MapReduceDriver, Partition
from repro.analysis.path_inflation import PathInflationResult, analyse_path_inflation
from repro.analysis.rib_growth import RIBGrowthResult, analyse_rib_growth
from repro.analysis.moas import MOASAnalysisResult, analyse_moas
from repro.analysis.transit import TransitResult, analyse_transit
from repro.analysis.communities import CommunityDiversityResult, analyse_communities

__all__ = [
    "MapReduceDriver",
    "Partition",
    "PathInflationResult",
    "analyse_path_inflation",
    "RIBGrowthResult",
    "analyse_rib_growth",
    "MOASAnalysisResult",
    "analyse_moas",
    "TransitResult",
    "analyse_transit",
    "CommunityDiversityResult",
    "analyse_communities",
]
