"""AS-path inflation (Listing 1, §4.2).

Compares the AS-path length observed in RIB dumps with the shortest path on
the undirected AS graph built from the same AS adjacencies: the difference
quantifies how much routing policies inflate paths.  The paper finds more
than 30 % of <VP, origin> pairs inflated by 1 to 11 extra hops.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from itertools import groupby
from typing import Dict, Optional

import networkx as nx

from repro.core.elem import ElemType
from repro.core.stream import BGPStream


@dataclass
class PathInflationResult:
    """Aggregate results of the path-inflation analysis."""

    pairs_examined: int
    inflated_pairs: int
    max_extra_hops: int
    #: extra-hops value -> number of <VP, origin> pairs with that inflation.
    inflation_histogram: Dict[int, int] = field(default_factory=dict)

    @property
    def inflated_fraction(self) -> float:
        if self.pairs_examined == 0:
            return 0.0
        return self.inflated_pairs / self.pairs_examined


def analyse_path_inflation(stream: BGPStream) -> PathInflationResult:
    """Run the Listing 1 analysis over a (RIB-filtered) stream.

    The loop below deliberately mirrors the paper's code: split the AS path
    into hops with ``groupby`` (collapsing prepending), ignore local routes,
    feed every adjacency into a NetworkX graph, track the minimum observed
    BGP path length per <monitor, origin> pair, then compare against the
    shortest path computed on the graph.
    """
    as_graph = nx.Graph()
    bgp_lens: Dict[str, Dict[str, Optional[int]]] = defaultdict(lambda: defaultdict(lambda: None))

    for _record, elem in stream.elems():
        if elem.elem_type != ElemType.RIB or elem.as_path is None:
            continue
        monitor = str(elem.peer_asn)
        hops = [k for k, _g in groupby(str(elem.as_path).split(" ")) if k]
        if len(hops) > 1 and hops[0] == monitor:
            origin = hops[-1]
            for i in range(len(hops) - 1):
                as_graph.add_edge(hops[i], hops[i + 1])
            current = bgp_lens[monitor][origin]
            candidates = [value for value in (current, len(hops)) if value]
            bgp_lens[monitor][origin] = min(candidates)

    histogram: Dict[int, int] = {}
    pairs = 0
    inflated = 0
    max_extra = 0
    for monitor in bgp_lens:
        for origin in bgp_lens[monitor]:
            observed = bgp_lens[monitor][origin]
            if observed is None:
                continue
            try:
                shortest = len(nx.shortest_path(as_graph, monitor, origin))
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                continue
            pairs += 1
            extra = max(0, observed - shortest)
            histogram[extra] = histogram.get(extra, 0) + 1
            if extra > 0:
                inflated += 1
                max_extra = max(max_extra, extra)
    return PathInflationResult(
        pairs_examined=pairs,
        inflated_pairs=inflated,
        max_extra_hops=max_extra,
        inflation_histogram=dict(sorted(histogram.items())),
    )
