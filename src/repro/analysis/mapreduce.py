"""A small partition → map → reduce driver (the Spark stand-in of §5).

The paper's longitudinal analyses all share one structure: (i) build a list
of data partitions by splitting the input by time range and collector and
hand it to Spark as an RDD; (ii) map a Python function over every partition
— the function creates its own BGPStream (filters, interval) and runs the
usual record/elem loops; (iii) reduce the per-partition outputs per VP, per
collector and overall.  This driver reproduces that skeleton with a thread
pool; partitions are independent streams, so the mapping is embarrassingly
parallel exactly as it is on a cluster.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Generic, List, Optional, Sequence, Tuple, TypeVar

from repro.broker.broker import Broker
from repro.collectors.archive import Archive
from repro.core.interfaces import BrokerDataInterface
from repro.core.stream import BGPStream

MapOutput = TypeVar("MapOutput")
Reduced = TypeVar("Reduced")


@dataclass(frozen=True)
class Partition:
    """One unit of work: a time range and (optionally) one collector."""

    interval_start: int
    interval_end: int
    collector: Optional[str] = None
    dump_types: Tuple[str, ...] = ("ribs",)
    label: Optional[str] = None

    def describe(self) -> str:
        who = self.collector or "all-collectors"
        return self.label or f"{who}:{self.interval_start}-{self.interval_end}"


class MapReduceDriver(Generic[MapOutput]):
    """Run a map function over partitions of an archive, then reduce."""

    def __init__(
        self,
        archive: Archive,
        map_function: Callable[[BGPStream, Partition], MapOutput],
        workers: int = 4,
    ) -> None:
        self.archive = archive
        self.map_function = map_function
        self.workers = max(1, workers)

    # -- partitioning ----------------------------------------------------------------

    def partitions_for(
        self,
        timestamps: Sequence[int],
        collectors: Optional[Sequence[str]] = None,
        window: int = 3600,
        dump_types: Tuple[str, ...] = ("ribs",),
    ) -> List[Partition]:
        """One partition per (timestamp, collector) pair.

        ``window`` widens each timestamp into an interval so the RIB dump
        records written over several minutes are all captured.
        """
        collector_list = list(collectors) if collectors else self.archive.collectors()
        partitions: List[Partition] = []
        for timestamp in timestamps:
            for collector in collector_list:
                partitions.append(
                    Partition(
                        interval_start=timestamp,
                        interval_end=timestamp + window,
                        collector=collector,
                        dump_types=dump_types,
                    )
                )
        return partitions

    # -- execution -------------------------------------------------------------------

    def _stream_for(self, partition: Partition) -> BGPStream:
        broker = Broker(archives=[self.archive])
        stream = BGPStream(data_interface=BrokerDataInterface(broker, max_empty_polls=1))
        stream.add_interval_filter(partition.interval_start, partition.interval_end)
        if partition.collector:
            stream.add_filter("collector", partition.collector)
        for dump_type in partition.dump_types:
            stream.add_filter("record-type", dump_type)
        return stream

    def map(self, partitions: Sequence[Partition]) -> List[Tuple[Partition, MapOutput]]:
        """Apply the map function to every partition (thread-pooled)."""

        def _run(partition: Partition) -> Tuple[Partition, MapOutput]:
            stream = self._stream_for(partition)
            return partition, self.map_function(stream, partition)

        if self.workers == 1 or len(partitions) <= 1:
            return [_run(p) for p in partitions]
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(_run, partitions))

    def map_reduce(
        self,
        partitions: Sequence[Partition],
        reduce_function: Callable[[List[Tuple[Partition, MapOutput]]], Reduced],
    ) -> Reduced:
        return reduce_function(self.map(partitions))
