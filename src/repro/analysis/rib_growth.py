"""Routing-table growth and full-feed classification (Figure 5a, §5).

For each monthly RIB snapshot, count the unique IPv4 prefixes in every VP's
Adj-RIB-out.  Partial-feed VPs show significantly smaller tables and skew
distributions; the paper defines full-feed VPs as those within 20 percentage
points of the per-month maximum, and that classification is reused by every
other analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.mapreduce import MapReduceDriver, Partition
from repro.collectors.archive import Archive
from repro.core.elem import ElemType
from repro.core.stream import BGPStream

#: A VP key in analysis outputs: (collector, peer ASN).
AnalysisVP = Tuple[str, int]


@dataclass
class RIBGrowthResult:
    """Per-month, per-VP routing-table sizes plus derived aggregates."""

    #: month timestamp -> {vp -> unique IPv4 prefix count}.
    per_vp: Dict[int, Dict[AnalysisVP, int]] = field(default_factory=dict)
    #: month timestamp -> overall unique IPv4 prefixes (union over VPs).
    overall: Dict[int, int] = field(default_factory=dict)
    #: month timestamp -> unique origin ASNs observed.
    unique_asns: Dict[int, int] = field(default_factory=dict)

    def months(self) -> List[int]:
        return sorted(self.per_vp)

    def max_table_size(self, month: int) -> int:
        sizes = self.per_vp.get(month, {})
        return max(sizes.values(), default=0)

    def full_feed_vps(self, month: int, within: float = 0.20) -> Set[AnalysisVP]:
        """VPs within ``within`` (fraction) of the month's maximum table size."""
        sizes = self.per_vp.get(month, {})
        maximum = self.max_table_size(month)
        if maximum == 0:
            return set()
        threshold = (1.0 - within) * maximum
        return {vp for vp, size in sizes.items() if size >= threshold}

    def partial_feed_vps(self, month: int, within: float = 0.20) -> Set[AnalysisVP]:
        sizes = self.per_vp.get(month, {})
        return set(sizes) - self.full_feed_vps(month, within)

    def growth_series(self) -> List[Tuple[int, int]]:
        """(month, max table size) — the upper envelope of Figure 5a."""
        return [(month, self.max_table_size(month)) for month in self.months()]


def _map_partition(stream: BGPStream, partition: Partition):
    per_vp: Dict[AnalysisVP, Set] = {}
    origins: Set[int] = set()
    for _record, elem in stream.elems():
        if elem.elem_type != ElemType.RIB or elem.prefix is None:
            continue
        if elem.prefix.version != 4:
            continue
        vp = (elem.collector, elem.peer_asn)
        per_vp.setdefault(vp, set()).add(elem.prefix)
        if elem.origin_asn:
            origins.add(elem.origin_asn)
    return per_vp, origins


def analyse_rib_growth(
    archive: Archive,
    month_timestamps: Sequence[int],
    collectors: Optional[Sequence[str]] = None,
    window: int = 3600,
    workers: int = 4,
) -> RIBGrowthResult:
    """Run the Figure 5a analysis over monthly RIB dumps in ``archive``."""
    driver = MapReduceDriver(archive, _map_partition, workers=workers)
    partitions = driver.partitions_for(month_timestamps, collectors, window=window)
    result = RIBGrowthResult()
    union_per_month: Dict[int, Set] = {}
    origins_per_month: Dict[int, Set[int]] = {}
    for partition, (per_vp, origins) in driver.map(partitions):
        month = partition.interval_start
        month_vp = result.per_vp.setdefault(month, {})
        for vp, prefixes in per_vp.items():
            month_vp[vp] = max(month_vp.get(vp, 0), len(prefixes))
            union_per_month.setdefault(month, set()).update(prefixes)
        origins_per_month.setdefault(month, set()).update(origins)
    for month in month_timestamps:
        result.overall[month] = len(union_per_month.get(month, set()))
        result.unique_asns[month] = len(origins_per_month.get(month, set()))
        result.per_vp.setdefault(month, {})
    return result
