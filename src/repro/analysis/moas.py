"""MOAS sets over time (Figure 5b, §5).

For each monthly snapshot, collect the set of origin ASes per prefix across
all VPs, and count the unique MOAS sets (sets of ASes jointly originating at
least one prefix) — overall and per collector.  The paper's headline
observation is that the overall aggregation always identifies significantly
more MOAS sets than any single collector, i.e. analysing data from as many
collectors as available matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.mapreduce import MapReduceDriver, Partition
from repro.bgp.prefix import Prefix
from repro.collectors.archive import Archive
from repro.core.elem import ElemType
from repro.core.stream import BGPStream


@dataclass
class MOASAnalysisResult:
    """MOAS sets per month, overall and per collector."""

    #: month -> set of MOAS sets (overall aggregation).
    overall: Dict[int, FrozenSet[FrozenSet[int]]] = field(default_factory=dict)
    #: month -> collector -> set of MOAS sets.
    per_collector: Dict[int, Dict[str, FrozenSet[FrozenSet[int]]]] = field(default_factory=dict)

    def months(self) -> List[int]:
        return sorted(self.overall)

    def overall_counts(self) -> List[Tuple[int, int]]:
        return [(month, len(self.overall[month])) for month in self.months()]

    def collector_counts(self, collector: str) -> List[Tuple[int, int]]:
        return [
            (month, len(self.per_collector.get(month, {}).get(collector, frozenset())))
            for month in self.months()
        ]

    def max_single_collector_count(self, month: int) -> int:
        per = self.per_collector.get(month, {})
        return max((len(sets) for sets in per.values()), default=0)


def _map_partition(stream: BGPStream, partition: Partition):
    origins_per_prefix: Dict[Prefix, Set[int]] = {}
    for _record, elem in stream.elems():
        if elem.elem_type != ElemType.RIB or elem.prefix is None:
            continue
        if elem.origin_asn is None:
            continue
        origins_per_prefix.setdefault(elem.prefix, set()).add(elem.origin_asn)
    return origins_per_prefix


def analyse_moas(
    archive: Archive,
    month_timestamps: Sequence[int],
    collectors: Optional[Sequence[str]] = None,
    window: int = 3600,
    workers: int = 4,
) -> MOASAnalysisResult:
    """Run the Figure 5b analysis over monthly RIB dumps."""
    driver = MapReduceDriver(archive, _map_partition, workers=workers)
    partitions = driver.partitions_for(month_timestamps, collectors, window=window)
    result = MOASAnalysisResult()
    merged: Dict[int, Dict[Prefix, Set[int]]] = {}
    per_collector_origins: Dict[int, Dict[str, Dict[Prefix, Set[int]]]] = {}
    for partition, origins_per_prefix in driver.map(partitions):
        month = partition.interval_start
        collector = partition.collector or "*"
        month_merge = merged.setdefault(month, {})
        month_collector = per_collector_origins.setdefault(month, {}).setdefault(collector, {})
        for prefix, origins in origins_per_prefix.items():
            month_merge.setdefault(prefix, set()).update(origins)
            month_collector.setdefault(prefix, set()).update(origins)
    for month in month_timestamps:
        result.overall[month] = _moas_sets(merged.get(month, {}))
        result.per_collector[month] = {
            collector: _moas_sets(prefix_origins)
            for collector, prefix_origins in per_collector_origins.get(month, {}).items()
        }
    return result


def _moas_sets(origins_per_prefix: Dict[Prefix, Set[int]]) -> FrozenSet[FrozenSet[int]]:
    return frozenset(
        frozenset(origins) for origins in origins_per_prefix.values() if len(origins) > 1
    )
