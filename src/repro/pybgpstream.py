"""PyBGPStream-compatible facade (§4.2).

The paper's Listing 1 uses the ``_pybgpstream`` binding idiom::

    from _pybgpstream import BGPStream, BGPRecord, BGPElem
    stream = BGPStream()
    rec = BGPRecord()
    stream.add_filter('record-type', 'ribs')
    stream.add_interval_filter(t0, t1)
    stream.start()
    while stream.get_next_record(rec):
        elem = rec.get_next_elem()
        while elem:
            ...
            elem = rec.get_next_elem()

This module reproduces that exact surface on top of :mod:`repro.core` so the
paper's scripts port with minimal changes.  The real bindings default to the
public Broker instance at UC San Diego; since there is no network here, the
default data source is configured per-process with
:func:`set_default_data_interface` (or passed to ``BGPStream`` directly).
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.core.elem import BGPElem as _CoreElem
from repro.core.filters import FilterSet
from repro.core.interfaces import DataInterface, LiveDataInterface
from repro.core.parallel import ParallelConfig
from repro.core.record import BGPStreamRecord as _CoreRecord
from repro.core.stream import BGPStream as _CoreStream

_default_interface: Optional[DataInterface] = None


def set_default_data_interface(interface: DataInterface) -> None:
    """Set the data interface used by ``BGPStream()`` when none is passed.

    Plays the role of the globally-reachable CAIDA Broker in the original
    bindings.
    """
    global _default_interface
    _default_interface = interface


def get_default_data_interface() -> Optional[DataInterface]:
    return _default_interface


class BGPElem:
    """The elem object handed back by ``record.get_next_elem()``."""

    __slots__ = ("_elem",)

    def __init__(self, elem: _CoreElem) -> None:
        self._elem = elem

    @property
    def type(self) -> str:
        return str(self._elem.elem_type)

    @property
    def time(self) -> int:
        return self._elem.time

    @property
    def peer_address(self) -> str:
        return self._elem.peer_address

    @property
    def peer_asn(self) -> int:
        return self._elem.peer_asn

    @property
    def fields(self) -> dict:
        return self._elem.field_dict()

    def __repr__(self) -> str:
        return f"<BGPElem {self.type} t={self.time} peer={self.peer_asn}>"


class BGPRecord:
    """A reusable record container, filled in by ``stream.get_next_record(rec)``."""

    def __init__(self) -> None:
        self._record: Optional[_CoreRecord] = None
        self._filters: Optional[FilterSet] = None

    def _fill(self, record: _CoreRecord, filters: FilterSet) -> None:
        self._record = record
        self._filters = filters
        self._elem_iter = record.elems()

    # -- attributes mirroring the C structure ---------------------------------

    @property
    def project(self) -> str:
        return self._record.project if self._record else ""

    @property
    def collector(self) -> str:
        return self._record.collector if self._record else ""

    @property
    def type(self) -> str:
        return self._record.dump_type if self._record else ""

    @property
    def dump_time(self) -> int:
        return self._record.dump_time if self._record else 0

    @property
    def time(self) -> int:
        return self._record.time if self._record else 0

    @property
    def status(self) -> str:
        return str(self._record.status) if self._record else ""

    @property
    def dump_position(self) -> str:
        return str(self._record.dump_position) if self._record else ""

    def get_next_elem(self) -> Optional[BGPElem]:
        """The next elem of this record matching the stream filters, or None."""
        if self._record is None:
            return None
        for elem in self._elem_iter:
            if self._filters is None or self._filters.match_elem(elem):
                return BGPElem(elem)
        return None


class BGPStream:
    """The stream object of the bindings.

    Passing ``parallel=ParallelConfig(...)`` (or calling
    :meth:`set_parallel` before :meth:`start`) runs the Listing-1 idiom
    unchanged on top of the parallel batched engine: dump files are parsed
    concurrently while ``get_next_record()`` keeps handing out the exact
    record sequence of the sequential reference path.

    ``data_interface`` also accepts a registry name (``"broker"``,
    ``"csvfile"``, ``"sqlite"``, ``"singlefile"``, ``"kafka"``) together
    with ``interface_options``, matching the paper's named-interface API;
    and ``live=`` switches the Listing-1 idiom onto the near-realtime
    BMP-over-Kafka feed (pass a ready
    :class:`~repro.core.interfaces.LiveDataInterface` or a dict of its
    options, e.g. ``live={"broker": message_broker}``).

    ``eager`` selects the attribute-decode tier exactly as on
    :class:`repro.core.stream.BGPStream`: ``None`` (default) follows the
    process-wide lazy-decode switch, ``True`` forces full decode at parse
    time, ``False`` forces the lazy zero-copy tier.  Both tiers hand back
    identical ``elem.fields`` values.
    """

    def __init__(
        self,
        data_interface: Union[DataInterface, str, None] = None,
        parallel: Optional[ParallelConfig] = None,
        interning: object = True,
        live: Union[LiveDataInterface, Dict, None] = None,
        interface_options: Optional[Dict] = None,
        eager: Optional[bool] = None,
    ) -> None:
        interface = data_interface
        if interface is None and live is None:
            interface = _default_interface
            if interface is None:
                raise RuntimeError(
                    "no data interface available: pass one to BGPStream(...) or call "
                    "repro.pybgpstream.set_default_data_interface() first"
                )
        self._stream = _CoreStream(
            data_interface=interface,
            parallel=parallel,
            interning=interning,
            live=live,
            interface_options=interface_options,
            eager=eager,
        )

    def add_filter(self, name: str, value: str) -> None:
        """Add one named filter, e.g. ``add_filter("prefix-more", "10.0.0.0/8")``.

        The prefix family supports the full BGPStream filter language:
        ``prefix`` (alias of ``prefix-more``), ``prefix-exact``,
        ``prefix-more``, ``prefix-less`` and ``prefix-any``.
        """
        self._stream.add_filter(name, value)

    def set_parallel(self, config: Optional[ParallelConfig]) -> None:
        self._stream.set_parallel(config)

    def add_interval_filter(self, start: int, end: int) -> None:
        end_value: Optional[int] = None if end in (-1, None) else end
        self._stream.add_interval_filter(start, end_value)

    def set_data_interface(self, interface: Union[DataInterface, str], **options) -> None:
        """Set the interface: an instance, or a registry name plus options
        (``set_data_interface("sqlite", path="broker.db")``)."""
        self._stream.set_data_interface(interface, **options)

    @property
    def is_live(self) -> bool:
        """True when the stream reads a live BMP feed rather than dump files."""
        return self._stream.is_live

    def start(self) -> None:
        self._stream.start()

    def get_next_record(self, record: BGPRecord) -> bool:
        """Fill ``record`` with the next record; False when the stream ends."""
        core_record = self._stream.get_next_record()
        if core_record is None:
            return False
        record._fill(core_record, self._stream.filters)
        return True

    # Convenience: expose the underlying pythonic stream too.
    @property
    def core(self) -> _CoreStream:
        return self._stream
