"""Baseline tooling: a classic ``bgpdump``-style workflow.

Before BGPStream, the common workflow was: download each MRT file, run
``bgpdump`` to turn it into ASCII, and parse the text — one file at a time,
with no merging, no sorting across collectors, no live mode and no metadata
awareness (§2).  :mod:`repro.baseline.bgpdump` implements that workflow so
the ablation benchmarks can compare it against the BGPStream pipeline on the
same dump files.
"""

from repro.baseline.bgpdump import BGPDumpBaseline, bgpdump_file

__all__ = ["BGPDumpBaseline", "bgpdump_file"]
