"""A libBGPdump / ``bgpdump -m`` style baseline.

Processes exactly one MRT dump file per invocation and emits the familiar
pipe-separated ASCII lines.  The higher-level :class:`BGPDumpBaseline`
mimics how researchers actually used the tool for multi-file analyses:
run it file by file (in whatever order the files were downloaded), then
parse the concatenated ASCII output — so downstream code has to re-parse
text, and records from different files are *not* time-interleaved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.record import BGPStreamRecord
from repro.mrt.parser import MRTDumpReader, MRTParseError
from repro.mrt.records import PeerIndexTable


def bgpdump_file(path: str, dump_type: str = "updates") -> Iterator[str]:
    """Yield ``bgpdump -m`` style ASCII lines for one MRT file.

    Unlike the BGPStream reader, a corrupted or unreadable file simply stops
    producing output (classic bgpdump exits with an error and the shell
    pipeline silently loses the rest of the file).
    """
    try:
        reader = MRTDumpReader(path)
        reader.open()
    except MRTParseError:
        return
    peer_table: Optional[PeerIndexTable] = None
    try:
        for mrt in reader:
            if not mrt.is_valid:
                return
            if isinstance(mrt.body, PeerIndexTable):
                peer_table = mrt.body
                continue
            record = BGPStreamRecord(
                project="",
                collector="",
                dump_type=dump_type,
                dump_time=mrt.timestamp,
                mrt=mrt,
                peer_table=peer_table,
            )
            for elem in record.elems():
                yield elem.to_bgpdump_ascii()
    finally:
        reader.close()


@dataclass
class ParsedLine:
    """A line of bgpdump ASCII parsed back into fields (the researcher's lot)."""

    record_type: str
    time: int
    elem_type: str
    peer_address: str
    peer_asn: int
    prefix: Optional[str]
    as_path: Optional[str]


class BGPDumpBaseline:
    """File-at-a-time processing of a set of dumps through ASCII."""

    def __init__(self, paths: Sequence[Tuple[str, str]]) -> None:
        #: (path, dump_type) pairs, processed in the given order.
        self.paths = list(paths)
        self.lines_emitted = 0

    def ascii_lines(self) -> Iterator[str]:
        """All ASCII lines, file after file (no interleaving)."""
        for path, dump_type in self.paths:
            for line in bgpdump_file(path, dump_type):
                self.lines_emitted += 1
                yield line

    def parsed(self) -> Iterator[ParsedLine]:
        """Parse the ASCII back into fields, as analysis scripts must."""
        for line in self.ascii_lines():
            parsed = parse_bgpdump_line(line)
            if parsed is not None:
                yield parsed

    def timestamps(self) -> List[int]:
        return [p.time for p in self.parsed()]


def parse_bgpdump_line(line: str) -> Optional[ParsedLine]:
    """Parse one ``bgpdump -m`` style line (returns None for unknown shapes)."""
    parts = line.split("|")
    if len(parts) < 5:
        return None
    record_type, time_text, elem_type = parts[0], parts[1], parts[2]
    try:
        timestamp = int(time_text)
        peer_address = parts[3]
        peer_asn = int(parts[4])
    except (ValueError, IndexError):
        return None
    prefix = parts[5] if len(parts) > 5 and parts[5] else None
    as_path = parts[6] if len(parts) > 6 and parts[6] else None
    return ParsedLine(
        record_type=record_type,
        time=timestamp,
        elem_type=elem_type,
        peer_address=peer_address,
        peer_asn=peer_asn,
        prefix=prefix,
        as_path=as_path,
    )
