"""repro — a pure-Python reproduction of the BGPStream framework (IMC 2016).

The package is layered bottom-up:

* :mod:`repro.bgp` — BGP protocol substrate (prefixes, AS paths, communities,
  path attributes, UPDATE messages, session FSM states).
* :mod:`repro.mrt` — RFC 6396 MRT binary format (TABLE_DUMP_V2, BGP4MP),
  dump-file reader and writer.
* :mod:`repro.collectors` — synthetic Internet and data-collection
  infrastructure: AS topology, policy routing, vantage points, route
  collectors, dump archives and event injection.
* :mod:`repro.broker` — the BGPStream Broker meta-data provider (SQLite
  index, crawler, windowed queries, live polling).
* :mod:`repro.core` — libBGPStream: records, elems, filters, data
  interfaces, the sorted multi-collector stream, and the BGPReader tool.
* :mod:`repro.pybgpstream` — the PyBGPStream-compatible facade used by the
  paper's Listing 1.
* :mod:`repro.corsaro` — BGPCorsaro plugin pipeline (pfxmonitor,
  routing-tables, and friends).
* :mod:`repro.kafka` — the in-process messaging substrate standing in for
  Apache Kafka in the global-monitoring architecture.
* :mod:`repro.monitoring` — outage / hijack consumers and time series.
* :mod:`repro.atlas` — RIPE-Atlas-style active measurement simulation.
* :mod:`repro.analysis` — the longitudinal case-study analyses of Section 5.
* :mod:`repro.baseline` — a classic ``bgpdump``-style baseline.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
