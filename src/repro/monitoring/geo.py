"""Prefix geolocation substrate.

The per-country outage consumer needs to map prefixes to countries.  The
original system uses a commercial geolocation database; here the mapping is
derived from the synthetic topology (every AS has a country and its prefixes
inherit it), with longest-prefix-match lookup so more-specific announcements
(hijacks, black-holed /32s) geolocate to the covering allocation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.bgp.prefix import Prefix
from repro.collectors.topology import ASTopology


class GeoDatabase:
    """Longest-prefix-match prefix -> country (and prefix -> origin AS) lookups."""

    def __init__(self, entries: Mapping[Prefix, str] | None = None) -> None:
        self._countries: Dict[Prefix, str] = dict(entries or {})
        self._by_length: Dict[int, List[Prefix]] = {}
        self._rebuild()

    @classmethod
    def from_topology(cls, topology: ASTopology) -> "GeoDatabase":
        entries: Dict[Prefix, str] = {}
        for asn in topology.asns():
            node = topology.node(asn)
            for prefix in node.all_prefixes:
                entries[prefix] = node.country
        return cls(entries)

    def _rebuild(self) -> None:
        self._by_length = {}
        for prefix in self._countries:
            self._by_length.setdefault(prefix.length, []).append(prefix)

    def add(self, prefix: Prefix, country: str) -> None:
        self._countries[prefix] = country
        self._by_length.setdefault(prefix.length, []).append(prefix)

    def __len__(self) -> int:
        return len(self._countries)

    def countries(self) -> List[str]:
        return sorted(set(self._countries.values()))

    def country_of(self, prefix: Prefix) -> Optional[str]:
        """Country of ``prefix`` via longest-prefix match (None if unknown)."""
        exact = self._countries.get(prefix)
        if exact is not None:
            return exact
        for length in sorted(self._by_length, reverse=True):
            if length > prefix.length:
                # A more-specific allocation cannot cover a less-specific query.
                pass
            for candidate in self._by_length[length]:
                if candidate.contains(prefix):
                    return self._countries[candidate]
        return None

    def prefixes_of(self, country: str) -> List[Prefix]:
        return sorted(p for p, c in self._countries.items() if c == country)
