"""Prefix geolocation substrate.

The per-country outage consumer needs to map prefixes to countries.  The
original system uses a commercial geolocation database; here the mapping is
derived from the synthetic topology (every AS has a country and its prefixes
inherit it), with longest-prefix-match lookup so more-specific announcements
(hijacks, black-holed /32s) geolocate to the covering allocation.  Lookups
walk the shared patricia trie (:mod:`repro.bgp.trie`) instead of scanning
the allocation list.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.bgp.prefix import Prefix
from repro.bgp.trie import PrefixTrie
from repro.collectors.topology import ASTopology


class GeoDatabase:
    """Longest-prefix-match prefix -> country (and prefix -> origin AS) lookups."""

    def __init__(self, entries: Mapping[Prefix, str] | None = None) -> None:
        self._countries: Dict[Prefix, str] = dict(entries or {})
        self._trie: PrefixTrie[str] = PrefixTrie(self._countries.items())

    @classmethod
    def from_topology(cls, topology: ASTopology) -> "GeoDatabase":
        entries: Dict[Prefix, str] = {}
        for asn in topology.asns():
            node = topology.node(asn)
            for prefix in node.all_prefixes:
                entries[prefix] = node.country
        return cls(entries)

    def add(self, prefix: Prefix, country: str) -> None:
        self._countries[prefix] = country
        self._trie.insert(prefix, country)

    def __len__(self) -> int:
        return len(self._countries)

    def countries(self) -> List[str]:
        return sorted(set(self._countries.values()))

    def country_of(self, prefix: Prefix) -> Optional[str]:
        """Country of ``prefix`` via longest-prefix match (None if unknown)."""
        match = self._trie.longest_match(prefix)
        return match[1] if match is not None else None

    def prefixes_of(self, country: str) -> List[Prefix]:
        return sorted(p for p, c in self._countries.items() if c == country)
