"""Global Internet monitoring on top of BGPStream + the messaging substrate (§6.2).

Implements the distributed architecture of Figure 7: one BGPCorsaro/RT
instance per collector publishes per-bin routing-table diffs (and periodic
full snapshots) to the message broker, sync servers decide when a bin is
ready, and consumers analyse the reconstructed tables — per-country and
per-AS outage detection (IODA-style) and MOAS-based hijack detection.

* :mod:`repro.monitoring.geo` — prefix geolocation substrate.
* :mod:`repro.monitoring.timeseries` — time-series store with change-point
  (drop/spike) detection.
* :mod:`repro.monitoring.publisher` — the per-collector RT publisher.
* :mod:`repro.monitoring.outages` — per-country / per-AS outage consumers.
* :mod:`repro.monitoring.hijacks` — the MOAS/hijack consumer.
"""

from repro.monitoring.geo import GeoDatabase
from repro.monitoring.timeseries import ChangePoint, TimeSeries, TimeSeriesStore
from repro.monitoring.publisher import RTPublisher, diffs_topic
from repro.monitoring.outages import OutageAlert, OutageConsumer
from repro.monitoring.hijacks import HijackAlert, HijackConsumer

__all__ = [
    "GeoDatabase",
    "ChangePoint",
    "TimeSeries",
    "TimeSeriesStore",
    "RTPublisher",
    "diffs_topic",
    "OutageAlert",
    "OutageConsumer",
    "HijackAlert",
    "HijackConsumer",
]
