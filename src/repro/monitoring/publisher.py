"""The per-collector RT publisher: BGPCorsaro → message broker (Figure 7).

For each collector the architecture runs one BGPCorsaro instance with the RT
plugin; at the end of each time bin the instance publishes the diff cells
(and, periodically, a full snapshot) to the collector's data topic plus an
indexing entry on the shared meta-data topic, which the sync servers watch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence

from repro.broker.broker import Broker
from repro.collectors.archive import Archive
from repro.core.interfaces import BrokerDataInterface
from repro.core.stream import BGPStream
from repro.corsaro.pipeline import BGPCorsaro
from repro.corsaro.plugins.routing_tables import RTBinOutput, RoutingTablesPlugin
from repro.kafka.broker import MessageBroker
from repro.kafka.client import Producer
from repro.kafka.sync import publish_bin_metadata


def diffs_topic(collector: str) -> str:
    """The data topic carrying one collector's per-bin RT output."""
    return f"rt-diffs-{collector}"


@dataclass
class PublisherStats:
    """Counters accumulated while publishing one collector's stream."""

    collector: str
    bins_published: int = 0
    diff_cells: int = 0
    elems_processed: int = 0
    snapshots: int = 0


class RTPublisher:
    """Runs BGPCorsaro+RT over one collector's stream and publishes each bin."""

    def __init__(
        self,
        message_broker: MessageBroker,
        collector: str,
        bin_size: int = 300,
        snapshot_interval: int = 3600,
        publication_delay: float = 0.0,
    ) -> None:
        self.message_broker = message_broker
        self.collector = collector
        self.bin_size = bin_size
        self.snapshot_interval = snapshot_interval
        #: Simulated delay between the end of a bin and its publication,
        #: letting tests exercise the sync servers' latency trade-off.
        self.publication_delay = publication_delay
        self.stats = PublisherStats(collector=collector)
        self._producer = Producer(message_broker, default_topic=diffs_topic(collector))

    def run(
        self,
        archive: Archive,
        start: int,
        end: Optional[int],
        data_broker: Optional[Broker] = None,
    ) -> PublisherStats:
        """Process ``[start, end]`` of this collector's data and publish bins."""
        for _ in self.iter_bins(archive, start, end, data_broker=data_broker):
            pass
        return self.stats

    def iter_bins(
        self,
        archive: Archive,
        start: int,
        end: Optional[int],
        data_broker: Optional[Broker] = None,
    ) -> Iterator[RTBinOutput]:
        data_broker = data_broker or Broker(archives=[archive])
        stream = BGPStream(
            data_interface=BrokerDataInterface(data_broker, max_empty_polls=1)
        )
        stream.add_filter("collector", self.collector)
        stream.add_interval_filter(start, end)
        plugin = RoutingTablesPlugin(snapshot_interval=self.snapshot_interval)
        corsaro = BGPCorsaro(stream, [plugin], bin_size=self.bin_size)
        for output in corsaro.process():
            if output.plugin != plugin.name or output.interval_start < 0:
                continue
            bin_output: RTBinOutput = output.value
            self._publish(bin_output)
            yield bin_output

    def _publish(self, bin_output: RTBinOutput) -> None:
        published_at = (
            bin_output.interval_start + self.bin_size + self.publication_delay
        )
        self._producer.send(
            bin_output,
            key=self.collector,
            timestamp=published_at,
        )
        publish_bin_metadata(
            self._producer,
            collector=self.collector,
            interval_start=bin_output.interval_start,
            diff_count=bin_output.diff_count,
            published_at=published_at,
        )
        self.stats.bins_published += 1
        self.stats.diff_cells += bin_output.diff_count
        self.stats.elems_processed += bin_output.elems_processed
        if bin_output.snapshots is not None:
            self.stats.snapshots += 1


def run_publishers(
    message_broker: MessageBroker,
    archive: Archive,
    collectors: Sequence[str],
    start: int,
    end: int,
    bin_size: int = 300,
    publication_delays: Optional[Dict[str, float]] = None,
) -> Dict[str, PublisherStats]:
    """Run one RT publisher per collector (sequentially) over an archive.

    The real deployment runs one BGPCorsaro process per collector to spread
    the work across CPUs/hosts; functionally the result is the same.
    """
    delays = publication_delays or {}
    stats: Dict[str, PublisherStats] = {}
    for collector in collectors:
        publisher = RTPublisher(
            message_broker,
            collector,
            bin_size=bin_size,
            publication_delay=delays.get(collector, 0.0),
        )
        stats[collector] = publisher.run(archive, start, end)
    return stats
