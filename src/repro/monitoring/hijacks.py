"""MOAS-based hijack detection consumer (§6.2, the "Hijacks" project).

Most common hijacks manifest as two or more ASes announcing exactly the same
prefix (or a portion of the same address space) at the same time.  The
consumer watches the per-bin RT output of every collector, maintains the set
of origins observed per prefix across all VPs, and raises an alert whenever
a prefix acquires an origin set it did not have before (optionally filtered
by a whitelist of known-legitimate MOAS sets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.bgp.prefix import Prefix
from repro.corsaro.plugins.routing_tables import RTBinOutput, VPKey
from repro.kafka.broker import MessageBroker
from repro.kafka.client import Consumer
from repro.monitoring.publisher import diffs_topic


@dataclass(frozen=True)
class HijackAlert:
    """A suspicious multi-origin event."""

    prefix: Prefix
    origins: FrozenSet[int]
    new_origins: FrozenSet[int]
    detected_at: int

    def involves(self, asn: int) -> bool:
        return asn in self.origins


class HijackConsumer:
    """Consumes RT bins and raises MOAS alerts."""

    def __init__(
        self,
        message_broker: MessageBroker,
        collectors: Sequence[str],
        group: str = "hijack-consumer",
        whitelist: Iterable[FrozenSet[int]] = (),
        min_vps: int = 1,
    ) -> None:
        self.message_broker = message_broker
        self.collectors = list(collectors)
        self.whitelist: Set[FrozenSet[int]] = set(whitelist)
        #: Require an origin to be seen by at least this many VPs to count
        #: (protects against a single misbehaving VP).
        self.min_vps = max(1, min_vps)
        self._consumer = Consumer(
            message_broker, group=group, topics=[diffs_topic(c) for c in self.collectors]
        )
        #: prefix -> {vp -> origin}
        self._origins: Dict[Prefix, Dict[VPKey, int]] = {}
        #: prefix -> origin set already alerted on.
        self._known: Dict[Prefix, FrozenSet[int]] = {}
        self.alerts: List[HijackAlert] = []
        self.bins_processed = 0

    # -- ingestion ---------------------------------------------------------------

    def poll(self) -> List[HijackAlert]:
        """Consume newly published bins; returns alerts raised by this poll."""
        new_alerts: List[HijackAlert] = []
        by_bin: Dict[int, List[RTBinOutput]] = {}
        for message in self._consumer.poll():
            output: RTBinOutput = message.value
            by_bin.setdefault(output.interval_start, []).append(output)
        for interval_start in sorted(by_bin):
            for output in by_bin[interval_start]:
                self._apply_bin(output)
            new_alerts.extend(self._detect(interval_start))
            self.bins_processed += 1
        self.alerts.extend(new_alerts)
        return new_alerts

    def _apply_bin(self, output: RTBinOutput) -> None:
        if output.snapshots:
            for vp, cells in output.snapshots.items():
                for prefix, cell in cells.items():
                    origin = cell.as_path.origin_asn if cell.as_path else None
                    if origin is not None:
                        self._origins.setdefault(prefix, {})[vp] = origin
        for diff in output.diffs:
            per_vp = self._origins.setdefault(diff.prefix, {})
            if diff.announced and diff.as_path is not None and diff.as_path.origin_asn:
                per_vp[diff.vp] = diff.as_path.origin_asn
            else:
                per_vp.pop(diff.vp, None)

    # -- detection -----------------------------------------------------------------

    def current_origins(self, prefix: Prefix) -> FrozenSet[int]:
        per_vp = self._origins.get(prefix, {})
        counts: Dict[int, int] = {}
        for origin in per_vp.values():
            counts[origin] = counts.get(origin, 0) + 1
        return frozenset(o for o, count in counts.items() if count >= self.min_vps)

    def moas_prefixes(self) -> Dict[Prefix, FrozenSet[int]]:
        result = {}
        for prefix in self._origins:
            origins = self.current_origins(prefix)
            if len(origins) > 1:
                result[prefix] = origins
        return result

    def _detect(self, interval_start: int) -> List[HijackAlert]:
        alerts: List[HijackAlert] = []
        for prefix, origins in self.moas_prefixes().items():
            if origins in self.whitelist:
                continue
            previous = self._known.get(prefix, frozenset())
            if origins == previous:
                continue
            new_origins = origins - previous
            self._known[prefix] = origins
            if not new_origins:
                continue
            alerts.append(
                HijackAlert(
                    prefix=prefix,
                    origins=origins,
                    new_origins=frozenset(new_origins),
                    detected_at=interval_start,
                )
            )
        # Prefixes that stopped being MOAS can alert again later.
        for prefix in list(self._known):
            if len(self.current_origins(prefix)) <= 1:
                del self._known[prefix]
        return alerts
