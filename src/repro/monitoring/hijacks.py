"""MOAS- and sub-prefix-based hijack detection consumer (§6.2, "Hijacks").

Most common hijacks manifest as two or more ASes announcing exactly the same
prefix (or a portion of the same address space) at the same time.  The
consumer watches the per-bin RT output of every collector, maintains the set
of origins observed per prefix across all VPs, and raises:

* a **MOAS alert** whenever a prefix acquires an origin set it did not have
  before (optionally filtered by a whitelist of known-legitimate MOAS
  sets); and
* a **sub-prefix alert** whenever a *more specific* of a known-origin
  prefix shows up with a foreign origin — the classic sub-prefix hijack,
  which never produces a MOAS event because the covering prefix and its
  more specific carry disjoint origin sets.

Sub-prefix detection is what the patricia trie buys this layer: the
observed prefixes are indexed in a :class:`~repro.bgp.trie.PrefixTrie`, so
finding the covering prefixes of a new announcement is a walk towards the
root instead of a scan over every known prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.bgp.prefix import Prefix
from repro.bgp.trie import PrefixTrie
from repro.corsaro.plugins.routing_tables import RTBinOutput, VPKey
from repro.kafka.broker import MessageBroker
from repro.kafka.client import Consumer
from repro.monitoring.publisher import diffs_topic


@dataclass(frozen=True)
class HijackAlert:
    """A suspicious multi-origin or sub-prefix event.

    ``hijack_type`` is ``"moas"`` for same-prefix multi-origin alerts and
    ``"sub-prefix"`` when a more specific of ``super_prefix`` (which the
    ``expected_origins`` legitimately announce) appeared with a foreign
    origin.
    """

    prefix: Prefix
    origins: FrozenSet[int]
    new_origins: FrozenSet[int]
    detected_at: int
    hijack_type: str = "moas"
    #: The covering prefix whose address space was hijacked (sub-prefix only).
    super_prefix: Optional[Prefix] = None
    #: The origins legitimately announcing ``super_prefix`` (sub-prefix only).
    expected_origins: FrozenSet[int] = frozenset()

    def involves(self, asn: int) -> bool:
        return asn in self.origins or asn in self.expected_origins


class HijackConsumer:
    """Consumes RT bins and raises MOAS / sub-prefix alerts."""

    def __init__(
        self,
        message_broker: MessageBroker,
        collectors: Sequence[str],
        group: str = "hijack-consumer",
        whitelist: Iterable[FrozenSet[int]] = (),
        min_vps: int = 1,
        detect_subprefix: bool = True,
    ) -> None:
        self.message_broker = message_broker
        self.collectors = list(collectors)
        self.whitelist: Set[FrozenSet[int]] = set(whitelist)
        #: Require an origin to be seen by at least this many VPs to count
        #: (protects against a single misbehaving VP).
        self.min_vps = max(1, min_vps)
        self.detect_subprefix = detect_subprefix
        self._consumer = Consumer(
            message_broker, group=group, topics=[diffs_topic(c) for c in self.collectors]
        )
        #: Observed prefixes, each mapped to {vp -> origin}; the trie makes
        #: the covering-prefix walk of sub-prefix detection O(prefix length).
        self._origins: PrefixTrie[Dict[VPKey, int]] = PrefixTrie()
        #: prefix -> origin set already alerted on (MOAS).
        self._known: Dict[Prefix, FrozenSet[int]] = {}
        #: (sub-prefix, super-prefix) -> foreign origins already alerted on.
        self._known_sub: Dict[Tuple[Prefix, Prefix], FrozenSet[int]] = {}
        self.alerts: List[HijackAlert] = []
        self.bins_processed = 0

    # -- ingestion ---------------------------------------------------------------

    def poll(self) -> List[HijackAlert]:
        """Consume newly published bins; returns alerts raised by this poll."""
        new_alerts: List[HijackAlert] = []
        by_bin: Dict[int, List[RTBinOutput]] = {}
        for message in self._consumer.poll():
            output: RTBinOutput = message.value
            by_bin.setdefault(output.interval_start, []).append(output)
        for interval_start in sorted(by_bin):
            for output in by_bin[interval_start]:
                self._apply_bin(output)
            new_alerts.extend(self._detect(interval_start))
            self.bins_processed += 1
        self.alerts.extend(new_alerts)
        return new_alerts

    def _per_vp(self, prefix: Prefix) -> Dict[VPKey, int]:
        per_vp = self._origins.get(prefix)
        if per_vp is None:
            per_vp = {}
            self._origins.insert(prefix, per_vp)
        return per_vp

    def _apply_bin(self, output: RTBinOutput) -> None:
        if output.snapshots:
            for vp, cells in output.snapshots.items():
                for prefix, cell in cells.items():
                    origin = cell.as_path.origin_asn if cell.as_path else None
                    if origin is not None:
                        self._per_vp(prefix)[vp] = origin
        for diff in output.diffs:
            per_vp = self._per_vp(diff.prefix)
            if diff.announced and diff.as_path is not None and diff.as_path.origin_asn:
                per_vp[diff.vp] = diff.as_path.origin_asn
            else:
                per_vp.pop(diff.vp, None)
                if not per_vp:
                    self._origins.discard(diff.prefix)

    # -- detection -----------------------------------------------------------------

    def current_origins(self, prefix: Prefix) -> FrozenSet[int]:
        per_vp = self._origins.get(prefix) or {}
        return self._count_origins(per_vp)

    def _count_origins(self, per_vp: Dict[VPKey, int]) -> FrozenSet[int]:
        counts: Dict[int, int] = {}
        for origin in per_vp.values():
            counts[origin] = counts.get(origin, 0) + 1
        return frozenset(o for o, count in counts.items() if count >= self.min_vps)

    def moas_prefixes(self) -> Dict[Prefix, FrozenSet[int]]:
        result = {}
        for prefix, per_vp in self._origins.items():
            origins = self._count_origins(per_vp)
            if len(origins) > 1:
                result[prefix] = origins
        return result

    def _detect(self, interval_start: int) -> List[HijackAlert]:
        alerts = self._detect_moas(interval_start)
        if self.detect_subprefix:
            alerts.extend(self._detect_subprefix(interval_start))
        return alerts

    def _detect_moas(self, interval_start: int) -> List[HijackAlert]:
        alerts: List[HijackAlert] = []
        for prefix, origins in self.moas_prefixes().items():
            if origins in self.whitelist:
                continue
            previous = self._known.get(prefix, frozenset())
            if origins == previous:
                continue
            new_origins = origins - previous
            self._known[prefix] = origins
            if not new_origins:
                continue
            alerts.append(
                HijackAlert(
                    prefix=prefix,
                    origins=origins,
                    new_origins=frozenset(new_origins),
                    detected_at=interval_start,
                )
            )
        # Prefixes that stopped being MOAS can alert again later.
        for prefix in list(self._known):
            if len(self.current_origins(prefix)) <= 1:
                del self._known[prefix]
        return alerts

    def _detect_subprefix(self, interval_start: int) -> List[HijackAlert]:
        """Alert on more-specifics announced with a foreign origin.

        For every observed prefix the trie yields its covering prefixes
        (most specific first); the nearest one with a stable origin set is
        the expected owner of the address space.  Origins of the more
        specific that are not among the owner's origins are foreign.
        """
        alerts: List[HijackAlert] = []
        active: Set[Tuple[Prefix, Prefix]] = set()
        for prefix, per_vp in self._origins.items():
            origins = self._count_origins(per_vp)
            if not origins:
                continue
            for super_prefix, super_per_vp in self._origins.covering(
                prefix, include_exact=False
            ):
                expected = self._count_origins(super_per_vp)
                if not expected:
                    continue
                foreign = origins - expected
                if foreign and frozenset(origins | expected) not in self.whitelist:
                    key = (prefix, super_prefix)
                    active.add(key)
                    if self._known_sub.get(key) != foreign:
                        self._known_sub[key] = foreign
                        alerts.append(
                            HijackAlert(
                                prefix=prefix,
                                origins=origins,
                                new_origins=foreign,
                                detected_at=interval_start,
                                hijack_type="sub-prefix",
                                super_prefix=super_prefix,
                                expected_origins=expected,
                            )
                        )
                # Only the nearest covering prefix with origins is compared:
                # it is the most specific legitimate allocation.
                break
        # Episodes that ended (withdrawn or origins realigned) may re-alert.
        for key in list(self._known_sub):
            if key not in active:
                del self._known_sub[key]
        return alerts

    def subprefix_alerts(self) -> List[HijackAlert]:
        return [a for a in self.alerts if a.hijack_type == "sub-prefix"]
