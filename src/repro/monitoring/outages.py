"""Per-country and per-AS outage consumers (§6.2.4, Figure 10).

A consumer reconstructs each VP's routing table from the per-bin diffs (and
snapshots) published by the RT publishers, selects the prefixes observed by
full-feed VPs, and computes per-bin visible-prefix counts aggregated by
country and by origin AS.  The counts feed a time-series store with
change-point detection: sustained drops are reported as outage alerts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bgp.prefix import Prefix
from repro.corsaro.plugins.routing_tables import RTBinOutput, VPKey
from repro.kafka.broker import MessageBroker
from repro.kafka.client import Consumer
from repro.monitoring.geo import GeoDatabase
from repro.monitoring.publisher import diffs_topic
from repro.monitoring.timeseries import ChangePoint, TimeSeriesStore


@dataclass(frozen=True)
class OutageAlert:
    """One detected outage: a sustained drop in visible prefixes."""

    scope: str  # "country" or "asn"
    key: str  # country code or ASN (as string)
    start: int
    end: int
    min_relative_change: float

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass
class _VPView:
    """The consumer-side copy of one VP's routing table."""

    prefixes: Dict[Prefix, int] = field(default_factory=dict)  # prefix -> origin ASN


class OutageConsumer:
    """Consumes RT bins for a set of collectors and tracks prefix visibility."""

    def __init__(
        self,
        message_broker: MessageBroker,
        collectors: Sequence[str],
        geo: GeoDatabase,
        group: str = "outage-consumer",
        full_feed_threshold: float = 0.8,
        store: Optional[TimeSeriesStore] = None,
    ) -> None:
        self.message_broker = message_broker
        self.collectors = list(collectors)
        self.geo = geo
        #: A VP is full-feed if its table holds at least this fraction of the
        #: largest table observed in the same bin (the paper's "within 20
        #: percentage points of the maximum" definition).
        self.full_feed_threshold = full_feed_threshold
        self.store = store or TimeSeriesStore(window=12, threshold=0.3)
        self._consumer = Consumer(
            message_broker, group=group, topics=[diffs_topic(c) for c in self.collectors]
        )
        self._views: Dict[VPKey, _VPView] = {}
        self.bins_processed = 0

    # -- ingestion -------------------------------------------------------------

    def poll(self) -> List[int]:
        """Consume any newly published bins; returns the bin starts processed."""
        processed: List[int] = []
        by_bin: Dict[int, List[RTBinOutput]] = {}
        for message in self._consumer.poll():
            output: RTBinOutput = message.value
            by_bin.setdefault(output.interval_start, []).append(output)
        for interval_start in sorted(by_bin):
            for output in by_bin[interval_start]:
                self._apply_bin(output)
            self._record_bin(interval_start)
            processed.append(interval_start)
            self.bins_processed += 1
        return processed

    def _apply_bin(self, output: RTBinOutput) -> None:
        if output.snapshots:
            for vp, cells in output.snapshots.items():
                view = self._views.setdefault(vp, _VPView())
                view.prefixes = {
                    prefix: cell.as_path.origin_asn if cell.as_path else 0
                    for prefix, cell in cells.items()
                }
        for diff in output.diffs:
            view = self._views.setdefault(diff.vp, _VPView())
            if diff.announced and diff.as_path is not None:
                view.prefixes[diff.prefix] = diff.as_path.origin_asn or 0
            else:
                view.prefixes.pop(diff.prefix, None)

    # -- aggregation --------------------------------------------------------------

    def _full_feed_views(self) -> List[_VPView]:
        if not self._views:
            return []
        sizes = {vp: len(view.prefixes) for vp, view in self._views.items()}
        largest = max(sizes.values(), default=0)
        if largest == 0:
            return []
        return [
            view
            for vp, view in self._views.items()
            if sizes[vp] >= self.full_feed_threshold * largest
        ]

    def visible_prefixes(self) -> Dict[Prefix, int]:
        """prefix -> origin ASN, over the prefixes visible from full-feed VPs."""
        result: Dict[Prefix, int] = {}
        for view in self._full_feed_views():
            for prefix, origin in view.prefixes.items():
                result.setdefault(prefix, origin)
        return result

    def _record_bin(self, interval_start: int) -> None:
        visible = self.visible_prefixes()
        per_country: Dict[str, int] = {}
        per_asn: Dict[int, int] = {}
        for prefix, origin in visible.items():
            country = self.geo.country_of(prefix)
            if country is not None:
                per_country[country] = per_country.get(country, 0) + 1
            per_asn[origin] = per_asn.get(origin, 0) + 1
        for country in self.geo.countries():
            self.store.append(
                f"country.{country}.visible_prefixes",
                interval_start,
                per_country.get(country, 0),
            )
        for asn, count in sorted(per_asn.items()):
            self.store.append(f"asn.{asn}.visible_prefixes", interval_start, count)
        self.store.append("global.visible_prefixes", interval_start, len(visible))

    # -- detection ------------------------------------------------------------------

    def country_series(self, country: str) -> List[Tuple[int, float]]:
        return list(self.store.series(f"country.{country}.visible_prefixes"))

    def asn_series(self, asn: int) -> List[Tuple[int, float]]:
        return list(self.store.series(f"asn.{asn}.visible_prefixes"))

    def detect_outages(self, scope: str = "country") -> List[OutageAlert]:
        """Turn sustained drops in the visibility series into alerts."""
        alerts: List[OutageAlert] = []
        prefix = "country." if scope == "country" else "asn."
        for name in self.store.names():
            if not name.startswith(prefix) or not name.endswith(".visible_prefixes"):
                continue
            key = name[len(prefix) : -len(".visible_prefixes")]
            drops = self.store.drops(name)
            if not drops:
                continue
            alerts.extend(self._group_drops(scope, key, name, drops))
        return alerts

    def _group_drops(
        self, scope: str, key: str, name: str, drops: List[ChangePoint]
    ) -> List[OutageAlert]:
        series = dict(self.store.series(name).points)
        timestamps = sorted(series)
        if len(timestamps) < 2:
            return []
        bin_size = timestamps[1] - timestamps[0]
        alerts: List[OutageAlert] = []
        current: Optional[List[ChangePoint]] = None
        for drop in drops:
            if current and drop.timestamp - current[-1].timestamp <= 2 * bin_size:
                current.append(drop)
            else:
                if current:
                    alerts.append(self._alert_from(scope, key, current))
                current = [drop]
        if current:
            alerts.append(self._alert_from(scope, key, current))
        return alerts

    def _alert_from(self, scope: str, key: str, drops: List[ChangePoint]) -> OutageAlert:
        return OutageAlert(
            scope=scope,
            key=key,
            start=drops[0].timestamp,
            end=drops[-1].timestamp,
            min_relative_change=min(d.relative_change for d in drops),
        )
