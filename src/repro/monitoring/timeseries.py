"""Time-series storage with automated change-point detection.

The outage consumers "store data into a time series monitoring system
supporting automated change-point detection and data visualization" (§6.2.4).
This module provides the storage plus a simple, robust detector: a point is
flagged when it deviates from the trailing median of a sliding window by
more than a configurable relative threshold (drops for outages, spikes for
hijack-style signals).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class ChangePoint:
    """One detected deviation in a series."""

    series: str
    timestamp: int
    value: float
    baseline: float
    relative_change: float  # (value - baseline) / baseline

    @property
    def is_drop(self) -> bool:
        return self.relative_change < 0


@dataclass
class TimeSeries:
    """One named series of (timestamp, value) points, kept in time order."""

    name: str
    points: List[Tuple[int, float]] = field(default_factory=list)

    def append(self, timestamp: int, value: float) -> None:
        if self.points and timestamp < self.points[-1][0]:
            raise ValueError(f"timestamps must be non-decreasing in series {self.name}")
        self.points.append((timestamp, float(value)))

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[Tuple[int, float]]:
        return iter(self.points)

    def values(self) -> List[float]:
        return [value for _, value in self.points]

    def timestamps(self) -> List[int]:
        return [timestamp for timestamp, _ in self.points]

    def latest(self) -> Optional[Tuple[int, float]]:
        return self.points[-1] if self.points else None


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


class TimeSeriesStore:
    """A collection of named time series plus change-point detection."""

    def __init__(self, window: int = 12, threshold: float = 0.3) -> None:
        #: Number of trailing points used as the baseline.
        self.window = max(2, window)
        #: Relative deviation (fraction of the baseline) that triggers a change point.
        self.threshold = threshold
        self._series: Dict[str, TimeSeries] = {}

    # -- storage ------------------------------------------------------------------

    def append(self, name: str, timestamp: int, value: float) -> None:
        self.series(name).append(timestamp, value)

    def series(self, name: str) -> TimeSeries:
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def names(self) -> List[str]:
        return sorted(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    # -- detection -----------------------------------------------------------------

    def change_points(
        self, name: str, direction: Optional[str] = None
    ) -> List[ChangePoint]:
        """Detect deviations in one series.

        ``direction`` restricts the result to ``"drop"`` or ``"spike"``
        change points; None returns both.
        """
        series = self.series(name)
        points = series.points
        detected: List[ChangePoint] = []
        for index in range(1, len(points)):
            window_start = max(0, index - self.window)
            baseline_values = [value for _, value in points[window_start:index]]
            if not baseline_values:
                continue
            baseline = _median(baseline_values)
            timestamp, value = points[index]
            if baseline == 0:
                continue
            relative = (value - baseline) / baseline
            if abs(relative) < self.threshold:
                continue
            change = ChangePoint(
                series=name,
                timestamp=timestamp,
                value=value,
                baseline=baseline,
                relative_change=relative,
            )
            if direction == "drop" and not change.is_drop:
                continue
            if direction == "spike" and change.is_drop:
                continue
            detected.append(change)
        return detected

    def drops(self, name: str) -> List[ChangePoint]:
        return self.change_points(name, direction="drop")

    def spikes(self, name: str) -> List[ChangePoint]:
        return self.change_points(name, direction="spike")
