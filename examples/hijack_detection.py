#!/usr/bin/env python3
"""Hijack detection with BGPCorsaro's pfxmonitor plugin (§6.1, Figure 6).

Recreates the GARR case study: a victim AS originates a handful of prefixes;
partway through the observation window another AS starts announcing part of
that address space.  The pfxmonitor plugin, fed by a multi-collector
BGPStream and cut into 5-minute bins, tracks the number of unique prefixes
and unique origin ASNs over the victim's address ranges — the origin count
jumping from 1 to 2 exposes each hijack episode.

Run:  python examples/hijack_detection.py
"""

from __future__ import annotations

import tempfile

from repro.broker import Broker
from repro.collectors import Archive, ScenarioConfig, build_scenario
from repro.collectors.events import PrefixHijackEvent
from repro.collectors.topology import ASRole, TopologyConfig, generate_topology
from repro.core import BGPStream, BrokerDataInterface
from repro.corsaro import BGPCorsaro
from repro.corsaro.plugins import PrefixMonitorPlugin
from repro.utils.intervals import TimeInterval


def main() -> None:
    config = ScenarioConfig(
        duration=6 * 3600,
        topology=TopologyConfig(num_tier1=4, num_transit=12, num_stub=40, seed=11),
        vps_per_collector=5,
        full_feed_fraction=1.0,
        seed=12,
    )
    topology = generate_topology(config.topology)
    start = config.start

    victim = next(a for a in topology.asns() if topology.node(a).role == ASRole.STUB)
    hijacker = next(
        a
        for a in topology.asns()
        if topology.node(a).role == ASRole.TRANSIT and a not in topology.providers(victim)
    )
    # Two one-hour hijack episodes, like the repeated GARR events of Jan 2015.
    events = [
        PrefixHijackEvent(
            interval=TimeInterval(start + offset, start + offset + 3600),
            hijacker_asn=hijacker,
            victim_asn=victim,
            prefixes=tuple(topology.node(victim).prefixes[:2]),
        )
        for offset in (3600, 4 * 3600)
    ]
    scenario = build_scenario(config, events=events, topology=topology)
    archive = Archive(tempfile.mkdtemp(prefix="bgpstream-hijack-"))
    scenario.generate(archive)
    print(f"victim AS{victim}, hijacker AS{hijacker}")

    stream = BGPStream(data_interface=BrokerDataInterface(Broker(archives=[archive])))
    stream.add_interval_filter(config.start, config.end)

    plugin = PrefixMonitorPlugin(topology.node(victim).prefixes)
    corsaro = BGPCorsaro(stream, [plugin], bin_size=300)
    corsaro.run()

    print("\n  bin (min)  #prefixes  #origin-ASNs")
    alarm_bins = []
    for output in corsaro.outputs_for("pfxmonitor"):
        if output.interval_start < 0:
            continue
        value = output.value
        minute = (output.interval_start - config.start) // 60
        marker = "  <-- hijack visible" if value.unique_origin_asns > 1 else ""
        if value.unique_origin_asns > 1:
            alarm_bins.append(minute)
        print(f"  {minute:9d}  {value.unique_prefixes:9d}  {value.unique_origin_asns:12d}{marker}")
    print(f"\nbins with more than one origin AS: {len(alarm_bins)}")


if __name__ == "__main__":
    main()
