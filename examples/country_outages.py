#!/usr/bin/env python3
"""Country-level outage monitoring (§6.2, Figures 7 and 10).

Runs the full global-monitoring architecture over a synthetic scenario with
government-ordered style outages: per-collector BGPCorsaro instances with
the routing-tables plugin publish per-bin diffs to the messaging substrate,
a completeness-based sync server marks bins ready, and the per-country /
per-AS outage consumer reconstructs VP routing tables, counts visible
prefixes and flags the drops.

Run:  python examples/country_outages.py
"""

from __future__ import annotations

import tempfile

from repro.collectors import Archive, ScenarioConfig, build_scenario
from repro.collectors.events import OutageEvent
from repro.collectors.topology import TopologyConfig, generate_topology
from repro.kafka import CompletenessSyncServer, MessageBroker
from repro.monitoring import GeoDatabase, OutageConsumer
from repro.monitoring.publisher import run_publishers
from repro.utils.intervals import TimeInterval


def main() -> None:
    config = ScenarioConfig(
        duration=6 * 3600,
        topology=TopologyConfig(num_tier1=4, num_transit=12, num_stub=40, seed=21),
        vps_per_collector=5,
        full_feed_fraction=1.0,
        seed=22,
    )
    topology = generate_topology(config.topology)
    start = config.start
    country = max(topology.countries(), key=lambda c: len(topology.prefixes_by_country(c)))

    # Two ~1.5h country-wide outages (the Iraq pattern of Figure 10).
    events = [
        OutageEvent(interval=TimeInterval(start + 3600, start + 3600 + 5400), country=country),
        OutageEvent(
            interval=TimeInterval(start + 4 * 3600, start + 4 * 3600 + 5400), country=country
        ),
    ]
    scenario = build_scenario(config, events=events, topology=topology)
    archive = Archive(tempfile.mkdtemp(prefix="bgpstream-outage-"))
    scenario.generate(archive)
    collectors = [c.name for c in scenario.collectors]
    print(f"monitoring country {country} across collectors {collectors}")

    # RT publishers (one per collector) -> message broker.
    message_broker = MessageBroker()
    run_publishers(message_broker, archive, collectors, config.start, config.end, bin_size=300)

    # Sync server: wait for every collector before releasing a bin.
    sync = CompletenessSyncServer(message_broker, "ioda", expected_collectors=collectors)
    ready = sync.step(now=config.end + 3600)
    print(f"sync server released {len(ready)} bins")

    # The outage consumer.
    geo = GeoDatabase.from_topology(topology)
    consumer = OutageConsumer(message_broker, collectors, geo)
    consumer.poll()

    series = consumer.country_series(country)
    print(f"\n  minute  visible prefixes geolocated to {country}")
    for timestamp, value in series[:: max(1, len(series) // 30)]:
        minute = (timestamp - config.start) // 60
        print(f"  {minute:6d}  {int(value):6d} {'#' * int(value)}")

    alerts = [a for a in consumer.detect_outages("country") if a.key == country]
    print(f"\noutage alerts for {country}: {len(alerts)}")
    for alert in alerts:
        print(
            f"  drop of {abs(alert.min_relative_change) * 100:.0f}% "
            f"starting at minute {(alert.start - config.start) // 60}"
        )


if __name__ == "__main__":
    main()
