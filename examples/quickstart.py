#!/usr/bin/env python3
"""Quickstart: generate a small synthetic archive and read it with BGPStream.

This is the "hello world" of the reproduction:

1. build a synthetic Internet and let two collectors (one RouteViews-style,
   one RIPE-RIS-style) record four hours of RIB and Updates dumps into a
   local archive;
2. point a Broker at the archive;
3. configure a BGPStream with filters and iterate records/elems, exactly as
   a user of the original framework would.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile

from repro.broker import Broker
from repro.collectors import Archive, ScenarioConfig, build_scenario
from repro.collectors.topology import TopologyConfig
from repro.core import BGPStream, BrokerDataInterface


def main() -> None:
    # 1. Generate the dataset (a stand-in for the public RouteViews/RIS archives).
    config = ScenarioConfig(
        duration=4 * 3600,
        topology=TopologyConfig(num_tier1=4, num_transit=12, num_stub=40, seed=1),
        vps_per_collector=5,
        seed=2,
    )
    scenario = build_scenario(config)
    workdir = tempfile.mkdtemp(prefix="bgpstream-quickstart-")
    archive = Archive(workdir)
    files = scenario.generate(archive)
    print(f"generated {len(files)} dump files under {workdir}")

    # 2. The Broker indexes the archive and answers windowed meta-data queries.
    broker = Broker(archives=[archive])

    # 3. Configure and consume a stream: updates only, both projects,
    #    restricted to one /8 of the synthetic address space.
    stream = BGPStream(data_interface=BrokerDataInterface(broker))
    stream.add_filter("record-type", "updates")
    stream.add_filter("prefix", "10.0.0.0/8")
    stream.add_interval_filter(config.start, config.end)

    announcements = withdrawals = 0
    collectors = set()
    for record, elem in stream.elems():
        collectors.add(record.collector)
        if elem.elem_type.value == "A":
            announcements += 1
        elif elem.elem_type.value == "W":
            withdrawals += 1

    print(f"read {stream.records_read} records from collectors: {sorted(collectors)}")
    print(f"announcements: {announcements}, withdrawals: {withdrawals}")

    # Show a few raw elem lines the way `bgpreader` would print them.
    stream2 = BGPStream(data_interface=BrokerDataInterface(Broker(archives=[archive])))
    stream2.add_interval_filter(config.start, config.end)
    print("\nfirst five elems:")
    for index, (_record, elem) in enumerate(stream2.elems()):
        print(" ", elem.to_ascii())
        if index == 4:
            break


if __name__ == "__main__":
    main()
