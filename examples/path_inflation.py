#!/usr/bin/env python3
"""AS-path inflation (the paper's Listing 1, §4.2).

Reads the RIB dumps of one snapshot from all collectors, compares every
<VP, origin> pair's observed BGP path length against the shortest path on
the undirected AS graph built from the same data, and reports how many pairs
are inflated and by how much.  Uses the PyBGPStream-compatible facade so the
code shape matches the paper's listing.

Run:  python examples/path_inflation.py
"""

from __future__ import annotations

import tempfile
from collections import defaultdict
from itertools import groupby

import networkx as nx

from repro import pybgpstream
from repro.broker import Broker
from repro.collectors import Archive
from repro.collectors.longitudinal import LongitudinalConfig, LongitudinalScenario
from repro.collectors.topology import TopologyConfig
from repro.core import BrokerDataInterface


def main() -> None:
    # Generate a single monthly snapshot of a synthetic Internet.
    config = LongitudinalConfig(
        months=1,
        topology=TopologyConfig(num_tier1=5, num_transit=20, num_stub=80, seed=7),
        vps_per_collector=6,
        seed=8,
    )
    scenario = LongitudinalScenario(config)
    archive = Archive(tempfile.mkdtemp(prefix="bgpstream-inflation-"))
    snapshot = scenario.generate(archive)[0]

    # --- the Listing 1 code, almost verbatim -------------------------------
    pybgpstream.set_default_data_interface(
        BrokerDataInterface(Broker(archives=[archive]))
    )
    stream = pybgpstream.BGPStream()
    rec = pybgpstream.BGPRecord()
    stream.add_filter("record-type", "ribs")
    stream.add_interval_filter(snapshot.timestamp, snapshot.timestamp + 1200)
    stream.start()

    as_graph = nx.Graph()
    bgp_lens = defaultdict(lambda: defaultdict(lambda: None))

    while stream.get_next_record(rec):
        elem = rec.get_next_elem()
        while elem:
            monitor = str(elem.peer_asn)
            hops = [k for k, g in groupby(elem.fields["as-path"].split(" "))]
            if len(hops) > 1 and hops[0] == monitor:
                origin = hops[-1]
                for i in range(0, len(hops) - 1):
                    as_graph.add_edge(hops[i], hops[i + 1])
                bgp_lens[monitor][origin] = min(
                    filter(bool, [bgp_lens[monitor][origin], len(hops)])
                )
            elem = rec.get_next_elem()

    pairs = inflated = 0
    worst = 0
    for monitor in bgp_lens:
        for origin in bgp_lens[monitor]:
            nxlen = len(nx.shortest_path(as_graph, monitor, origin))
            pairs += 1
            extra = bgp_lens[monitor][origin] - nxlen
            if extra > 0:
                inflated += 1
                worst = max(worst, extra)

    print(f"examined {pairs} <VP, origin> pairs")
    print(f"inflated pairs: {inflated} ({100.0 * inflated / pairs:.1f}%)")
    print(f"maximum extra hops: {worst}")
    print("(the paper reports >30% of pairs inflated by 1 to 11 hops on real data)")


if __name__ == "__main__":
    main()
